"""Wireless frequency assignment via d2-coloring.

The paper's motivating application (Sec. 1): in a wireless network,
nodes with a common neighbor interfere, so assigning frequencies such
that no two interfering nodes share one is exactly d2-coloring of the
communication graph.  "Computing a coloring in a more powerful model
(CONGEST) than it would be used in (wireless channels) is in line
with current trends towards separation of control plane and data
plane."

This example builds a unit-disk radio network, runs the randomized
d2-coloring, and verifies the interference-freedom property directly
(no station shares a frequency with any station at distance <= 2).

Run:  python examples/wireless_frequency_assignment.py
"""

from collections import Counter

from repro import check_d2_coloring, improved_d2_color
from repro.graphs.generators import unit_disk
from repro.graphs.square import d2_neighbors


def main() -> None:
    # 80 stations in a unit square, radio range 0.2.
    network = unit_disk(80, 0.2, seed=11)
    delta = max(d for _, d in network.degree)
    print(
        f"radio network: {network.number_of_nodes()} stations, "
        f"{network.number_of_edges()} links, max degree {delta}"
    )

    result = improved_d2_color(network, seed=3)
    frequencies = result.coloring

    # Interference check, spelled out in domain terms.
    conflicts = 0
    for station in network.nodes:
        for other in d2_neighbors(network, station):
            if frequencies[station] == frequencies[other]:
                conflicts += 1
    print(
        f"assigned {result.colors_used} frequencies "
        f"(budget {result.palette_size}); "
        f"interfering same-frequency pairs: {conflicts // 2}"
    )
    assert conflicts == 0

    report = check_d2_coloring(
        network, frequencies, result.palette_size
    )
    print(f"checker: {report.explain()}")
    print(f"control-plane cost: {result.rounds} CONGEST rounds")

    usage = Counter(frequencies.values())
    top = usage.most_common(5)
    print("most-used frequencies:", top)


if __name__ == "__main__":
    main()
