"""Head-to-head comparison of every d2-coloring algorithm.

Runs the centralized oracles, the baselines the paper argues against,
and the paper's three algorithms on the same instances, and prints a
table of rounds / colors / messages.  The Moore graphs (Petersen,
Hoffman–Singleton) are the canonical hard inputs: their squares are
complete, so every algorithm is forced to use the entire Δ²+1
palette.

Run:  python examples/compare_algorithms.py
"""

from repro.baselines.greedy import dsatur_d2_coloring, greedy_d2_coloring
from repro.baselines.naive import naive_congest_d2_color
from repro.baselines.trial import trial_d2_color
from repro.core.d2color import improved_d2_color
from repro.det.det_d2color import deterministic_d2_color
from repro.det.eps_d2coloring import eps_d2_color
from repro.graphs.generators import random_regular
from repro.graphs.instances import hoffman_singleton, petersen
from repro.util.tables import ascii_table
from repro.verify.checker import check_d2_coloring


def run_all(name, graph, seed=1):
    rows = []
    algorithms = [
        ("greedy (oracle)", lambda: greedy_d2_coloring(graph)),
        ("dsatur (oracle)", lambda: dsatur_d2_coloring(graph)),
        ("trial baseline", lambda: trial_d2_color(graph, seed=seed)),
        (
            "naive G² simulation",
            lambda: naive_congest_d2_color(graph, seed=seed),
        ),
        (
            "deterministic (Thm 1.2)",
            lambda: deterministic_d2_color(graph),
        ),
        (
            "(1+ε)Δ² det (Thm 1.3)",
            lambda: eps_d2_color(graph, eps=0.5),
        ),
        (
            "improved rand (Thm 1.1)",
            lambda: improved_d2_color(graph, seed=seed),
        ),
    ]
    for algo_name, run in algorithms:
        result = run()
        ok = check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid
        rows.append(
            [
                name,
                algo_name,
                result.rounds,
                result.colors_used,
                result.palette_size,
                result.metrics.total_messages,
                "yes" if ok else "NO",
            ]
        )
    return rows


def main() -> None:
    instances = [
        ("petersen", petersen()),
        ("hoffman-singleton", hoffman_singleton()),
        ("rr(8,64)", random_regular(8, 64, seed=4)),
    ]
    rows = []
    for name, graph in instances:
        rows.extend(run_all(name, graph))
    print(
        ascii_table(
            [
                "instance",
                "algorithm",
                "rounds",
                "colors",
                "palette",
                "messages",
                "valid",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
