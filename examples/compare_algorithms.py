"""Head-to-head comparison of every registered d2-coloring algorithm.

Enumerates the algorithm registry (``repro.registry.ALGORITHMS``) —
the centralized oracles, the baselines the paper argues against, and
the paper's randomized and deterministic pipelines — runs everything
on the same workloads, and prints a table of rounds / colors /
messages.  Registering a new algorithm adds it to this comparison
automatically; so does tagging a workload ``"showcase"`` in
``repro.workloads`` (the default set: the Moore graphs Petersen and
Hoffman–Singleton, whose squares are complete, plus a random regular
graph), or naming any registered workloads with ``--workloads``.

Instances come from the workload cache, so the graph and its G²
artifacts are built once however many algorithms run, and the
validity check reuses the cached adjacency.

The execution engine is selectable (see docs/BACKENDS.md): pass
``--backend fastpath`` for the metering-light engine, or
``--workers N`` to fan the whole comparison grid across a process
pool via the sweep backend — results are identical either way.

Run:  python examples/compare_algorithms.py
          [--backend NAME] [--workers N] [--workloads NAME ...]
"""

import argparse
import sys

from repro import registry
from repro.exec import SweepBackend, SweepCell, available_backends
from repro.util.tables import ascii_table
from repro.verify.checker import check_d2_coloring
from repro.workloads import get_workload, instance_cache, workloads

SEED = 1


def run_all(instance, backend=None):
    rows = []
    graph = instance.graph()
    for spec in registry.ALGORITHMS:
        if not spec.applicable(graph):
            continue
        result = spec.run_on(instance, seed=SEED, backend=backend)
        ok = check_d2_coloring(
            graph,
            result.coloring,
            result.palette_size,
            adjacency=instance.d2_adjacency(),
        ).valid
        rows.append(
            [
                instance.workload,
                f"{spec.name} [{spec.kind}]",
                result.rounds,
                result.colors_used,
                result.palette_size,
                result.metrics.total_messages,
                "yes" if ok else "NO",
            ]
        )
    return rows


def run_all_swept(instances, workers, backend=None):
    """The same comparison, fanned out as one sweep grid."""
    cells = []
    by_name = {}
    for instance in instances:
        by_name[instance.workload] = instance
        graph = instance.graph()
        for spec in registry.ALGORITHMS:
            if not spec.applicable(graph):
                continue
            cells.append(
                SweepCell.from_workload(
                    spec.name, instance.workload, SEED
                )
            )
    swept = SweepBackend(
        executor="process",
        max_workers=workers,
        inner=backend or "fastpath",
    ).run_grid(cells)
    rows = []
    for cell in swept.cells:
        if not cell.ok:
            rows.append(
                [cell.scenario, cell.algorithm, "-", "-", "-", "-",
                 f"ERROR {cell.error}"]
            )
            continue
        spec = registry.get_algorithm(cell.algorithm)
        instance = by_name[cell.scenario]
        ok = check_d2_coloring(
            instance.graph(),
            dict(cell.coloring),
            cell.palette_size,
            adjacency=instance.d2_adjacency(),
        ).valid
        rows.append(
            [
                cell.scenario,
                f"{cell.algorithm} [{spec.kind}]",
                cell.rounds,
                cell.colors_used,
                cell.palette_size,
                cell.metrics.total_messages,
                "yes" if ok else "NO",
            ]
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=[b for b in available_backends() if b != "sweep"],
        default=None,
        help="execution engine for each run (default: reference)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan the grid across N sweep workers (0: run serially)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="NAME",
        help="registered workload names to compare on "
        '(default: the "showcase"-tagged set)',
    )
    args = parser.parse_args()

    if args.backend == "vectorized":
        # One warning up front (not one per instance) for every spec
        # that has no array kernel and will run via fastpath.
        from repro.exec.vectorized import kernel_coverage

        coverage = kernel_coverage()
        uncovered = sorted(
            spec.name
            for spec in registry.ALGORITHMS
            if spec.name not in coverage
        )
        if uncovered:
            print(
                "note: no vectorized kernel for "
                + ", ".join(uncovered)
                + " — these fall back to fastpath (see "
                "docs/BACKENDS.md)",
                file=sys.stderr,
            )

    if args.workloads:
        specs = [get_workload(name) for name in args.workloads]
    else:
        specs = list(workloads("showcase"))
    cache = instance_cache()
    instances = [cache.get(spec, SEED) for spec in specs]

    if args.workers > 0:
        rows = run_all_swept(
            instances, args.workers, backend=args.backend
        )
    else:
        rows = []
        for instance in instances:
            rows.extend(run_all(instance, backend=args.backend))
    print(
        ascii_table(
            [
                "instance",
                "algorithm",
                "rounds",
                "colors",
                "palette",
                "messages",
                "valid",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
