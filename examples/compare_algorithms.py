"""Head-to-head comparison of every registered d2-coloring algorithm.

Enumerates the algorithm registry (``repro.registry.ALGORITHMS``) —
the centralized oracles, the baselines the paper argues against, and
the paper's randomized and deterministic pipelines — runs everything
on the same instances, and prints a table of rounds / colors /
messages.  Registering a new algorithm adds it to this comparison
automatically.

The Moore graphs (Petersen, Hoffman–Singleton) are the canonical hard
inputs: their squares are complete, so every algorithm is forced to
use the entire Δ²+1 palette.

Run:  python examples/compare_algorithms.py
"""

from repro import registry
from repro.graphs.generators import random_regular
from repro.graphs.instances import hoffman_singleton, petersen
from repro.util.tables import ascii_table
from repro.verify.checker import check_d2_coloring


def run_all(name, graph, seed=1):
    rows = []
    for spec in registry.ALGORITHMS:
        if not spec.applicable(graph):
            continue
        result = spec.run(graph, seed=seed)
        ok = check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid
        rows.append(
            [
                name,
                f"{spec.name} [{spec.kind}]",
                result.rounds,
                result.colors_used,
                result.palette_size,
                result.metrics.total_messages,
                "yes" if ok else "NO",
            ]
        )
    return rows


def main() -> None:
    instances = [
        ("petersen", petersen()),
        ("hoffman-singleton", hoffman_singleton()),
        ("rr(8,64)", random_regular(8, 64, seed=4)),
    ]
    rows = []
    for name, graph in instances:
        rows.extend(run_all(name, graph))
    print(
        ascii_table(
            [
                "instance",
                "algorithm",
                "rounds",
                "colors",
                "palette",
                "messages",
                "valid",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
