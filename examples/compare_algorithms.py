"""Head-to-head comparison of every registered d2-coloring algorithm.

Enumerates the algorithm registry (``repro.registry.ALGORITHMS``) —
the centralized oracles, the baselines the paper argues against, and
the paper's randomized and deterministic pipelines — runs everything
on the same instances, and prints a table of rounds / colors /
messages.  Registering a new algorithm adds it to this comparison
automatically.

The Moore graphs (Petersen, Hoffman–Singleton) are the canonical hard
inputs: their squares are complete, so every algorithm is forced to
use the entire Δ²+1 palette.

The execution engine is selectable (see docs/BACKENDS.md): pass
``--backend fastpath`` for the metering-light engine, or
``--workers N`` to fan the whole comparison grid across a process
pool via the sweep backend — results are identical either way.

Run:  python examples/compare_algorithms.py [--backend NAME] [--workers N]
"""

import argparse

from repro import registry
from repro.exec import SweepBackend, SweepCell, available_backends
from repro.graphs.generators import random_regular
from repro.graphs.instances import hoffman_singleton, petersen
from repro.util.tables import ascii_table
from repro.verify.checker import check_d2_coloring


def run_all(name, graph, seed=1, backend=None):
    rows = []
    for spec in registry.ALGORITHMS:
        if not spec.applicable(graph):
            continue
        result = spec.run(graph, seed=seed, backend=backend)
        ok = check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid
        rows.append(
            [
                name,
                f"{spec.name} [{spec.kind}]",
                result.rounds,
                result.colors_used,
                result.palette_size,
                result.metrics.total_messages,
                "yes" if ok else "NO",
            ]
        )
    return rows


def run_all_swept(instances, workers, seed=1, backend=None):
    """The same comparison, fanned out as one sweep grid."""
    cells = []
    graphs = {}
    for name, graph in instances:
        graphs[name] = graph
        for spec in registry.ALGORITHMS:
            if not spec.applicable(graph):
                continue
            cells.append(
                SweepCell.from_graph(spec.name, name, seed, graph)
            )
    swept = SweepBackend(
        executor="process",
        max_workers=workers,
        inner=backend or "fastpath",
    ).run_grid(cells)
    rows = []
    for cell in swept.cells:
        if not cell.ok:
            rows.append(
                [cell.scenario, cell.algorithm, "-", "-", "-", "-",
                 f"ERROR {cell.error}"]
            )
            continue
        spec = registry.get_algorithm(cell.algorithm)
        ok = check_d2_coloring(
            graphs[cell.scenario],
            dict(cell.coloring),
            cell.palette_size,
        ).valid
        rows.append(
            [
                cell.scenario,
                f"{cell.algorithm} [{spec.kind}]",
                cell.rounds,
                cell.colors_used,
                cell.palette_size,
                cell.metrics.total_messages,
                "yes" if ok else "NO",
            ]
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=[b for b in available_backends() if b != "sweep"],
        default=None,
        help="execution engine for each run (default: reference)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan the grid across N sweep workers (0: run serially)",
    )
    args = parser.parse_args()

    instances = [
        ("petersen", petersen()),
        ("hoffman-singleton", hoffman_singleton()),
        ("rr(8,64)", random_regular(8, 64, seed=4)),
    ]
    if args.workers > 0:
        rows = run_all_swept(
            instances, args.workers, backend=args.backend
        )
    else:
        rows = []
        for name, graph in instances:
            rows.extend(run_all(name, graph, backend=args.backend))
    print(
        ascii_table(
            [
                "instance",
                "algorithm",
                "rounds",
                "colors",
                "palette",
                "messages",
                "valid",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
