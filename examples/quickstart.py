"""Quickstart: d2-color a graph with the paper's main algorithm.

Builds a random regular graph, runs Improved-d2-Color (Theorem 1.1),
verifies the result with the independent checker, and prints the
per-phase round breakdown.

Run:  python examples/quickstart.py
"""

from repro import check_d2_coloring, improved_d2_color
from repro.graphs.generators import random_regular


def main() -> None:
    graph = random_regular(8, 96, seed=7)
    delta = max(d for _, d in graph.degree)
    print(
        f"graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges, max degree {delta}"
    )
    print(f"palette: Δ²+1 = {delta * delta + 1} colors")

    result = improved_d2_color(graph, seed=42)
    report = check_d2_coloring(
        graph, result.coloring, result.palette_size
    )

    print(f"\n{result.summary()}")
    print(f"checker: {report.explain()}")
    print("\nper-phase rounds:")
    for name, rounds in result.phase_rounds().items():
        print(f"  {name:>16}: {rounds}")
    print(
        f"\nbandwidth: max message "
        f"{result.metrics.max_message_bits} bits "
        f"(budget {result.metrics.budget_bits}), "
        f"{result.metrics.violations} violations"
    )


if __name__ == "__main__":
    main()
