"""A tour of the deterministic machinery (Sec. 3 + Appendix B).

Walks through every stage the paper composes:

1. Linial on G² (Theorem B.1): IDs → O(Δ⁴) colors;
2. locally-iterative (Theorem B.4): O(Δ⁴) → O(Δ²), with the
   Lemma B.3 blocked-phase bound printed;
3. color reduction (Theorem B.2): O(Δ²) → Δ²+1;
4. local refinement splitting (Theorem 3.2), recursively (Lemma 3.3);
5. the (1+ε)Δ² coloring of Theorem 1.3 built from those parts.

Run:  python examples/deterministic_pipeline_tour.py
"""

from repro.det.color_reduction import color_reduction_d2
from repro.det.eps_d2coloring import eps_d2_color
from repro.det.linial import linial_d2_coloring
from repro.det.locally_iterative import locally_iterative_d2_coloring
from repro.det.recursive_split import recursive_split
from repro.graphs.generators import random_regular
from repro.graphs.square import max_d2_degree
from repro.verify.checker import check_d2_coloring


def main() -> None:
    graph = random_regular(8, 120, seed=9)
    delta = max(d for _, d in graph.degree)
    print(
        f"graph: n={graph.number_of_nodes()}, Δ={delta}, "
        f"max d2-degree {max_d2_degree(graph)}"
    )

    # Stage 1: Linial.
    linial = linial_d2_coloring(graph)
    print(
        f"\n[B.1] Linial: {linial.palette_size} colors in "
        f"{linial.rounds} rounds "
        f"({linial.params['iterations']} iterations)"
    )

    # Stage 2: locally-iterative.
    iterative = locally_iterative_d2_coloring(
        graph,
        color_in=linial.coloring,
        palette_in=linial.palette_size,
        stop_early=False,
    )
    q = iterative.params["q"]
    print(
        f"[B.4] locally-iterative: q={q} "
        f"(prime in (4Δ², 8Δ²) = ({4 * delta**2}, {8 * delta**2})), "
        f"{iterative.rounds} rounds"
    )
    print(
        f"      Lemma B.3: max blocked phases "
        f"{iterative.params['max_blocked_phases']} "
        f"<= 2Δ² = {2 * delta**2}"
    )

    # Stage 3: color reduction.
    reduced = color_reduction_d2(
        graph,
        color_in=iterative.coloring,
        palette_in=iterative.palette_size,
    )
    report = check_d2_coloring(
        graph, reduced.coloring, reduced.palette_size
    )
    print(
        f"[B.2] color reduction: → {reduced.palette_size} colors in "
        f"{reduced.rounds} rounds; checker: {report.explain()}"
    )

    # Stage 4: recursive splitting (forced to 2 levels to show the
    # mechanism; the paper's threshold keeps h=0 at this scale).
    split = recursive_split(
        graph, eps=0.5, levels=2, lam=0.3, threshold=4
    )
    print(
        f"\n[3.2/3.3] recursive splitting: {split.num_parts} parts, "
        f"max per-part degree {split.max_part_degree} "
        f"(Δ/2^h = {delta / 4:.1f}), charged "
        f"{split.charged_rounds} rounds"
    )

    # Stage 5: Theorem 1.3.
    eps_result = eps_d2_color(graph, eps=0.5)
    report = check_d2_coloring(
        graph, eps_result.coloring, eps_result.palette_size
    )
    print(
        f"[1.3] (1+ε)Δ² coloring: {eps_result.palette_size} colors "
        f"(budget {eps_result.params['color_budget']:.0f}) in "
        f"{eps_result.rounds} rounds; checker: {report.explain()}"
    )


if __name__ == "__main__":
    main()
