"""Strong coloring of a task/resource hypergraph via d2-coloring.

From the paper's introduction: "One natural setting is when the nodes
form a bipartite graph, with 'task' nodes on one side and 'resource'
nodes on the other side.  We want to color the task nodes so that
nodes using the same resource receive different colors."

Two tasks sharing a resource are at distance 2 in the bipartite
graph, so a d2-coloring restricted to the task side is exactly such a
strong coloring.  This example builds a random task/resource system,
d2-colors it with the deterministic algorithm (Theorem 1.2), and
verifies the scheduling property: within every resource's task set,
all colors are distinct — so tasks of one color class can run
concurrently without resource contention.

Run:  python examples/task_resource_strong_coloring.py
"""

from collections import defaultdict

from repro import deterministic_d2_color
from repro.graphs.generators import random_bipartite_tasks


def main() -> None:
    tasks, resources, per_task = 40, 15, 3
    graph = random_bipartite_tasks(
        tasks, resources, per_task, seed=5
    )
    print(
        f"{tasks} tasks, {resources} resources, "
        f"{per_task} resources per task"
    )

    result = deterministic_d2_color(graph)
    coloring = result.coloring

    # Group tasks by resource and check strong-coloring property.
    tasks_of_resource = defaultdict(list)
    for task in range(tasks):
        for resource in graph.neighbors(task):
            tasks_of_resource[resource].append(task)
    for resource, users in tasks_of_resource.items():
        colors = [coloring[t] for t in users]
        assert len(colors) == len(set(colors)), (
            f"resource {resource} has a color clash"
        )
    print("strong coloring verified: no resource sees a repeat")

    # Color classes = conflict-free execution waves.
    waves = defaultdict(list)
    for task in range(tasks):
        waves[coloring[task]].append(task)
    print(
        f"{len(waves)} execution waves "
        f"(deterministic, {result.rounds} CONGEST rounds):"
    )
    for wave, members in sorted(waves.items())[:6]:
        print(f"  wave {wave:>3}: {len(members)} tasks")


if __name__ == "__main__":
    main()
