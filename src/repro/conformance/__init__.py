"""Differential conformance harness for the algorithm registry.

``repro.conformance`` states the one contract every registered
d2-coloring algorithm must satisfy and checks it on a shared scenario
corpus:

- :mod:`repro.conformance.scenarios` — the corpus (regular, random,
  dense, Moore-tight, degenerate, and adversarial instances);
- :mod:`repro.conformance.runner` — the differential runner executing
  every :data:`repro.registry.ALGORITHMS` spec on every applicable
  scenario, validating with :mod:`repro.verify.checker` and metering
  bandwidth via :mod:`repro.congest.metrics`.

Quick sweep::

    from repro.conformance import run_conformance

    report = run_conformance()
    assert report.ok, report.explain()
"""

from repro.conformance.runner import (
    ConformanceRecord,
    ConformanceReport,
    coloring_fingerprint,
    evaluate_pair,
    run_conformance,
)
from repro.conformance.scenarios import (
    Scenario,
    build_corpus,
    build_large_corpus,
    corpus_names,
)

__all__ = [
    "ConformanceRecord",
    "ConformanceReport",
    "Scenario",
    "build_corpus",
    "build_large_corpus",
    "coloring_fingerprint",
    "corpus_names",
    "evaluate_pair",
    "run_conformance",
]
