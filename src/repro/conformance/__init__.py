"""Differential conformance harness for the algorithm registry.

``repro.conformance`` states the one contract every registered
d2-coloring algorithm must satisfy and checks it on a shared corpus:

- the corpus itself lives in :mod:`repro.workloads` (the ``"corpus"``
  tag slice of the declarative workload registry — regular, random,
  dense, Moore-tight, degenerate, adversarial, and the related-work
  families); :mod:`repro.conformance.scenarios` remains as a thin
  compatibility shim over it;
- :mod:`repro.conformance.runner` — the differential runner executing
  every :data:`repro.registry.ALGORITHMS` spec on every applicable
  scenario, validating with :mod:`repro.verify.checker` against the
  cached per-instance G² adjacency and metering bandwidth via
  :mod:`repro.congest.metrics`.

Quick sweep::

    from repro.conformance import run_conformance

    report = run_conformance()
    assert report.ok, report.explain()
"""

from repro.conformance.runner import (
    ConformanceRecord,
    ConformanceReport,
    coloring_fingerprint,
    evaluate_pair,
    run_conformance,
)
from repro.conformance.scenarios import (
    Scenario,
    build_corpus,
    build_large_corpus,
    corpus_names,
)

__all__ = [
    "ConformanceRecord",
    "ConformanceReport",
    "Scenario",
    "build_corpus",
    "build_large_corpus",
    "coloring_fingerprint",
    "corpus_names",
    "evaluate_pair",
    "run_conformance",
]
