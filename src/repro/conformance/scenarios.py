"""Compatibility shim: the scenario corpus now lives in
:mod:`repro.workloads`.

A "scenario" was a named, seedable graph family instance; that concept
has been absorbed into the declarative workload registry
(:class:`repro.workloads.WorkloadSpec`), which adds frozen parameter
points, family/tag filtering, declared n/Δ bounds, and the
content-addressed instance cache.  This module keeps the historical
import surface working:

- ``Scenario(name, build, tags)`` builds an (unregistered) ad-hoc
  spec from a bare ``seed -> graph`` callable;
- :func:`build_corpus` / :func:`build_large_corpus` /
  :func:`corpus_names` return the ``"corpus"`` / ``"large"`` tag
  slices of the registry.

New code should import from :mod:`repro.workloads` directly (see
docs/WORKLOADS.md).
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet

import networkx as nx

from repro.workloads import WorkloadSpec, adhoc
from repro.workloads.corpus import (
    build_corpus,
    build_large_corpus,
    corpus_names,
)

__all__ = [
    "Scenario",
    "WorkloadSpec",
    "build_corpus",
    "build_large_corpus",
    "corpus_names",
]


def Scenario(  # noqa: N802 - historical class name, now a factory
    name: str,
    build: Callable[[int], nx.Graph],
    tags: FrozenSet[str] = frozenset(),
    **_ignored: Any,
) -> WorkloadSpec:
    """Wrap a bare builder as a :class:`WorkloadSpec` (old API)."""
    return adhoc(name, build, tags)
