"""The conformance scenario corpus.

A :class:`Scenario` is a named, seedable graph family instance.  The
corpus covers the regimes the paper cares about (regular, G(n,p),
dense clique clusters, Moore graphs where the Δ²+1 bound is tight)
plus the degenerate and adversarial shapes where implementations
usually break: paths, stars, edgeless graphs, bipartite double
covers, high-girth near-regular graphs, disconnected unions, and
multileaf hubs.

Every graph is small enough that the full registry × corpus product
runs in seconds — the corpus is a correctness net, not a benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence

import networkx as nx

from repro.graphs.generators import (
    bipartite_double,
    clique_clusters,
    disconnected_mix,
    double_star,
    gnp,
    grid,
    high_girth,
    multileaf,
    random_regular,
)
from repro.graphs.instances import cycle5, petersen


@dataclass(frozen=True)
class Scenario:
    """One named conformance input family."""

    name: str
    #: ``seed -> graph`` (deterministic in the seed).
    build: Callable[[int], nx.Graph]
    #: Free-form labels ("degenerate", "adversarial", "dense", ...).
    tags: FrozenSet[str]

    def graph(self, seed: int = 0) -> nx.Graph:
        return self.build(seed)


def _scenario(name: str, build, *tags: str) -> Scenario:
    return Scenario(name=name, build=build, tags=frozenset(tags))


def build_corpus(extra: Sequence[Scenario] = ()) -> List[Scenario]:
    """The standard corpus, optionally extended with ``extra``.

    Builders take the conformance seed so that randomized families
    re-sample under different seeds while staying reproducible.
    """
    corpus = [
        # -- degenerate shapes ------------------------------------------
        _scenario(
            "path16", lambda s: nx.path_graph(16), "degenerate", "sparse"
        ),
        _scenario(
            "star13", lambda s: nx.star_graph(12), "degenerate", "tree"
        ),
        _scenario(
            "singleton", lambda s: nx.empty_graph(1), "degenerate"
        ),
        _scenario(
            "edgeless8",
            lambda s: nx.empty_graph(8),
            "degenerate",
            "disconnected",
        ),
        _scenario(
            "double-star6", lambda s: double_star(6), "degenerate", "tree"
        ),
        # -- the paper's core regimes -----------------------------------
        _scenario("cycle5", lambda s: cycle5(), "moore", "tight"),
        _scenario("petersen", lambda s: petersen(), "moore", "tight"),
        _scenario(
            "rr4_24",
            lambda s: random_regular(4, 24, seed=s),
            "regular",
        ),
        _scenario(
            "gnp24", lambda s: gnp(24, 0.18, seed=s), "random"
        ),
        _scenario(
            "cliques3x4",
            lambda s: clique_clusters(3, 4, seed=s),
            "dense",
        ),
        _scenario("grid4x5", lambda s: grid(4, 5), "planar"),
        # -- adversarial shapes -----------------------------------------
        _scenario(
            "bipartite-double-petersen",
            lambda s: bipartite_double(petersen()),
            "adversarial",
            "bipartite",
        ),
        _scenario(
            "high-girth3_24",
            lambda s: high_girth(3, 24, girth=6, seed=s),
            "adversarial",
            "sparse",
        ),
        _scenario(
            "disconnected-mix",
            lambda s: disconnected_mix(seed=s),
            "adversarial",
            "disconnected",
        ),
        _scenario(
            "multileaf4x5",
            lambda s: multileaf(4, 5),
            "adversarial",
            "tree",
        ),
    ]
    corpus.extend(extra)
    return corpus


def build_large_corpus(extra: Sequence[Scenario] = ()) -> List[Scenario]:
    """The ``slow``-tier corpus: the same families, n in the thousands.

    These are scale-ups of the standard corpus shapes (regular,
    sparse G(n,p), planar grid, dense clique clusters, multileaf) at
    sizes where simulator throughput — not algorithmic subtlety — is
    what breaks.  The tier is excluded from tier-1 runs (``slow``
    pytest marker) and executed through the ``sweep`` backend so the
    grid parallelizes across workers.
    """
    corpus = [
        _scenario(
            "rr4-2048",
            lambda s: random_regular(4, 2048, seed=s),
            "large",
            "regular",
        ),
        _scenario(
            "gnp1500-sparse",
            lambda s: gnp(1500, 2.5 / 1500, seed=s),
            "large",
            "random",
            "sparse",
        ),
        _scenario(
            "grid40x50",
            lambda s: grid(40, 50),
            "large",
            "planar",
        ),
        _scenario(
            "cliques64x6",
            lambda s: clique_clusters(64, 6, seed=s),
            "large",
            "dense",
        ),
        _scenario(
            "multileaf48x40",
            lambda s: multileaf(48, 40),
            "large",
            "adversarial",
            "tree",
        ),
    ]
    corpus.extend(extra)
    return corpus


def corpus_names(
    corpus: Optional[Sequence[Scenario]] = None,
) -> List[str]:
    """Names in corpus order (stable pytest parametrization ids)."""
    return [s.name for s in (corpus or build_corpus())]
