"""The differential conformance runner.

Executes every registered algorithm on every applicable scenario and
checks the shared contract:

- the coloring is checker-valid (``repro.verify.checker``; the
  distance-2 adjacency comes from the workload instance cache, so G²
  is derived once per instance instead of once per spec × scenario —
  the checker-vs-square agreement itself is property-tested
  independently in ``tests/test_checker_properties.py``);
- the coloring is complete and uses at most the spec's palette bound;
- distributed runs are metered by :mod:`repro.congest.metrics`
  against the bandwidth policy (budget recorded, zero violations when
  the spec promises compliance, traffic actually observed);
- differentially: algorithms must agree with the centralized oracle
  that the instance is colorable within the common Δ²+1 budget, and
  no distributed algorithm may use *fewer* colors than the scenario's
  chromatic lower bound witnessed by the oracle's validity check.
- the same seed reproduces the identical coloring (repeatability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro import registry
from repro.congest.policy import BandwidthPolicy
from repro.obs import trace as obs_trace
from repro.registry import AlgorithmSpec, graph_delta
from repro.results import ColoringResult
from repro.util.tables import ascii_table
from repro.verify.checker import check_d2_coloring
from repro.workloads import (
    Instance,
    WorkloadSpec,
    build_corpus,
    instance_cache,
    is_registered_spec,
)


def coloring_fingerprint(result: ColoringResult) -> Tuple:
    """Canonical, comparable form of a coloring (for repeatability)."""
    return tuple(sorted(result.coloring.items()))


def _scenario_instance(scenario, seed: int) -> Instance:
    """The cached instance behind a scenario (registered workloads hit
    the registry cache; ad-hoc scenarios are interned by content)."""
    from repro.workloads import is_registered_spec

    cache = instance_cache()
    if is_registered_spec(scenario):
        return cache.get(scenario, seed)
    return cache.intern_graph(scenario.name, seed, scenario.graph(seed))


@dataclass
class ConformanceRecord:
    """Outcome of one (algorithm, scenario) execution."""

    scenario: str
    algorithm: str
    colors_used: int = 0
    palette_bound: int = 0
    rounds: int = 0
    messages: int = 0
    failures: List[str] = field(default_factory=list)
    #: True when the run raised instead of returning a coloring; such
    #: records carry no result and are excluded from differential
    #: cross-checks.
    raised: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, reason: str) -> None:
        self.failures.append(reason)


@dataclass
class ConformanceReport:
    """All records of one conformance sweep."""

    records: List[ConformanceRecord] = field(default_factory=list)
    #: (scenario, algorithm) pairs skipped by the supports predicate.
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def failures(self) -> List[ConformanceRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def explain(self) -> str:
        if self.ok:
            return (
                f"conformance ok: {len(self.records)} runs, "
                f"{len(self.skipped)} skipped"
            )
        lines = [f"conformance FAILED ({len(self.failures)} records):"]
        for record in self.failures:
            for reason in record.failures:
                lines.append(
                    f"  {record.scenario} / {record.algorithm}: {reason}"
                )
        return "\n".join(lines)

    def summary(self) -> str:
        rows = [
            [
                r.scenario,
                r.algorithm,
                r.colors_used,
                r.palette_bound,
                r.rounds,
                r.messages,
                "ok" if r.ok else "; ".join(r.failures),
            ]
            for r in self.records
        ]
        return ascii_table(
            [
                "scenario",
                "algorithm",
                "colors",
                "bound",
                "rounds",
                "messages",
                "status",
            ],
            rows,
        )


def _check_record(
    record: ConformanceRecord,
    spec: AlgorithmSpec,
    graph: nx.Graph,
    result: ColoringResult,
    policy: BandwidthPolicy,
    check_repeatability: bool,
    seed: int,
    backend=None,
    instance: Optional[Instance] = None,
) -> None:
    """Validate one run against the contract.

    ``instance``, when given, supplies the cached derived artifacts
    (Δ, the G² adjacency) so the checks reuse one computation per
    instance instead of recomputing per spec × scenario.
    """
    if instance is not None:
        delta = instance.delta
        csr = instance.square_csr()
        if csr.has_selfloops:
            adjacency = instance.d2_adjacency()
        else:
            # Array fast path: the checker scans the G² CSR rows
            # instead of walking a set-of-sets adjacency.
            adjacency = csr
    else:
        delta = graph_delta(graph)
        adjacency = None
    bound = spec.palette_bound(delta)
    record.colors_used = result.colors_used
    record.palette_bound = bound
    record.rounds = result.rounds
    record.messages = result.metrics.total_messages

    report = check_d2_coloring(
        graph, result.coloring, bound, adjacency=adjacency
    )
    if not report.valid:
        record.fail(f"checker: {report.explain()}")
    if not result.complete:
        record.fail("coloring incomplete (uncolored nodes)")
    if set(result.coloring) != set(graph.nodes):
        record.fail("coloring domain differs from node set")
    if result.colors_used > bound:
        record.fail(
            f"palette bound exceeded: {result.colors_used} > {bound}"
        )

    if spec.distributed:
        metrics = result.metrics
        expected_budget = policy.budget_bits(graph.number_of_nodes())
        # Zero-communication runs (e.g. Δ = 0 early exits) have no
        # traffic to meter; otherwise the recorded budget must be the
        # policy's.
        if metrics.total_messages > 0 and metrics.budget_bits != expected_budget:
            record.fail(
                "bandwidth not metered against the policy budget "
                f"({metrics.budget_bits} != {expected_budget})"
            )
        if (
            graph.number_of_edges() > 0
            and result.rounds > 0
            and metrics.total_messages == 0
        ):
            record.fail("no traffic metered despite communication rounds")
        if spec.expects_compliant and not metrics.compliant:
            record.fail(
                f"{metrics.violations} bandwidth violations "
                f"(worst {metrics.worst_violation_bits} bits over "
                f"budget {metrics.budget_bits})"
            )

    if check_repeatability:
        again = spec.run(graph, seed=seed, policy=policy, backend=backend)
        if coloring_fingerprint(again) != coloring_fingerprint(result):
            record.fail("same seed produced a different coloring")


def evaluate_pair(
    spec: AlgorithmSpec,
    graph: nx.Graph,
    scenario_name: str,
    seed: int,
    policy: BandwidthPolicy,
    check_repeatability: bool = False,
    backend=None,
    instance: Optional[Instance] = None,
) -> ConformanceRecord:
    """Run one (algorithm, scenario) cell and check the contract."""
    record = ConformanceRecord(scenario_name, spec.name)
    with obs_trace.span(
        "conformance.pair",
        algorithm=spec.name,
        scenario=scenario_name,
        seed=seed,
    ) as sp:
        try:
            result = spec.run(
                graph, seed=seed, policy=policy, backend=backend
            )
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            record.raised = True
            record.fail(f"raised {type(exc).__name__}: {exc}")
            sp.annotate(passed=False, error=True)
            return record
        _check_record(
            record,
            spec,
            graph,
            result,
            policy,
            check_repeatability,
            seed,
            backend,
            instance=instance,
        )
        sp.annotate(passed=record.ok)
    return record


class _CellEvaluator:
    """Picklable per-cell conformance worker for sweep grids.

    Runs the full contract check (checker validity, palette bound,
    metering, repeatability) *inside* the worker, so the expensive
    part of large-instance conformance parallelizes instead of
    serializing in the parent.  The cell's instance — including the
    prebuilt G² adjacency shipped through the pool initializer — comes
    from the worker's :func:`~repro.workloads.instance_cache`, so the
    checks never recompute the square graph per cell.

    Registered specs travel by name and are re-resolved from the
    worker's registry; ad-hoc specs (``run_conformance(specs=[...])``
    with something never registered — a spec under development, a
    deliberately lying spec in a test) travel by value in
    ``extra_specs``.  Ad-hoc specs therefore work on any executor
    whose task transport can carry them (always for ``serial`` and
    ``thread``; for ``process`` they must be picklable).
    """

    __slots__ = ("policy", "check_repeatability", "inner", "extra_specs")

    def __init__(self, policy, check_repeatability, inner, extra_specs):
        self.policy = policy
        self.check_repeatability = check_repeatability
        self.inner = inner
        self.extra_specs = extra_specs

    def __call__(self, cell) -> ConformanceRecord:
        spec = self.extra_specs.get(cell.algorithm)
        if spec is None:
            spec = registry.get_algorithm(cell.algorithm)
        instance = cell.instance()
        return evaluate_pair(
            spec,
            instance.graphlike(),
            cell.scenario,
            cell.seed,
            self.policy,
            self.check_repeatability,
            self.inner,
            instance=instance,
        )


def _differential_checks(
    scenario,
    n: int,
    delta: int,
    scenario_records: List[ConformanceRecord],
) -> None:
    """Cross-checks over one scenario's full result set (in place)."""
    # On Moore graphs ("tight" scenarios) G² is complete, so every
    # valid coloring is a rainbow: all algorithms must agree on
    # exactly n colors, whatever their palette bound.
    if "tight" in scenario.tags:
        for record in scenario_records:
            if record.ok and record.colors_used != n:
                record.fail(
                    "differential: Moore instance needs exactly "
                    f"{n} colors, used {record.colors_used}"
                )
    # Feasibility agreement: of the algorithms whose declared bound
    # fits the common Δ²+1 budget, at least one must witness a
    # coloring within it.  (Slack-palette specs are allowed to exceed
    # it; they are no witness either way.)
    common = delta * delta + 1
    witnesses = [
        r for r in scenario_records if r.palette_bound <= common
    ]
    if witnesses and min(r.colors_used for r in witnesses) > common:
        for record in witnesses:
            record.fail(
                "differential: no algorithm stayed within the "
                f"common Δ²+1 = {common} budget"
            )


def run_conformance(
    specs: Optional[Sequence[AlgorithmSpec]] = None,
    scenarios: Optional[Sequence[WorkloadSpec]] = None,
    seed: int = 0,
    policy: Optional[BandwidthPolicy] = None,
    check_repeatability: bool = False,
    backend=None,
) -> ConformanceReport:
    """Differentially run ``specs`` × ``scenarios`` and check them all.

    Scenario instances come from the workload cache, built once per
    scenario with their derived artifacts (Δ, G² adjacency) shared by
    every algorithm — that is what makes the sweep differential
    rather than a set of independent smoke tests, and what keeps the
    contract checks off the per-cell G²-rebuild path.

    ``backend`` selects the execution engine (see ``docs/BACKENDS.md``):
    a round-level engine name ("reference", "fastpath") runs the usual
    serial matrix on that engine; a
    :class:`~repro.exec.sweep.SweepBackend` (or the name "sweep") fans
    the whole registry × scenario grid across its worker pool — with
    the contract checks executing inside the workers, against prebuilt
    instances shipped through the pool initializer.  Reports are
    identical either way — cells are self-contained and collected in
    grid order.
    """
    # Read ALGORITHMS through the module attribute (not a frozen
    # from-import) so specs registered after import are swept too.
    specs = (
        list(specs) if specs is not None else list(registry.ALGORITHMS)
    )
    scenarios = (
        list(scenarios) if scenarios is not None else build_corpus()
    )
    policy = policy or BandwidthPolicy()
    report = ConformanceReport()

    from repro.exec import get_backend
    from repro.exec.sweep import SweepBackend, SweepCell

    engine = get_backend(backend) if backend is not None else None
    if isinstance(engine, SweepBackend):
        # Grid path: build all cells up front, fan out, re-group.
        cells = []
        instances = []
        stats = {}  # scenario name -> (scenario, n, delta)
        for scenario in scenarios:
            instance = _scenario_instance(scenario, seed)
            # Prewarm the expensive artifact once, in the parent, so
            # process workers receive it prebuilt (the G² CSR rows —
            # what the checker fast path consumes).
            instance.square_csr()
            instances.append(instance)
            graph = instance.graphlike()
            stats[scenario.name] = (
                scenario,
                instance.n,
                instance.delta,
            )
            for spec in specs:
                if not spec.applicable(graph):
                    report.skipped.append((scenario.name, spec.name))
                    continue
                # The evaluator carries the policy; cells stay lean:
                # workload-keyed when registered (resolved through
                # the worker cache seeded with the prebuilt
                # instances), payload-carrying otherwise.
                if is_registered_spec(scenario):
                    cells.append(
                        SweepCell.from_workload(
                            spec.name, scenario.name, seed
                        )
                    )
                else:
                    cells.append(
                        SweepCell(
                            algorithm=spec.name,
                            scenario=scenario.name,
                            seed=seed,
                            nodes=instance.nodes,
                            edges=instance.edges,
                        )
                    )
        extra_specs = {}
        for spec in specs:
            try:
                registered = registry.get_algorithm(spec.name)
            except KeyError:
                registered = None
            if registered is not spec:
                extra_specs[spec.name] = spec
        evaluator = _CellEvaluator(
            policy, check_repeatability, engine.inner, extra_specs
        )
        report.records = engine.map(evaluator, cells, instances=instances)
        by_scenario: Dict[str, List[ConformanceRecord]] = {}
        for record in report.records:
            if not record.raised:
                by_scenario.setdefault(record.scenario, []).append(
                    record
                )
        for name, records in by_scenario.items():
            scenario, n, delta = stats[name]
            _differential_checks(scenario, n, delta, records)
        return report

    for scenario in scenarios:
        instance = _scenario_instance(scenario, seed)
        graph = instance.graphlike()
        delta = instance.delta
        scenario_records: List[ConformanceRecord] = []
        for spec in specs:
            if not spec.applicable(graph):
                report.skipped.append((scenario.name, spec.name))
                continue
            record = evaluate_pair(
                spec,
                graph,
                scenario.name,
                seed,
                policy,
                check_repeatability,
                engine,
                instance=instance,
            )
            report.records.append(record)
            if not record.raised:
                scenario_records.append(record)

        # Differential cross-checks over the scenario's result set.
        if scenario_records:
            _differential_checks(
                scenario,
                instance.n,
                delta,
                scenario_records,
            )
    return report
