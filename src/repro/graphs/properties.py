"""Sparsity, slack and leeway (Sec. 2, Definition 2.4).

These are *analysis* quantities: the paper's algorithms never compute
them (nodes "do not know their leeway", Sec. 2), but the proofs hinge
on them, and several of our experiments (E9) verify their empirical
relationships, so we compute them centrally.

Definitions, with Δ the max degree of G and palette [Δ²] = {0..Δ²}:

- *sparsity* ζ(v): G²[v] (the subgraph of G² induced by v's
  d2-neighbors) has binom(Δ², 2) - Δ²·ζ(v) edges; equivalently ζ(v)
  is the average "non-degree" of that neighborhood, scaled by 1/2.
- *slack*  (w.r.t. a partial coloring): Δ² + 1 minus (number of
  distinct colors among colored d2-neighbors + number of live
  d2-neighbors).
- *leeway*: slack + number of live d2-neighbors = number of palette
  colors not used among d2-neighbors.
- v is *solid* if leeway φ <= c1·Δ² and sparsity ζ <= 4e³·φ.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Set

import networkx as nx

from repro.graphs.square import d2_neighborhoods

E_CUBED = math.e**3


def sparsity(graph: nx.Graph, delta: Optional[int] = None) -> Dict:
    """ζ(v) for every node v (Definition 2.4).

    ``delta`` defaults to the true max degree; passing a larger known
    bound matches the paper's use of a globally known Δ.
    """
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    delta_sq = delta * delta
    if delta_sq == 0:
        return {v: 0.0 for v in graph.nodes}
    neighborhoods = d2_neighborhoods(graph)
    full_edges = delta_sq * (delta_sq - 1) / 2.0
    result = {}
    for v, nbrs in neighborhoods.items():
        edges = 0
        nbr_set = nbrs
        for u in nbrs:
            edges += sum(1 for w in neighborhoods[u] if w in nbr_set)
        edges //= 2
        result[v] = (full_edges - edges) / delta_sq
    return result


def _distinct_neighbor_colors(nbrs: Iterable, coloring: Dict) -> Set:
    return {
        coloring[u]
        for u in nbrs
        if coloring.get(u) is not None
    }


def slack(
    graph: nx.Graph,
    coloring: Dict,
    delta: Optional[int] = None,
) -> Dict:
    """Slack of every node under a partial ``coloring``.

    ``coloring`` maps node -> color or None (live).  Uses the palette
    size Δ²+1 of the paper.
    """
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    palette = delta * delta + 1
    neighborhoods = d2_neighborhoods(graph)
    result = {}
    for v, nbrs in neighborhoods.items():
        used = len(_distinct_neighbor_colors(nbrs, coloring))
        live = sum(1 for u in nbrs if coloring.get(u) is None)
        result[v] = palette - (used + live)
    return result


def leeway(
    graph: nx.Graph,
    coloring: Dict,
    delta: Optional[int] = None,
) -> Dict:
    """Leeway of every node: palette colors unused in the
    d2-neighborhood (= slack + live d2-neighbors)."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    palette = delta * delta + 1
    neighborhoods = d2_neighborhoods(graph)
    result = {}
    for v, nbrs in neighborhoods.items():
        used = len(_distinct_neighbor_colors(nbrs, coloring))
        result[v] = palette - used
    return result


def live_d2_counts(graph: nx.Graph, coloring: Dict) -> Dict:
    """Number of uncolored d2-neighbors of every node."""
    neighborhoods = d2_neighborhoods(graph)
    return {
        v: sum(1 for u in nbrs if coloring.get(u) is None)
        for v, nbrs in neighborhoods.items()
    }


def solid_nodes(
    graph: nx.Graph,
    coloring: Dict,
    c1: float,
    delta: Optional[int] = None,
) -> Set:
    """Nodes that are *solid* (Definition 2.4) under ``coloring``:
    leeway φ <= c1·Δ² and sparsity ζ <= 4e³·φ."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    lee = leeway(graph, coloring, delta)
    spars = sparsity(graph, delta)
    bound = c1 * delta * delta
    return {
        v
        for v in graph.nodes
        if lee[v] <= bound and spars[v] <= 4 * E_CUBED * lee[v]
    }
