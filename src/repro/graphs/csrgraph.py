"""A lazily-materialized ``nx.Graph`` view over a CSR adjacency.

:class:`CSRGraphView` is how CSR-born instances stay compatible with
every networkx consumer in the repository without paying for an
``nx.Graph``.  It *is* an ``nx.Graph`` subclass, but its ``_adj`` /
``_node`` dict-of-dicts are non-data descriptors that build from the
CSR arrays only when first touched — any nx algorithm or accessor the
view does not override transparently materializes and works on the
real structure (the correctness safety valve).  The hot accessors the
pipeline actually uses (``nodes``, ``edges``, ``degree``,
``neighbors``, ``has_edge``, counts, iteration) are overridden to
answer straight from the arrays, so kernel-path runs at n = 2²⁰
never build a Python dict per node.

Views are immutable (mutators raise); callers that need to mutate —
``high_girth``, ``sampling_palette_graph``, ``with_max_degree`` —
call :meth:`CSRGraphView.copy`, which returns a *real* ``nx.Graph``.
When the view was built by a generator port, ``copy`` replays the
original networkx construction (``nx_factory``) so downstream
mutation walks adjacency in the byte-identical legacy order.

``graph.materialized`` reports whether the dict fallback was ever
taken; the huge-tier CI budget assertion uses it to fail if nx
sneaks back onto the kernel path.

nx internals (subgraph views, ``nx.freeze``) default-construct the
class with no arguments and then assign ``_adj``/``_node`` filter
atlases directly; a view with ``csr_adjacency is None`` therefore
behaves exactly like a plain ``nx.Graph`` — every override delegates.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import networkx as nx
import numpy as np

__all__ = ["CSRGraphView"]


class _LazySlot:
    """Non-data descriptor: build once, shadow via the instance dict."""

    def __init__(self, name: str, builder: Callable):
        self.name = name
        self.builder = builder

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        value = self.builder(obj)
        obj.__dict__[self.name] = value
        return value


class _CSRNodeView:
    """Array-backed stand-in for ``nx.NodeView`` (attr-free nodes)."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __contains__(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self._n

    def __getitem__(self, v):
        if v not in self:
            raise KeyError(v)
        return {}

    def __call__(self, data=False, default=None):
        if data is False:
            return self
        return self.data(data, default)

    def data(self, data=True, default=None):
        if data is False:
            return self
        fill = default if data is not True else None
        if data is True:
            return ((v, {}) for v in range(self._n))
        return ((v, fill) for v in range(self._n))

    def get(self, v, default=None):
        return {} if v in self else default

    def items(self):
        return ((v, {}) for v in range(self._n))


class _CSREdgeView:
    """Array-backed stand-in for ``nx.EdgeView`` (attr-free edges).

    Iterates the CSR upper triangle row-major — which, rows being
    sorted, is exactly lexicographically sorted ``(u, v)`` with
    ``u < v``: the canonical-payload order.
    """

    __slots__ = ("_view",)

    def __init__(self, view: "CSRGraphView"):
        self._view = view

    def _pairs(self):
        csr = self._view.csr_adjacency
        indptr, indices = csr.g_indptr, csr.g_indices
        for u in range(csr.n):
            row = indices[indptr[u]:indptr[u + 1]]
            for v in row[row > u].tolist():
                yield (u, v)

    def __len__(self) -> int:
        return self._view.csr_adjacency.g_indices.size // 2

    def __iter__(self):
        return self._pairs()

    def __contains__(self, e) -> bool:
        try:
            u, v = e
        except (TypeError, ValueError):
            return False
        return self._view.has_edge(u, v)

    def __getitem__(self, e):
        u, v = e
        if not self._view.has_edge(u, v):
            raise KeyError(e)
        return {}

    def __call__(self, nbunch=None, data=False, default=None):
        if nbunch is not None:
            # Uncommon path: delegate to a real EdgeView (materializes).
            return nx.classes.reportviews.EdgeView(self._view)(
                nbunch, data=data, default=default
            )
        if data is False:
            return self
        return self.data(data, default)

    def data(self, data=True, default=None):
        if data is False:
            return self
        fill = {} if data is True else default
        return ((u, v, fill) for u, v in self._pairs())


class _CSRDegreeView:
    """Array-backed stand-in for ``nx.DegreeView``."""

    __slots__ = ("_view",)

    def __init__(self, view: "CSRGraphView"):
        self._view = view

    def __iter__(self):
        degrees = self._view.csr_adjacency.degrees
        return iter(enumerate(degrees.tolist()))

    def __len__(self) -> int:
        return self._view.csr_adjacency.n

    def __getitem__(self, v) -> int:
        csr = self._view.csr_adjacency
        if not (isinstance(v, int) and 0 <= v < csr.n):
            raise KeyError(v)
        return int(csr.degrees[v])

    def __call__(self, nbunch=None, weight=None):
        if weight is not None:
            # Weighted degrees need edge data (materializes).
            return nx.classes.reportviews.DegreeView(self._view)(
                nbunch, weight=weight
            )
        if nbunch is None:
            return self
        if isinstance(nbunch, int):
            return self[nbunch]
        return iter((v, self[v]) for v in nbunch)


class CSRGraphView(nx.Graph):
    """An ``nx.Graph`` whose structure lives in a ``CSRAdjacency``.

    Constructed by the CSR-direct generators; every networkx code
    path keeps working (unoverridden access materializes the
    dict-of-dicts once), while the array-engine hot path never leaves
    numpy.
    """

    def __init__(self, csr=None, nx_factory: Optional[Callable] = None):
        # Deliberately skips nx.Graph.__init__: _adj/_node stay lazy.
        self.graph = {}
        self.__networkx_cache__ = {}
        self.csr_adjacency = csr
        self._nx_factory = nx_factory
        if csr is None:
            self.__dict__["_adj"] = {}
            self.__dict__["_node"] = {}

    # -- lazy dict-of-dicts fallback -----------------------------------

    def _materialize_adj(self):
        csr = self.csr_adjacency
        indptr = csr.g_indptr
        indices = csr.g_indices.tolist()
        adj = {}
        for u in range(csr.n):
            adj[u] = {
                v: {} for v in indices[indptr[u]:indptr[u + 1]]
            }
        return adj

    def _materialize_node(self):
        return {v: {} for v in range(self.csr_adjacency.n)}

    @property
    def materialized(self) -> bool:
        """True once the dict-of-dicts fallback was built."""
        return "_adj" in self.__dict__

    # -- array-backed accessors ----------------------------------------

    def __len__(self) -> int:
        csr = self.csr_adjacency
        return super().__len__() if csr is None else csr.n

    def __iter__(self) -> Iterator[int]:
        csr = self.csr_adjacency
        if csr is None:
            return super().__iter__()
        return iter(range(csr.n))

    def __contains__(self, v) -> bool:
        csr = self.csr_adjacency
        if csr is None:
            return super().__contains__(v)
        return isinstance(v, int) and 0 <= v < csr.n

    def number_of_nodes(self) -> int:
        return len(self)

    def order(self) -> int:
        return len(self)

    def number_of_edges(self, u=None, v=None) -> int:
        csr = self.csr_adjacency
        if csr is None:
            return super().number_of_edges(u, v)
        if u is None:
            return csr.g_indices.size // 2
        return int(self.has_edge(u, v))

    def size(self, weight=None):
        if weight is None:
            return self.number_of_edges()
        return super().size(weight)

    def has_node(self, v) -> bool:
        return v in self

    def has_edge(self, u, v) -> bool:
        csr = self.csr_adjacency
        if csr is None:
            return super().has_edge(u, v)
        if u not in self or v not in self:
            return False
        row = csr.g_indices[csr.g_indptr[u]:csr.g_indptr[u + 1]]
        i = np.searchsorted(row, v)
        return bool(i < row.size and row[i] == v)

    def neighbors(self, v) -> Iterator[int]:
        csr = self.csr_adjacency
        if csr is None:
            return super().neighbors(v)
        if v not in self:
            raise nx.NetworkXError(
                f"The node {v} is not in the graph."
            )
        return iter(
            csr.g_indices[csr.g_indptr[v]:csr.g_indptr[v + 1]].tolist()
        )

    @property
    def nodes(self):
        csr = self.csr_adjacency
        if csr is None:
            return nx.Graph.nodes.__get__(self)
        return _CSRNodeView(csr.n)

    @property
    def edges(self):
        if self.csr_adjacency is None:
            return nx.Graph.edges.__get__(self)
        return _CSREdgeView(self)

    @property
    def degree(self):
        if self.csr_adjacency is None:
            return nx.Graph.degree.__get__(self)
        return _CSRDegreeView(self)

    def copy(self, as_view: bool = False) -> nx.Graph:
        """A *real* ``nx.Graph`` twin (mutation-safe).

        Replays the original networkx construction when the generator
        supplied a factory — downstream code that mutates and walks
        adjacency in insertion order stays byte-identical with the
        pre-CSR pipeline.
        """
        if as_view or self.csr_adjacency is None:
            return super().copy(as_view=as_view)
        if self._nx_factory is not None:
            return self._nx_factory()
        graph = nx.Graph()
        graph.add_nodes_from(range(self.csr_adjacency.n))
        graph.add_edges_from(self.edges)
        return graph

    # -- immutability ---------------------------------------------------

    def _frozen(self, *args, **kwargs):
        if self.csr_adjacency is None:
            raise nx.NetworkXError(
                "frozen graph can't be modified"
            )
        raise nx.NetworkXError(
            "CSR-born graph views are immutable; call .copy() for a "
            "mutable nx.Graph"
        )

    add_node = add_nodes_from = remove_node = remove_nodes_from = _frozen
    add_edge = add_edges_from = add_weighted_edges_from = _frozen
    remove_edge = remove_edges_from = clear = clear_edges = _frozen
    update = _frozen


CSRGraphView._adj = _LazySlot(
    "_adj", CSRGraphView._materialize_adj
)
CSRGraphView._node = _LazySlot(
    "_node", CSRGraphView._materialize_node
)
