"""The square graph G² and distance-2 neighborhoods.

d2-coloring of G is exactly vertex coloring of G², where u, v are
adjacent in G² whenever their distance in G is 1 or 2 (Sec. 1 of the
paper).  These helpers are used by the algorithms *only* for
centralized analysis (sparsity computation, instance generation);
the CONGEST protocols themselves never touch G² directly.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Set

import networkx as nx


def d2_neighbors(graph: nx.Graph, node) -> Set:
    """All nodes at distance 1 or 2 from ``node`` (excluding itself)."""
    out: Set = set()
    for nbr in graph.neighbors(node):
        out.add(nbr)
        out.update(graph.neighbors(nbr))
    out.discard(node)
    return out


def d2_neighborhoods(graph: nx.Graph) -> Dict:
    """``{node: frozenset of d2-neighbors}`` for all nodes at once."""
    adjacency = {v: set(graph.neighbors(v)) for v in graph.nodes}
    result = {}
    for v in graph.nodes:
        out: Set = set(adjacency[v])
        for nbr in adjacency[v]:
            out |= adjacency[nbr]
        out.discard(v)
        result[v] = frozenset(out)
    return result


def square(graph: nx.Graph) -> nx.Graph:
    """Return G²: same nodes, edges between nodes at distance <= 2."""
    sq = nx.Graph()
    sq.add_nodes_from(graph.nodes)
    for v, nbrs in d2_neighborhoods(graph).items():
        for u in nbrs:
            sq.add_edge(v, u)
    return sq


def d2_degree(
    graph: Optional[nx.Graph], node, adjacency: Optional[Any] = None
) -> int:
    """Degree of ``node`` in G² (number of d2-neighbors).

    ``adjacency`` short-circuits the BFS with a precomputed artifact:
    either a ``{node: d2-neighbors}`` map or a
    :class:`~repro.exec.arrays.CSRAdjacency` (whose lazily derived G²
    degree array is read directly, no Python sets involved).
    """
    if adjacency is not None:
        if hasattr(adjacency, "g_indptr"):
            return int(adjacency.d2_degrees[adjacency.index[node]])
        return len(adjacency[node])
    return len(d2_neighbors(graph, node))


def max_d2_degree(
    graph: Optional[nx.Graph], adjacency: Optional[Any] = None
) -> int:
    """Maximum degree of G²; at most Δ² for Δ the max degree of G.

    ``adjacency`` (a ``{node: d2-neighbors}`` map or a
    :class:`~repro.exec.arrays.CSRAdjacency`) skips the set-based
    :func:`d2_neighborhoods` rebuild.  A CSR-backed graph view that
    carries its arrays (``graph.csr_adjacency``) is detected
    automatically, so array-born instances never pay for the dict.
    """
    if adjacency is None:
        adjacency = getattr(graph, "csr_adjacency", None)
    if adjacency is not None:
        if hasattr(adjacency, "g_indptr"):
            return int(adjacency.d2_degrees.max(initial=0))
        return max(
            (len(nbrs) for nbrs in adjacency.values()), default=0
        )
    neighborhoods = d2_neighborhoods(graph)
    return max((len(nbrs) for nbrs in neighborhoods.values()), default=0)


def common_d2_neighbors(graph: nx.Graph, u, v) -> Set:
    """d2-neighbors shared by ``u`` and ``v`` (the similarity measure
    behind the H graphs of Sec. 2.3)."""
    return d2_neighbors(graph, u) & d2_neighbors(graph, v)


def two_paths(graph: nx.Graph, u, v) -> list:
    """All middle nodes w with u-w-v a path in G.

    The paper stresses that d2-neighbors may be connected by *multiple*
    2-paths, which confounds naive random-neighbor selection
    (Sec. 2.1); Reduce-Phase step 2 explicitly filters to single-path
    pairs.
    """
    u_nbrs = set(graph.neighbors(u))
    return [w for w in graph.neighbors(v) if w in u_nbrs]
