"""Paper-specific extremal instances.

Moore graphs of diameter 2 are the canonical hard d2-coloring inputs:
they have n = Δ²+1 nodes and G² is the complete graph K_{Δ²+1}, so a
valid d2-coloring must give *every* node a distinct color — the palette
bound Δ²+1 of Theorems 1.1/1.2 is exactly tight.  Projective-plane
incidence graphs have girth 6, so the d2-neighborhood of every node is
as large as possible (Δ² - Δ + 1 on the point side) while G² is far
from complete — dense but not a clique, the "varying sparsity" regime
of Sec. 2.1.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.graphs.generators import double_star, ensure_int_labels


def cycle5() -> nx.Graph:
    """C5: the Δ = 2 Moore graph (n = Δ² + 1 = 5)."""
    return nx.cycle_graph(5)


def petersen() -> nx.Graph:
    """Petersen graph: the Δ = 3 Moore graph (n = 10 = Δ² + 1)."""
    return ensure_int_labels(nx.petersen_graph())


def hoffman_singleton() -> nx.Graph:
    """Hoffman–Singleton graph: the Δ = 7 Moore graph (n = 50)."""
    return ensure_int_labels(nx.hoffman_singleton_graph())


def moore_graph(delta: int) -> nx.Graph:
    """The diameter-2 Moore graph of degree ``delta`` (2, 3 or 7)."""
    if delta == 2:
        return cycle5()
    if delta == 3:
        return petersen()
    if delta == 7:
        return hoffman_singleton()
    raise ValueError(
        "diameter-2 Moore graphs exist only for degree 2, 3, 7 (and "
        "possibly 57); requested degree "
        f"{delta}"
    )


def _prime_field_points(q: int):
    """Canonical representatives of PG(2, q): projective points over
    F_q, i.e. nonzero triples up to scalar, normalized so the first
    nonzero coordinate is 1."""
    points = []
    for x in range(q):
        for y in range(q):
            points.append((1, x, y))
    for y in range(q):
        points.append((0, 1, y))
    points.append((0, 0, 1))
    return points


def projective_plane_incidence(q: int) -> nx.Graph:
    """Point–line incidence graph of PG(2, q), q prime.

    Bipartite, (q² + q + 1) + (q² + q + 1) nodes, (q+1)-regular,
    girth 6.  Every two points lie on exactly one common line, so any
    two d2-neighbors on the same side share exactly one 2-path — the
    single-2-path regime that Reduce-Phase's step 2 checks for.
    """
    _validate_prime(q)
    points = _prime_field_points(q)
    count = len(points)
    graph = nx.Graph()
    graph.add_nodes_from(range(2 * count))
    # Lines have the same representation; point p is on line l iff
    # <p, l> = 0 over F_q.
    for pi, point in enumerate(points):
        for li, line in enumerate(points):
            dot = (
                point[0] * line[0]
                + point[1] * line[1]
                + point[2] * line[2]
            ) % q
            if dot == 0:
                graph.add_edge(pi, count + li)
    return graph


def _validate_prime(q: int) -> None:
    if q < 2:
        raise ValueError("q must be a prime >= 2")
    for factor in range(2, int(q**0.5) + 1):
        if q % factor == 0:
            raise ValueError(f"q must be prime; {q} = {factor}*{q // factor}")


def verification_lower_bound_tree(delta: int) -> nx.Graph:
    """The Sec. 1 instance behind the Ω(Δ) distance-3 verification
    lower bound: edge {a, b} with (n-2)/2 leaves on each endpoint.
    ``delta`` is the resulting maximum degree (leaves + 1)."""
    return double_star(delta - 1)


#: Legacy spellings of the extremal instances, now registered as
#: ``"named"``-tagged workloads in :mod:`repro.workloads.corpus`.
_NAMED_ALIASES = {
    "c5": "cycle5",
    "hoffman_singleton": "hoffman-singleton",
}


def named_instance(name: str, seed: int = 0) -> nx.Graph:
    """Look up a named extremal instance (cached).

    Delegates to the workload registry — the table that used to live
    here is the ``"named"`` tag slice of :mod:`repro.workloads` — so
    benches and examples get the content-addressed instance cache for
    free.  Old names (``c5``, ``hoffman_singleton``) keep working.
    """
    from repro.workloads import (
        get_workload,
        instance_cache,
        workload_names,
    )

    key = _NAMED_ALIASES.get(name, name)
    try:
        spec = get_workload(key)
    except KeyError:
        known = sorted(
            set(workload_names("named")) | set(_NAMED_ALIASES)
        )
        raise KeyError(
            f"unknown instance {name!r}; have {known}"
        ) from None
    # A copy, preserving this function's historical contract: callers
    # may mutate the result without corrupting the shared cache.
    return instance_cache().get(spec, seed).graph().copy()
