"""Workload graph generators.

All generators return graphs with consecutive integer node labels
(required by the simulator: labels double as O(log n)-bit IDs).

The scalable families — :func:`gnp_fast`, :func:`random_regular`,
:func:`power_law` — are *CSR-direct*: a pure-Python port of the exact
networkx sampling loop (bit-identical ``random.Random`` consumption,
pinned by tests against networkx itself) collects edge arrays, and the
result is a :class:`~repro.graphs.csrgraph.CSRGraphView` born with its
:class:`~repro.exec.arrays.CSRAdjacency` — no dict-of-dicts is ever
built on the huge-tier hot path.  Each view carries an ``nx_factory``
replaying the legacy networkx construction, so mutating consumers
(``high_girth``, ``sampling_palette_graph``, ``with_max_degree``)
``.copy()`` into a byte-identical real ``nx.Graph`` first.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import List, Optional, Set, Tuple

import networkx as nx

from repro.exec.arrays import build_csr_from_edges
from repro.graphs.csrgraph import CSRGraphView


def ensure_int_labels(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 (sorted order when sortable)."""
    try:
        ordering = sorted(graph.nodes)
    except TypeError:
        ordering = list(graph.nodes)
    mapping = {node: index for index, node in enumerate(ordering)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def _regular_edge_set(
    degree: int, n: int, seed: int
) -> Set[Tuple[int, int]]:
    """Exact port of ``nx.random_regular_graph``'s pairing model.

    Consumes the seed's ``random.Random`` stream identically and
    builds the edge set through the same insertion sequence, so the
    sampled graph is the one networkx would return.
    """
    rng = random.Random(seed)
    if degree == 0:
        return set()

    def _suitable(edges, potential_edges):
        if not potential_edges:
            return True
        for s1 in potential_edges:
            for s2 in potential_edges:
                if s1 == s2:
                    break
                if s1 > s2:
                    s1, s2 = s2, s1
                if (s1, s2) not in edges:
                    return True
        return False

    def _try_creation():
        edges = set()
        stubs = list(range(n)) * degree
        while stubs:
            potential_edges = defaultdict(lambda: 0)
            rng.shuffle(stubs)
            stubiter = iter(stubs)
            for s1, s2 in zip(stubiter, stubiter):
                if s1 > s2:
                    s1, s2 = s2, s1
                if s1 != s2 and ((s1, s2) not in edges):
                    edges.add((s1, s2))
                else:
                    potential_edges[s1] += 1
                    potential_edges[s2] += 1
            if not _suitable(edges, potential_edges):
                return None
            stubs = [
                node
                for node, potential in potential_edges.items()
                for _ in range(potential)
            ]
        return edges

    edges = _try_creation()
    while edges is None:
        edges = _try_creation()
    return edges


def random_regular(degree: int, n: int, seed: int = 0) -> nx.Graph:
    """Connected-ish random ``degree``-regular graph on ``n`` nodes.

    CSR-direct: returns a :class:`CSRGraphView` over the exact edge
    set networkx would sample for this seed.
    """
    if degree >= n:
        raise ValueError("degree must be < n")
    if (degree * n) % 2 != 0:
        n += 1
    if not 0 <= degree < n:
        raise nx.NetworkXError(
            "the 0 <= d < n inequality must be satisfied"
        )
    edges = sorted(_regular_edge_set(degree, n, seed))
    us = [u for u, _ in edges]
    vs = [v for _, v in edges]
    return CSRGraphView(
        build_csr_from_edges(n, us, vs),
        nx_factory=lambda: ensure_int_labels(
            nx.random_regular_graph(degree, n, seed=seed)
        ),
    )


def gnp(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi G(n, p)."""
    return ensure_int_labels(nx.gnp_random_graph(n, p, seed=seed))


def _fast_gnp_edges(
    n: int, p: float, seed: int
) -> Tuple[List[int], List[int]]:
    """Exact port of ``nx.fast_gnp_random_graph``'s geometric-skip
    loop (undirected): same ``random.Random`` stream, same edges."""
    rng = random.Random(seed)
    us: List[int] = []
    vs: List[int] = []
    lp = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        lr = math.log(1.0 - rng.random())
        w = w + 1 + int(lr / lp)
        while w >= v and v < n:
            w = w - v
            v = v + 1
        if v < n:
            us.append(v)
            vs.append(w)
    return us, vs


def gnp_fast(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi G(n, p) via the O(n + m) geometric-skip sampler.

    Same distribution as :func:`gnp`, different sample for the same
    seed — used for the huge tier, where the O(n²) sampler takes
    minutes.  CSR-direct: the sample is drawn straight into edge
    arrays and returned as a :class:`CSRGraphView`; no ``nx.Graph``
    is built at any size.
    """
    if p <= 0 or p >= 1:
        # Degenerate densities take networkx's gnp fallback.
        return ensure_int_labels(
            nx.fast_gnp_random_graph(n, p, seed=seed)
        )
    us, vs = _fast_gnp_edges(n, p, seed)
    return CSRGraphView(
        build_csr_from_edges(n, us, vs),
        nx_factory=lambda: ensure_int_labels(
            nx.fast_gnp_random_graph(n, p, seed=seed)
        ),
    )


def unit_disk(
    n: int,
    radius: float,
    seed: int = 0,
    side: float = 1.0,
) -> nx.Graph:
    """Random unit-disk graph: the wireless-interference workload.

    Nodes are placed uniformly in a ``side`` x ``side`` square and
    joined when within ``radius``.  d2-coloring of this graph is the
    frequency-assignment problem from the paper's introduction
    (nodes with common neighbors interfere).
    Positions are stored as the node attribute ``pos``.
    """
    rng = random.Random(seed)
    points = [
        (rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)
    ]
    graph = nx.Graph()
    for index, point in enumerate(points):
        graph.add_node(index, pos=point)
    r_sq = radius * radius
    for i in range(n):
        xi, yi = points[i]
        for j in range(i + 1, n):
            xj, yj = points[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= r_sq:
                graph.add_edge(i, j)
    return graph


def complete_bipartite(a: int, b: int) -> nx.Graph:
    """K_{a,b}; its square is the complete graph K_{a+b}."""
    return ensure_int_labels(nx.complete_bipartite_graph(a, b))


def grid(rows: int, cols: int, torus: bool = False) -> nx.Graph:
    """2D grid (or torus) — a bounded-degree planar-ish workload."""
    graph = nx.grid_2d_graph(rows, cols, periodic=torus)
    return ensure_int_labels(graph)


def caterpillar(spine: int, legs: int) -> nx.Graph:
    """Path of ``spine`` nodes, each with ``legs`` pendant leaves."""
    graph = nx.Graph()
    for i in range(spine):
        graph.add_node(i)
        if i > 0:
            graph.add_edge(i - 1, i)
    next_id = spine
    for i in range(spine):
        for _ in range(legs):
            graph.add_node(next_id)
            graph.add_edge(i, next_id)
            next_id += 1
    return graph


def double_star(leaves_per_center: int) -> nx.Graph:
    """The paper's Ω(Δ) verification lower-bound instance (Sec. 1):
    an edge {a, b} with ``leaves_per_center`` leaves attached to both
    endpoints.  Node 0 is a, node 1 is b."""
    graph = nx.Graph()
    graph.add_edge(0, 1)
    next_id = 2
    for center in (0, 1):
        for _ in range(leaves_per_center):
            graph.add_node(next_id)
            graph.add_edge(center, next_id)
            next_id += 1
    return graph


def clique_clusters(
    num_cliques: int,
    clique_size: int,
    seed: int = 0,
    bridges: int = 1,
) -> nx.Graph:
    """Ring of cliques joined by ``bridges`` random inter-clique edges.

    Dense neighborhoods with low sparsity — the regime where the
    paper's Reduce machinery (colored helpers) matters.
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    members = []
    next_id = 0
    for _ in range(num_cliques):
        nodes = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        members.append(nodes)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                graph.add_edge(u, v)
    for index in range(num_cliques):
        nxt = (index + 1) % num_cliques
        if nxt == index:
            continue
        for _ in range(bridges):
            u = rng.choice(members[index])
            v = rng.choice(members[nxt])
            if u != v:
                graph.add_edge(u, v)
    return graph


def star_of_stars(branch: int, leaves: int) -> nx.Graph:
    """A root with ``branch`` children, each with ``leaves`` leaves.

    d2-degree of the root is branch*(leaves+1); a tree workload with
    highly non-uniform d2-degrees.
    """
    graph = nx.Graph()
    graph.add_node(0)
    next_id = 1
    for _ in range(branch):
        child = next_id
        next_id += 1
        graph.add_edge(0, child)
        for _ in range(leaves):
            graph.add_edge(child, next_id)
            next_id += 1
    return graph


def random_bipartite_tasks(
    tasks: int,
    resources: int,
    per_task: int,
    seed: int = 0,
) -> nx.Graph:
    """Task/resource bipartite graph for the strong-coloring example.

    Task nodes 0..tasks-1 each use ``per_task`` random resources
    (nodes tasks..tasks+resources-1).  Strong coloring of the induced
    hypergraph = d2-coloring restricted to the task side (Sec. 1,
    "Why d2-coloring?").
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(tasks + resources))
    for task in range(tasks):
        chosen = rng.sample(range(resources), min(per_task, resources))
        for res in chosen:
            graph.add_edge(task, tasks + res)
    return graph


def connected_gnp(n: int, p: float, seed: int = 0, tries: int = 50) -> nx.Graph:
    """G(n, p) conditioned on connectivity (re-sample up to ``tries``)."""
    for attempt in range(tries):
        graph = gnp(n, p, seed=seed + attempt)
        if nx.is_connected(graph):
            return graph
    # Fall back: connect components with a path of bridges.
    components = [sorted(c) for c in nx.connected_components(graph)]
    for first, second in zip(components, components[1:]):
        graph.add_edge(first[0], second[0])
    return graph


def bipartite_double(graph: nx.Graph) -> nx.Graph:
    """Bipartite double cover of ``graph`` (tensor product with K₂).

    Every node v becomes (v, 0) and (v, 1); every edge {u, v} becomes
    {(u, 0), (v, 1)} and {(u, 1), (v, 0)}.  The cover is triangle-free
    and bipartite while preserving degrees, so d2-neighborhoods look
    very different from the base graph's — an adversarial transform
    for algorithms that implicitly assume odd cycles or density.
    """
    base = ensure_int_labels(graph)
    n = base.number_of_nodes()
    double = nx.Graph()
    double.add_nodes_from(range(2 * n))
    for u, v in base.edges:
        double.add_edge(u, n + v)
        double.add_edge(v, n + u)
    return double


def high_girth(
    degree: int,
    n: int,
    girth: int = 6,
    seed: int = 0,
    max_passes: int = 200,
) -> nx.Graph:
    """Near-regular graph with girth at least ``girth``.

    Starts from a random ``degree``-regular graph and deletes one edge
    from every remaining short cycle until none is shorter than
    ``girth``.  High girth makes every d2-neighborhood as large as the
    degree allows (each pair of d2-neighbors shares a *single* 2-path
    when girth > 4) — the regime where similarity filtering and the
    single-2-path checks of Reduce-Phase are exercised hardest.
    """
    # .copy() replays the legacy nx construction: the edge-removal
    # loop below walks graph.edges in the historical insertion order.
    graph = random_regular(degree, n, seed=seed).copy()
    for _ in range(max_passes):
        shortest = _shortest_cycle_edge(graph, girth)
        if shortest is None:
            break
        graph.remove_edge(*shortest)
    return graph


def _shortest_cycle_edge(graph: nx.Graph, girth: int):
    """An edge on some cycle shorter than ``girth``, or None."""
    for u, v in graph.edges:
        # A u-v path of length <= girth-2 avoiding edge {u, v} closes
        # a cycle of length <= girth-1.
        graph.remove_edge(u, v)
        try:
            length = nx.shortest_path_length(graph, u, v)
        except nx.NetworkXNoPath:
            length = None
        graph.add_edge(u, v)
        if length is not None and length + 1 < girth:
            return (u, v)
    return None


def disconnected_mix(seed: int = 0) -> nx.Graph:
    """Disjoint union of heterogeneous components plus isolated nodes.

    Components: a path, a small clique, a star, a cycle, and a couple
    of isolated vertices.  Disconnected inputs are adversarial for
    protocols that implicitly assume global connectivity (flooding
    phases, termination detection).
    """
    rng = random.Random(seed)
    parts = [
        nx.path_graph(5 + rng.randrange(3)),
        nx.complete_graph(4),
        nx.star_graph(4 + rng.randrange(3)),
        nx.cycle_graph(5),
        nx.empty_graph(2),
    ]
    return ensure_int_labels(nx.disjoint_union_all(parts))


def multileaf(hubs: int, leaves: int) -> nx.Graph:
    """Self-loop-free multileaf: a hub cycle, each hub with many leaves.

    ``hubs`` nodes form a cycle (an edge for hubs == 2, a single node
    for hubs == 1) and every hub carries ``leaves`` pendant leaves.
    Leaves of one hub are pairwise d2-adjacent *through* the hub, and
    leaves of neighboring hubs are d2-adjacent too, so the d2-degree
    is far above the d1-degree of most nodes — the double-star
    lower-bound shape generalized.
    """
    if hubs < 1:
        raise ValueError("need at least one hub")
    graph = nx.Graph()
    graph.add_nodes_from(range(hubs))
    if hubs == 2:
        graph.add_edge(0, 1)
    elif hubs > 2:
        for i in range(hubs):
            graph.add_edge(i, (i + 1) % hubs)
    next_id = hubs
    for hub in range(hubs):
        for _ in range(leaves):
            graph.add_edge(hub, next_id)
            next_id += 1
    return graph


def _powerlaw_adjacency(
    n: int, m: int, p: float, seed: int
) -> dict:
    """Exact port of ``nx.powerlaw_cluster_graph`` (Holme–Kim).

    Replicates the dict-of-dicts adjacency insertion order — the
    clustering step draws from ``G.neighbors(target)`` — and the
    set-pop order of ``_random_subset``, so the sampled graph is the
    one networkx would return for this seed.
    """
    rng = random.Random(seed)
    adj: dict = {v: {} for v in range(m)}

    def add_edge(u, v):
        adj.setdefault(u, {})[v] = None
        adj.setdefault(v, {})[u] = None

    def _random_subset(seq, count):
        targets = set()
        while len(targets) < count:
            targets.add(rng.choice(seq))
        return targets

    repeated_nodes = list(range(m))
    source = m
    while source < n:
        possible_targets = _random_subset(repeated_nodes, m)
        target = possible_targets.pop()
        add_edge(source, target)
        repeated_nodes.append(target)
        count = 1
        while count < m:
            if rng.random() < p:
                neighborhood = [
                    nbr
                    for nbr in adj[target]
                    if nbr not in adj.get(source, {})
                    and nbr != source
                ]
                if neighborhood:
                    nbr = rng.choice(neighborhood)
                    add_edge(source, nbr)
                    repeated_nodes.append(nbr)
                    count = count + 1
                    continue
            target = possible_targets.pop()
            add_edge(source, target)
            repeated_nodes.append(target)
            count = count + 1
        repeated_nodes.extend([source] * m)
        source += 1
    return adj


def power_law(
    n: int,
    attach: int = 2,
    triangle_p: float = 0.1,
    seed: int = 0,
) -> nx.Graph:
    """Power-law degree graph (Holme–Kim preferential attachment).

    Heavy-tailed degrees give a few hubs whose d2-neighborhoods span
    most of the graph while the long tail stays sparse — the skewed
    regime the uniform families (regular, G(n,p)) never produce.
    CSR-direct: returns a :class:`CSRGraphView` over the exact edge
    set networkx would grow for this seed.
    """
    if n <= attach:
        raise ValueError("n must exceed the attachment count")
    adj = _powerlaw_adjacency(n, attach, triangle_p, seed)
    us: List[int] = []
    vs: List[int] = []
    for u, nbrs in adj.items():
        for v in nbrs:
            if u < v:
                us.append(u)
                vs.append(v)
    return CSRGraphView(
        build_csr_from_edges(n, us, vs),
        nx_factory=lambda: ensure_int_labels(
            nx.powerlaw_cluster_graph(
                n, attach, triangle_p, seed=seed
            )
        ),
    )


def weighted_gnp(
    n: int,
    p: float,
    seed: int = 0,
    max_weight: int = 16,
) -> nx.Graph:
    """G(n, p) with integer edge weights in ``1..max_weight``.

    The structure (and therefore the coloring problem) is exactly
    :func:`gnp`; the ``weight`` attribute models per-link cost for
    traffic-aware sweeps.  Weights are drawn from a seed-derived
    stream so the same seed reproduces both topology and weights.
    """
    graph = gnp(n, p, seed=seed)
    rng = random.Random(seed ^ 0x9E3779B9)
    for u, v in sorted(graph.edges):
        graph.edges[u, v]["weight"] = rng.randint(1, max_weight)
    return graph


def congested_relay(
    num_cliques: int,
    clique_size: int,
    relays: int = 1,
    seed: int = 0,
) -> nx.Graph:
    """Cliques whose inter-clique connectivity routes through a few
    relay nodes (Flin, Halldórsson & Nolin 2023, *Fast Coloring
    Despite Congested Relays*).

    Each relay attaches to one seed-chosen port node per clique, so
    ports of different cliques are d2-adjacent *only* through relays:
    every cross-clique constraint competes for the relays' O(log n)
    bandwidth — the congestion regime the 2023 paper targets.
    Cliques are nodes ``0 .. num_cliques*clique_size - 1``; relays
    follow.
    """
    if num_cliques < 1 or clique_size < 1:
        raise ValueError("need at least one clique of at least one node")
    if relays < 1:
        raise ValueError("need at least one relay")
    rng = random.Random(seed)
    graph = nx.Graph()
    members = []
    next_id = 0
    for _ in range(num_cliques):
        nodes = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        members.append(nodes)
        graph.add_nodes_from(nodes)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                graph.add_edge(u, v)
    for _ in range(relays):
        relay = next_id
        next_id += 1
        graph.add_node(relay)
        for nodes in members:
            graph.add_edge(relay, rng.choice(nodes))
    return graph


def virtualized_clique(
    virtual_nodes: int,
    parts: int = 2,
    seed: int = 0,
) -> nx.Graph:
    """A clique on *virtual* nodes, each virtualized over ``parts``
    physical nodes (the cluster-graph shape of the 2023 relay paper).

    Virtual node ``i`` is the physical path ``i*parts ..
    (i+1)*parts - 1``; every virtual edge {i, j} lands between one
    seed-chosen physical part of ``i`` and one of ``j``.  The virtual
    topology is K_{virtual_nodes} but no physical node sees it whole,
    so protocols must coordinate across the parts.
    """
    if virtual_nodes < 1 or parts < 1:
        raise ValueError("need at least one virtual node and one part")
    rng = random.Random(seed)
    graph = nx.Graph()
    for i in range(virtual_nodes):
        base = i * parts
        graph.add_node(base)
        for offset in range(1, parts):
            graph.add_edge(base + offset - 1, base + offset)
    for i in range(virtual_nodes):
        for j in range(i + 1, virtual_nodes):
            u = i * parts + rng.randrange(parts)
            v = j * parts + rng.randrange(parts)
            graph.add_edge(u, v)
    return graph


def sampling_palette_graph(
    n: int,
    degree: int = 4,
    chords: int = 8,
    seed: int = 0,
) -> nx.Graph:
    """Sparse near-regular graph with a sprinkling of random chords —
    the color-sampling regime (Halldórsson & Nolin 2021, *Superfast
    Coloring in CONGEST via Efficient Color Sampling*).

    d2-degrees stay far below the Δ²+1 palette, so random color
    sampling succeeds with high probability in O(1) tries per node;
    workload specs built on this family carry a ``palette_slack``
    parameter recording the intended palette/d2-degree ratio.
    """
    # .copy() replays the legacy nx construction before mutating.
    graph = random_regular(degree, n, seed=seed).copy()
    rng = random.Random(seed ^ 0x5DEECE66)
    size = graph.number_of_nodes()
    for _ in range(chords):
        u = rng.randrange(size)
        v = rng.randrange(size)
        if u != v:
            graph.add_edge(u, v)
    return graph


def with_max_degree(graph: nx.Graph, delta: int, seed: int = 0) -> nx.Graph:
    """Drop random edges until max degree <= ``delta`` (workload trim)."""
    rng = random.Random(seed)
    graph = graph.copy()
    heavy = [v for v, d in graph.degree if d > delta]
    while heavy:
        node = heavy.pop()
        while graph.degree[node] > delta:
            nbr = rng.choice(list(graph.neighbors(node)))
            graph.remove_edge(node, nbr)
        heavy = [v for v, d in graph.degree if d > delta]
    return graph
