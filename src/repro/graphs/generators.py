"""Workload graph generators.

All generators return graphs with consecutive integer node labels
(required by the simulator: labels double as O(log n)-bit IDs).
"""

from __future__ import annotations

import math
import random
from typing import Optional

import networkx as nx


def ensure_int_labels(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 (sorted order when sortable)."""
    try:
        ordering = sorted(graph.nodes)
    except TypeError:
        ordering = list(graph.nodes)
    mapping = {node: index for index, node in enumerate(ordering)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def random_regular(degree: int, n: int, seed: int = 0) -> nx.Graph:
    """Connected-ish random ``degree``-regular graph on ``n`` nodes."""
    if degree >= n:
        raise ValueError("degree must be < n")
    if (degree * n) % 2 != 0:
        n += 1
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return ensure_int_labels(graph)


def gnp(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi G(n, p)."""
    return ensure_int_labels(nx.gnp_random_graph(n, p, seed=seed))


def unit_disk(
    n: int,
    radius: float,
    seed: int = 0,
    side: float = 1.0,
) -> nx.Graph:
    """Random unit-disk graph: the wireless-interference workload.

    Nodes are placed uniformly in a ``side`` x ``side`` square and
    joined when within ``radius``.  d2-coloring of this graph is the
    frequency-assignment problem from the paper's introduction
    (nodes with common neighbors interfere).
    Positions are stored as the node attribute ``pos``.
    """
    rng = random.Random(seed)
    points = [
        (rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)
    ]
    graph = nx.Graph()
    for index, point in enumerate(points):
        graph.add_node(index, pos=point)
    r_sq = radius * radius
    for i in range(n):
        xi, yi = points[i]
        for j in range(i + 1, n):
            xj, yj = points[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= r_sq:
                graph.add_edge(i, j)
    return graph


def complete_bipartite(a: int, b: int) -> nx.Graph:
    """K_{a,b}; its square is the complete graph K_{a+b}."""
    return ensure_int_labels(nx.complete_bipartite_graph(a, b))


def grid(rows: int, cols: int, torus: bool = False) -> nx.Graph:
    """2D grid (or torus) — a bounded-degree planar-ish workload."""
    graph = nx.grid_2d_graph(rows, cols, periodic=torus)
    return ensure_int_labels(graph)


def caterpillar(spine: int, legs: int) -> nx.Graph:
    """Path of ``spine`` nodes, each with ``legs`` pendant leaves."""
    graph = nx.Graph()
    for i in range(spine):
        graph.add_node(i)
        if i > 0:
            graph.add_edge(i - 1, i)
    next_id = spine
    for i in range(spine):
        for _ in range(legs):
            graph.add_node(next_id)
            graph.add_edge(i, next_id)
            next_id += 1
    return graph


def double_star(leaves_per_center: int) -> nx.Graph:
    """The paper's Ω(Δ) verification lower-bound instance (Sec. 1):
    an edge {a, b} with ``leaves_per_center`` leaves attached to both
    endpoints.  Node 0 is a, node 1 is b."""
    graph = nx.Graph()
    graph.add_edge(0, 1)
    next_id = 2
    for center in (0, 1):
        for _ in range(leaves_per_center):
            graph.add_node(next_id)
            graph.add_edge(center, next_id)
            next_id += 1
    return graph


def clique_clusters(
    num_cliques: int,
    clique_size: int,
    seed: int = 0,
    bridges: int = 1,
) -> nx.Graph:
    """Ring of cliques joined by ``bridges`` random inter-clique edges.

    Dense neighborhoods with low sparsity — the regime where the
    paper's Reduce machinery (colored helpers) matters.
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    members = []
    next_id = 0
    for _ in range(num_cliques):
        nodes = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        members.append(nodes)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                graph.add_edge(u, v)
    for index in range(num_cliques):
        nxt = (index + 1) % num_cliques
        if nxt == index:
            continue
        for _ in range(bridges):
            u = rng.choice(members[index])
            v = rng.choice(members[nxt])
            if u != v:
                graph.add_edge(u, v)
    return graph


def star_of_stars(branch: int, leaves: int) -> nx.Graph:
    """A root with ``branch`` children, each with ``leaves`` leaves.

    d2-degree of the root is branch*(leaves+1); a tree workload with
    highly non-uniform d2-degrees.
    """
    graph = nx.Graph()
    graph.add_node(0)
    next_id = 1
    for _ in range(branch):
        child = next_id
        next_id += 1
        graph.add_edge(0, child)
        for _ in range(leaves):
            graph.add_edge(child, next_id)
            next_id += 1
    return graph


def random_bipartite_tasks(
    tasks: int,
    resources: int,
    per_task: int,
    seed: int = 0,
) -> nx.Graph:
    """Task/resource bipartite graph for the strong-coloring example.

    Task nodes 0..tasks-1 each use ``per_task`` random resources
    (nodes tasks..tasks+resources-1).  Strong coloring of the induced
    hypergraph = d2-coloring restricted to the task side (Sec. 1,
    "Why d2-coloring?").
    """
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(tasks + resources))
    for task in range(tasks):
        chosen = rng.sample(range(resources), min(per_task, resources))
        for res in chosen:
            graph.add_edge(task, tasks + res)
    return graph


def connected_gnp(n: int, p: float, seed: int = 0, tries: int = 50) -> nx.Graph:
    """G(n, p) conditioned on connectivity (re-sample up to ``tries``)."""
    for attempt in range(tries):
        graph = gnp(n, p, seed=seed + attempt)
        if nx.is_connected(graph):
            return graph
    # Fall back: connect components with a path of bridges.
    components = [sorted(c) for c in nx.connected_components(graph)]
    for first, second in zip(components, components[1:]):
        graph.add_edge(first[0], second[0])
    return graph


def with_max_degree(graph: nx.Graph, delta: int, seed: int = 0) -> nx.Graph:
    """Drop random edges until max degree <= ``delta`` (workload trim)."""
    rng = random.Random(seed)
    graph = graph.copy()
    heavy = [v for v, d in graph.degree if d > delta]
    while heavy:
        node = heavy.pop()
        while graph.degree[node] > delta:
            nbr = rng.choice(list(graph.neighbors(node)))
            graph.remove_edge(node, nbr)
        heavy = [v for v, d in graph.degree if d > delta]
    return graph
