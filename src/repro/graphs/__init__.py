"""Graph substrate: squares, sparsity/slack/leeway, generators, instances."""

from repro.graphs.properties import (
    leeway,
    slack,
    solid_nodes,
    sparsity,
)
from repro.graphs.square import (
    common_d2_neighbors,
    d2_degree,
    d2_neighbors,
    max_d2_degree,
    square,
)

__all__ = [
    "common_d2_neighbors",
    "d2_degree",
    "d2_neighbors",
    "leeway",
    "max_d2_degree",
    "slack",
    "solid_nodes",
    "sparsity",
    "square",
]
