"""Graph substrate: squares, sparsity/slack/leeway, generators, instances.

Graph *workloads* (named, parameterized, cached instances of these
generators) live one level up in :mod:`repro.workloads`.
"""

from repro.graphs.generators import (
    congested_relay,
    power_law,
    sampling_palette_graph,
    virtualized_clique,
    weighted_gnp,
)
from repro.graphs.properties import (
    leeway,
    slack,
    solid_nodes,
    sparsity,
)
from repro.graphs.square import (
    common_d2_neighbors,
    d2_degree,
    d2_neighbors,
    max_d2_degree,
    square,
)

__all__ = [
    "common_d2_neighbors",
    "congested_relay",
    "d2_degree",
    "d2_neighbors",
    "leeway",
    "max_d2_degree",
    "power_law",
    "sampling_palette_graph",
    "slack",
    "solid_nodes",
    "sparsity",
    "square",
    "virtualized_clique",
    "weighted_gnp",
]
