"""Protocol probes used by the experiment harness and tests.

These drive individual sub-protocols (similarity construction, the
XOR lottery, LearnPalette, FinishColoring) in isolation, with preset
partial colorings, so their cost and correctness can be measured
without running the whole pipeline.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set, Tuple

import networkx as nx

from repro.baselines.greedy import greedy_d2_coloring
from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthPolicy
from repro.core.constants import Constants
from repro.core.finish import FinishMixin, forward_batch_size
from repro.core.learn_palette import (
    LearnPaletteConfig,
    LearnPaletteMixin,
)
from repro.core.sampling import LotteryMixin
from repro.core.similarity import SimilarityConfig, SimilarityMixin
from repro.core.trying import ColorTracker, TAG_ADOPT, all_colored
from repro.graphs.square import d2_neighborhoods
from repro.verify.checker import check_d2_coloring


class _SimilarityProbe(SimilarityMixin, NodeProgram):
    def run(self):
        state = yield from self.build_similarity(
            self.ctx.data["config"]
        )
        return state


def build_similarity_states(
    graph: nx.Graph,
    force_exact: Optional[bool] = None,
    constants: Optional[Constants] = None,
    seed: int = 0,
):
    """Run the similarity construction; returns (states, config)."""
    constants = constants or Constants.practical()
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=1)
    policy = BandwidthPolicy()
    config = SimilarityConfig.derive(
        n,
        delta,
        policy.budget_bits(n),
        constants,
        force_exact=force_exact,
    )
    network = Network(
        graph,
        _SimilarityProbe,
        seed=seed,
        policy=policy,
        inputs={v: {"config": config} for v in graph.nodes},
    )
    run = network.run()
    return run.outputs, config


class _LotteryProbe(LotteryMixin, SimilarityMixin, NodeProgram):
    def run(self):
        similarity = yield from self.build_similarity(
            self.ctx.data["config"]
        )
        draws = []
        for _ in range(self.ctx.data["count"]):
            drawn = yield from self.lottery_round(
                similarity,
                filter_bits=self.ctx.data.get("filter_bits", 0),
            )
            draws.append(drawn)
        return {"similarity": similarity, "draws": draws}


def run_lottery_draws(
    graph: nx.Graph,
    count: int,
    filter_bits: int = 0,
    seed: int = 0,
):
    """Draw ``count`` lottery samples at every node (exact H)."""
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=1)
    policy = BandwidthPolicy()
    config = SimilarityConfig.derive(
        n,
        delta,
        policy.budget_bits(n),
        Constants.practical(),
        force_exact=True,
    )
    network = Network(
        graph,
        _LotteryProbe,
        seed=seed,
        policy=policy,
        inputs={
            v: {
                "config": config,
                "count": count,
                "filter_bits": filter_bits,
            }
            for v in graph.nodes
        },
    )
    return network.run().outputs


def partial_greedy_coloring(
    graph: nx.Graph, live_target: int, seed: int = 0
) -> Dict[int, Optional[int]]:
    """Greedy d2-coloring with ``live_target`` nodes uncolored."""
    coloring: Dict[int, Optional[int]] = dict(
        greedy_d2_coloring(graph).coloring
    )
    rng = random.Random(seed)
    for v in rng.sample(sorted(graph.nodes), live_target):
        coloring[v] = None
    return coloring


def true_free_sets(
    graph: nx.Graph, coloring: Dict[int, Optional[int]], palette: int
) -> Dict[int, Set[int]]:
    """Ground-truth remaining palettes of the live nodes."""
    hoods = d2_neighborhoods(graph)
    free: Dict[int, Set[int]] = {}
    for v in graph.nodes:
        if coloring[v] is not None:
            continue
        used = {
            coloring[u]
            for u in hoods[v]
            if coloring[u] is not None
        }
        free[v] = {c for c in range(palette) if c not in used}
    return free


class _AnnouncePresetMixin:
    """One round in which every precolored node announces its color,
    populating neighbors' color tables (as adoptions would have)."""

    def announce_preset(self):
        if self.color is not None:
            inbox = yield self.broadcast(
                (TAG_ADOPT, self.color)
            )
        else:
            inbox = yield {}
        self.record_adopts(inbox)


class _FinishProbe(_AnnouncePresetMixin, FinishMixin, NodeProgram):
    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.init_tracker(ctx.data.get("color"))

    def run(self):
        yield from self.announce_preset()
        yield from self.finish_coloring(
            self.ctx.data.get("free"),
            self.ctx.data["palette"],
            self.ctx.data["forward_per_round"],
        )


def run_finish_only(
    graph: nx.Graph, live_target: int, seed: int = 0
) -> Tuple[int, bool]:
    """Precolor all but ``live_target`` nodes, hand the live nodes
    their exact palettes, and run FinishColoring alone.

    Returns (rounds, final coloring valid)."""
    delta = max((d for _, d in graph.degree), default=1)
    palette = delta * delta + 1
    coloring = partial_greedy_coloring(graph, live_target, seed)
    free = true_free_sets(graph, coloring, palette)
    policy = BandwidthPolicy()
    forward = forward_batch_size(
        graph.number_of_nodes(), palette, policy.budget_bits(
            graph.number_of_nodes()
        )
    )
    inputs = {
        v: {
            "color": coloring[v],
            "free": free.get(v),
            "palette": palette,
            "forward_per_round": forward,
        }
        for v in graph.nodes
    }
    network = Network(
        graph, _FinishProbe, seed=seed, policy=policy, inputs=inputs
    )
    run = network.run(
        stop_when=all_colored,
        raise_on_timeout=False,
        max_rounds=50_000,
    )
    final = {
        v: program.color
        for v, program in network.programs.items()
    }
    valid = check_d2_coloring(graph, final, palette).valid
    # Subtract the preset-announcement round.
    return max(0, run.metrics.rounds - 1), valid


class _LearnProbe(
    _AnnouncePresetMixin,
    ColorTracker,
    SimilarityMixin,
    LearnPaletteMixin,
    NodeProgram,
):
    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.init_tracker(ctx.data.get("color"))
        self.constants = ctx.data["constants"]
        self.lottery_filter_bits = 0
        self.similarity = None

    def run(self):
        yield from self.announce_preset()
        self.similarity = yield from self.build_similarity(
            self.ctx.data["sim_config"]
        )
        free = yield from self.learn_palette(
            self.ctx.data["learn_config"]
        )
        return free


def run_learn_palette_only(
    graph: nx.Graph,
    live_target: int,
    force_small: bool,
    seed: int = 0,
) -> Tuple[int, bool, bool]:
    """Run LearnPalette on a mostly-precolored graph.

    Returns (rounds, all palettes exactly right, all palettes contain
    every truly free color)."""
    constants = Constants.practical()
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=1)
    palette = delta * delta + 1
    policy = BandwidthPolicy()
    budget = policy.budget_bits(n)
    coloring = partial_greedy_coloring(graph, live_target, seed)
    truth = true_free_sets(graph, coloring, palette)
    sim_config = SimilarityConfig.derive(
        n, delta, budget, constants, force_exact=True
    )
    learn_config = LearnPaletteConfig.derive(
        n, delta, budget, constants, force_small=force_small
    )
    inputs = {
        v: {
            "color": coloring[v],
            "constants": constants,
            "sim_config": sim_config,
            "learn_config": learn_config,
        }
        for v in graph.nodes
    }
    network = Network(
        graph, _LearnProbe, seed=seed, policy=policy, inputs=inputs
    )
    run = network.run()
    exact = True
    superset = True
    for v, learned in run.outputs.items():
        if coloring[v] is not None:
            continue
        if learned != truth[v]:
            exact = False
        if not truth[v] <= (learned or set()):
            superset = False
    return run.metrics.rounds, exact, superset
