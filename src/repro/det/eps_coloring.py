"""Theorem 3.4: deterministic (1+ε)Δ coloring of G.

Recursively split G into p = 2^h parts with per-part degree at most
Δ_h (Lemma 3.3), then color all parts *in parallel* with disjoint
palettes of Δ_h+1 colors each (parts are vertex- and edge-disjoint, so
the parallel runs share no bandwidth).  Total colors:
2^h·(Δ_h+1) <= (1+ε)Δ.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.congest.policy import BandwidthPolicy
from repro.det.g_coloring import deg_plus_one_coloring_g
from repro.det.recursive_split import (
    RecursiveSplit,
    recursive_split,
)
from repro.results import ColoringResult


def eps_coloring_g(
    graph: nx.Graph,
    eps: float,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    target_degree: Optional[float] = None,
    levels: Optional[int] = None,
    deterministic_split: bool = True,
    split: Optional[RecursiveSplit] = None,
    split_lam: Optional[float] = None,
    split_threshold: Optional[float] = None,
) -> ColoringResult:
    """Deterministic (1+ε)Δ coloring of G (Theorem 3.4)."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    if delta == 0:
        return ColoringResult(
            algorithm="eps-coloring-g",
            coloring={v: 0 for v in graph.nodes},
            palette_size=1,
            rounds=0,
        )
    if split is None:
        split = recursive_split(
            graph,
            eps,
            target_degree=target_degree,
            levels=levels,
            deterministic=deterministic_split,
            lam=split_lam,
            threshold=split_threshold,
        )
    part_delta = max(1, split.max_part_degree)
    local_palette = part_delta + 1

    colored = deg_plus_one_coloring_g(
        graph,
        delta=delta,
        policy=policy,
        parts=split.parts,
        part_delta=part_delta,
        target=local_palette,
    )
    # Disjoint palettes: global color = part·(Δ_h+1) + local color.
    final = {
        v: split.parts[v] * local_palette + colored.coloring[v]
        for v in graph.nodes
    }
    palette = split.num_parts * local_palette

    result = ColoringResult(
        algorithm="eps-coloring-g",
        coloring=final,
        palette_size=palette,
        rounds=0,
        params={
            "eps": eps,
            "levels": split.levels,
            "parts": split.num_parts,
            "part_delta": part_delta,
            "split_charged_rounds": split.charged_rounds,
            "split_ok": all(
                r.ok for r in split.level_results
            ),
        },
    )
    result.add_phase(
        "recursive-split(charged)", split.charged_rounds
    )
    for phase in colored.phases:
        result.add_phase(phase.name, phase.rounds, phase.metrics)
    return result
