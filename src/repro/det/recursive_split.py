"""Recursive degree splitting (Lemma 3.3).

Starting from the trivial partition {V}, apply a λ-local refinement
splitting h times with λ = ε/(10·log Δ); each level splits every part
in two by color, so after h levels there are 2^h parts and every
vertex has at most Δ_h = (1+ε)·2^{-h}·Δ neighbors *in each part*.

The paper's h is the smallest integer with
(1 + ε/(10 log Δ))^h·2^{-h}·Δ <= 1200·ε^{-2}·log³ n; at laptop scale
that right-hand side exceeds Δ (so h = 0 and the direct coloring
applies — a legitimate, if boring, regime).  ``target_degree``
therefore is a parameter: benches exercise h >= 1 by lowering it,
which preserves the mechanism under test (the splitting quality).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from repro.det.decomposition import (
    NetworkDecomposition,
    ball_carving_decomposition,
)
from repro.det.splitting import (
    SplittingResult,
    derandomized_splitting,
    random_splitting,
)


def paper_target_degree(n: int, eps: float) -> float:
    """The Lemma 3.3 stopping threshold 1200·ε^{-2}·log³ n."""
    log_n = math.log2(max(n, 2))
    return 1200.0 * log_n**3 / (eps * eps)


def split_levels(delta: int, eps: float, target_degree: float) -> int:
    """Smallest h with (1+λ)^h·2^{-h}·Δ <= target_degree, where
    λ = ε/(10·log2 Δ)."""
    if delta <= target_degree:
        return 0
    lam = eps / (10.0 * max(1.0, math.log2(max(delta, 2))))
    h = 0
    degree = float(delta)
    while degree > target_degree and h < 64:
        degree *= (1.0 + lam) / 2.0
        h += 1
    return h


@dataclass
class RecursiveSplit:
    """Output of Lemma 3.3: the part of every vertex plus telemetry."""

    parts: Dict[int, int]
    num_parts: int
    levels: int
    lam: float
    max_part_degree: int
    level_results: List[SplittingResult] = field(default_factory=list)
    charged_rounds: int = 0

    def part_members(self) -> Dict[int, List[int]]:
        members: Dict[int, List[int]] = {}
        for v, part in self.parts.items():
            members.setdefault(part, []).append(v)
        return members


def measured_max_part_degree(
    graph: nx.Graph, parts: Dict[int, int]
) -> int:
    """max over v and parts i of |N(v) ∩ V_i|."""
    worst = 0
    for v in graph.nodes:
        counts: Dict[int, int] = {}
        for u in graph.neighbors(v):
            counts[parts[u]] = counts.get(parts[u], 0) + 1
        if counts:
            worst = max(worst, max(counts.values()))
    return worst


def recursive_split(
    graph: nx.Graph,
    eps: float,
    target_degree: Optional[float] = None,
    levels: Optional[int] = None,
    deterministic: bool = True,
    decomposition: Optional[NetworkDecomposition] = None,
    seed: int = 0,
    lam: Optional[float] = None,
    threshold: Optional[float] = None,
) -> RecursiveSplit:
    """Lemma 3.3: partition into 2^h parts with per-part degree
    ~ (1+ε)·2^{-h}·Δ.

    ``levels`` overrides the computed h; ``deterministic`` selects
    the Theorem 3.2 derandomization (else the zero-round random
    splitting).  The same decomposition is reused across levels
    (the paper's final remark in Lemma 3.3's proof).

    The paper's λ = ε/(10·log Δ) and degree floor 12·log n/λ² are
    asymptotic; at laptop scale the floor exceeds every degree and
    splittings become vacuous.  ``lam``/``threshold`` override both
    (DESIGN.md §3.1); benches of the h >= 1 regime pass e.g.
    ``lam=0.3, threshold=4``.
    """
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=0)
    if target_degree is None:
        target_degree = paper_target_degree(n, eps)
    if levels is None:
        levels = split_levels(delta, eps, target_degree)
    if lam is None:
        lam = eps / (10.0 * max(1.0, math.log2(max(delta, 2))))

    parts = {v: 0 for v in graph.nodes}
    results: List[SplittingResult] = []
    charged = 0
    if levels > 0 and deterministic and decomposition is None:
        decomposition = ball_carving_decomposition(graph, k=2)
    for level in range(levels):
        if deterministic:
            result = derandomized_splitting(
                graph,
                parts,
                lam,
                decomposition=decomposition,
                threshold=threshold,
            )
        else:
            result = random_splitting(
                graph,
                parts,
                lam,
                seed=(seed, level),
                threshold=threshold,
            )
        results.append(result)
        charged += result.charged_rounds
        parts = {
            v: 2 * parts[v] + result.colors[v] for v in graph.nodes
        }
    # Renumber parts densely.
    distinct = sorted(set(parts.values()))
    renumber = {p: i for i, p in enumerate(distinct)}
    parts = {v: renumber[p] for v, p in parts.items()}
    return RecursiveSplit(
        parts=parts,
        num_parts=max(2**levels, len(distinct)),
        levels=levels,
        lam=lam,
        max_part_degree=measured_max_part_degree(graph, parts),
        level_results=results,
        charged_rounds=charged,
    )
