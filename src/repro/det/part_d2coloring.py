"""Part-parallel d2-coloring of the subgraphs H_i = G²[V_i]
(Lemma 3.5), used by the Theorem 1.3 pipeline.

All parts run the Appendix-B chain *simultaneously* on the shared
network:

- colors are offset per part from the start (part i uses
  [i·q, i·q + q)), so tries from different parts can never collide
  and the plain verdict-checked try primitive stays sound;
- the locally-iterative stage needs no relaying at all, hence no
  overhead from parallelism;
- the color-reduction stage relays, per edge and per receiver v,
  only the colors of same-part neighbors of the middle node — at most
  Δ_h items by the splitting guarantee, which is exactly the O(Δ_h)
  relay bound of Lemma 3.5.

Within part i, Lemma B.3 applies verbatim with conflict degree
D = Δ·Δ_h (the max degree of H_i): any same-part d2-neighbor blocks
at most 2 of the q > 4D phases.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.pipelining import items_per_message
from repro.congest.policy import BandwidthPolicy
from repro.core.trying import TryPhaseMixin, all_colored
from repro.det.g_coloring import prime_between
from repro.det.linial import linial_d2_coloring
from repro.results import ColoringResult
from repro.util.fq import Poly1

_TAG_COLOR = "C"
_TAG_GATHER = "G"
_TAG_RECOLOR = "X"
_TAG_FORWARD = "F"


class PartLocallyIterativeD2(TryPhaseMixin, NodeProgram):
    """Locally-iterative d2-coloring with part-offset palettes."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.init_tracker()
        self.q: int = ctx.data["q"]
        self.part: int = ctx.data["part"]
        self.offset = self.part * self.q
        self.poly = Poly1.from_color(ctx.data["color_in"], self.q)
        self.blocked_phases = 0

    def run(self):
        for phase in range(self.q):
            candidate = None
            if self.live:
                candidate = self.offset + self.poly(phase)
            adopted = yield from self.try_phase(candidate)
            if candidate is not None and not adopted and self.live:
                self.blocked_phases += 1
        return self.color


class PartColorReductionD2(NodeProgram):
    """Per-part color reduction with Δ_h-bounded relays."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.part: int = ctx.data["part"]
        self.q: int = ctx.data["q"]
        self.offset = self.part * self.q
        self.local: int = ctx.data["color_in"] - self.offset
        self.target: int = ctx.data["target"]
        self.phases: int = ctx.data["phases"]
        self.gather_rounds: int = ctx.data["gather_rounds"]
        self.forward_rounds: int = ctx.data["forward_rounds"]
        self.per_message: int = ctx.data["per_message"]
        #: multiset of same-part d2 local colors (counted per route).
        self.d2_local: Dict[int, int] = {}

    def _apply(self, old_local: int, new_local: int) -> None:
        self.d2_local[old_local] = self.d2_local.get(old_local, 0) - 1
        if self.d2_local[old_local] <= 0:
            del self.d2_local[old_local]
        self.d2_local[new_local] = (
            self.d2_local.get(new_local, 0) + 1
        )

    def run(self):
        ctx = self.ctx
        neighbors = ctx.neighbors
        me = ctx.node

        # Round 0: broadcast (local color, part).
        inbox = yield self.broadcast(
            (_TAG_COLOR, self.local, self.part)
        )
        direct: Dict[int, Tuple[int, int]] = {
            sender: (payload[1], payload[2])
            for sender, payload in inbox.items()
            if payload[0] == _TAG_COLOR
        }
        for _sender, (local, part) in direct.items():
            if part == self.part:
                self.d2_local[local] = (
                    self.d2_local.get(local, 0) + 1
                )

        # Gather: relay same-part-of-receiver colors (<= Δ_h items).
        plans = {}
        for receiver in neighbors:
            recv_part = direct.get(receiver, (0, -1))[1]
            plans[receiver] = [
                local
                for sender, (local, part) in direct.items()
                if sender != receiver and part == recv_part
            ]
        for chunk in range(self.gather_rounds):
            lo = chunk * self.per_message
            hi = lo + self.per_message
            outbox = {}
            for receiver, colors in plans.items():
                piece = colors[lo:hi]
                if piece:
                    outbox[receiver] = (_TAG_GATHER,) + tuple(piece)
            inbox = yield outbox
            for payload in inbox.values():
                if payload[0] == _TAG_GATHER:
                    for local in payload[1:]:
                        self.d2_local[local] = (
                            self.d2_local.get(local, 0) + 1
                        )

        # Phases: per part, local maxima above the target recolor.
        # One announce round, then forward_rounds relay rounds (one
        # eligible recolorer per part per d2-neighborhood, but up to
        # min(deg, parts) distinct parts per middle — chunked).
        nbr_parts = {
            sender: part for sender, (_l, part) in direct.items()
        }
        for _phase in range(self.phases):
            announce = None
            if self.local >= self.target and all(
                self.local > other for other in self.d2_local
            ):
                new_local = next(
                    c
                    for c in range(self.target)
                    if c not in self.d2_local
                )
                announce = (
                    _TAG_RECOLOR,
                    me,
                    self.part,
                    self.local,
                    new_local,
                )
                self.local = new_local
            inbox = yield (
                self.broadcast(announce) if announce else {}
            )
            to_forward: List[tuple] = []
            for payload in inbox.values():
                if payload[0] == _TAG_RECOLOR:
                    _t, origin, part, old, new = payload
                    if part == self.part:
                        self._apply(old, new)
                    to_forward.append(
                        (_TAG_FORWARD, origin, part, old, new)
                    )
            for chunk in range(self.forward_rounds):
                batch = to_forward[:2]
                to_forward = to_forward[2:]
                outbox = {}
                if batch:
                    flat: List[int] = []
                    for item in batch:
                        flat.extend(item[1:])
                    payload = (_TAG_FORWARD,) + tuple(flat)
                    inbox = yield self.broadcast(payload)
                else:
                    inbox = yield {}
                for payload in inbox.values():
                    if payload and payload[0] == _TAG_FORWARD:
                        flat = payload[1:]
                        for base in range(0, len(flat), 4):
                            origin, part, old, new = flat[
                                base : base + 4
                            ]
                            if (
                                part == self.part
                                and origin != me
                            ):
                                self._apply(old, new)
        return self.offset_final()

    def offset_final(self) -> int:
        return self.part * self.target + self.local


def part_d2_coloring(
    graph: nx.Graph,
    parts: Dict[int, int],
    part_d2_degree: int,
    num_parts: int,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
) -> ColoringResult:
    """Color every H_i = G²[V_i] in parallel with disjoint palettes.

    ``part_d2_degree`` bounds the degree of every H_i (≤ Δ·Δ_h).
    Output palette: num_parts · (part_d2_degree + 1).
    """
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    policy = policy or BandwidthPolicy()
    n = graph.number_of_nodes()
    budget = policy.budget_bits(n)
    d_part = max(1, part_d2_degree)
    q = prime_between(4 * d_part, 8 * d_part)
    target = d_part + 1

    # Stage 1: per-part Linial (conflicts within parts only).
    linial = linial_d2_coloring(
        graph,
        delta=delta,
        policy=policy,
        parts=parts,
        conflict_degree=d_part,
    )
    if linial.palette_size > q * q:
        raise AssertionError(
            f"part-Linial palette {linial.palette_size} > q²={q * q}"
        )

    # Stage 2: part-offset locally-iterative (palette q per part).
    inputs = {
        v: {
            "q": q,
            "part": parts[v],
            "color_in": linial.coloring[v],
        }
        for v in graph.nodes
    }
    net = Network(
        graph,
        PartLocallyIterativeD2,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run_li = net.run(
        stop_when=all_colored,
        raise_on_timeout=False,
        max_rounds=3 * q + 3,
    )
    li_coloring = net.node_colors()
    blocked = net.node_table("blocked_phases")
    if any(c is None for c in li_coloring.values()):
        raise AssertionError(
            "part locally-iterative left nodes uncolored"
        )

    # Stage 3: per-part reduction q -> target with bounded relays.
    color_bits = max(1, (q - 1).bit_length())
    per_message = items_per_message(color_bits, budget)
    gather_rounds = max(1, -(-d_part // per_message))
    forward_slots = min(delta, num_parts)
    forward_rounds = max(1, -(-forward_slots // 2))
    inputs = {
        v: {
            "q": q,
            "part": parts[v],
            "color_in": li_coloring[v],
            "target": target,
            "phases": max(0, q - target),
            "gather_rounds": gather_rounds,
            "forward_rounds": forward_rounds,
            "per_message": per_message,
        }
        for v in graph.nodes
    }
    net2 = Network(
        graph,
        PartColorReductionD2,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run_cr = net2.run()

    result = ColoringResult(
        algorithm="part-d2-coloring",
        coloring=dict(run_cr.outputs),
        palette_size=num_parts * target,
        rounds=0,
        params={
            "q": q,
            "part_d2_degree": d_part,
            "target_per_part": target,
            "max_blocked_phases": max(blocked.values(), default=0),
        },
    )
    result.add_phase("part-linial", linial.rounds, linial.metrics)
    result.add_phase(
        "part-locally-iterative",
        run_li.metrics.rounds,
        run_li.metrics,
    )
    result.add_phase(
        "part-color-reduction",
        run_cr.metrics.rounds,
        run_cr.metrics,
    )
    return result
