"""The paper's deterministic algorithms (Sec. 3 and Appendix B).

- Theorem 1.2 chain: :mod:`repro.det.linial` →
  :mod:`repro.det.locally_iterative` →
  :mod:`repro.det.color_reduction`, orchestrated by
  :mod:`repro.det.det_d2color`.
- Theorem 1.3 chain: :mod:`repro.det.decomposition` →
  :mod:`repro.det.splitting` → :mod:`repro.det.recursive_split` →
  :mod:`repro.det.eps_coloring` (Thm 3.4 on G) →
  :mod:`repro.det.eps_d2coloring` (Thm 1.3 on G²).
"""
