"""Locally-iterative d2-coloring (Theorem B.4, Lemma B.3).

Given an input d2-coloring ψ with fewer than q² colors for a common
prime q ∈ (4Δ², 8Δ²) (Bertrand), every node maps ψ(v) to the
degree-≤1 polynomial p_v(x) = a_v + b_v·x over F_q with
a_v = ⌊ψ(v)/q⌋, b_v = ψ(v) mod q (footnote 5 of the paper).  In phase
i the node tries color p_v(i); distinct polynomials agree on ≤ 1
point, so each d2-neighbor blocks at most one phase while live and at
most one phase after adopting a constant (Lemma B.3) — at most 2Δ²
blocked phases, and q > 4Δ² phases are scheduled, so every node gets
colored with a color in [q] = O(Δ²).

The try itself is the shared 3-round primitive of
:mod:`repro.core.trying`, which implements exactly the paper's color
trial (immediate neighbors veto on behalf of the 2-hop neighborhood).
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthPolicy
from repro.core.trying import TryPhaseMixin, all_colored
from repro.results import ColoringResult
from repro.util.fq import Poly1
from repro.util.primes import bertrand_prime


class LocallyIterativeProgram(TryPhaseMixin, NodeProgram):
    """One node of the locally-iterative scheme.

    ``ctx.data``: ``q`` (the common prime), ``color_in`` (input color
    < q²).  Tracks ``blocked_phases`` for the Lemma B.3 experiment.
    """

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.init_tracker()
        self.q: int = ctx.data["q"]
        self.poly = Poly1.from_color(ctx.data["color_in"], self.q)
        self.blocked_phases = 0
        self.succeeded_phase: Optional[int] = None

    def run(self):
        for phase in range(self.q):
            candidate = self.poly(phase) if self.live else None
            adopted = yield from self.try_phase(candidate)
            if candidate is not None:
                if adopted:
                    self.succeeded_phase = phase
                elif self.live:
                    self.blocked_phases += 1
        return self.color


def locally_iterative_d2_coloring(
    graph: nx.Graph,
    color_in: Dict[int, int],
    palette_in: int,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    stop_early: bool = True,
) -> ColoringResult:
    """O(Δ²)-coloring of G² from an O(Δ⁴)-coloring in O(Δ²) rounds.

    ``stop_early`` ends the simulation once everyone is colored (the
    formal schedule is always 3q rounds; both numbers are reported).
    """
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    q = bertrand_prime(max(delta, 1))
    if palette_in > q * q:
        raise ValueError(
            f"input palette {palette_in} exceeds q² = {q * q}; run "
            "Linial first (Theorem B.1)"
        )
    inputs = {
        v: {"q": q, "color_in": color_in[v]} for v in graph.nodes
    }
    network = Network(
        graph,
        LocallyIterativeProgram,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run = network.run(
        stop_when=all_colored if stop_early else None,
        raise_on_timeout=False,
        max_rounds=3 * q + 3,
    )
    coloring = network.node_colors()
    blocked = network.node_table("blocked_phases")
    return ColoringResult(
        algorithm="locally-iterative-d2",
        coloring=coloring,
        palette_size=q,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
        params={
            "q": q,
            "scheduled_rounds": 3 * q,
            "max_blocked_phases": max(blocked.values(), default=0),
            "blocked_phases": blocked,
        },
    )
