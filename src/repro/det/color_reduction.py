"""Iterative color reduction on G² (Theorem B.2).

Input: a valid d2-coloring with palette c + k (c >= Δ(G²)+1).  In
each phase, every vertex whose color is >= c *and* strictly larger
than every color in its d2-neighborhood recolors itself with the
smallest color in [c] unused in its d2-neighborhood, then announces
the change two hops.  Two such vertices are never d2-adjacent (each
would need the strictly largest color in a neighborhood containing
the other), so the 2-hop announcement needs no queuing — the paper's
key observation making the reduction O(Δ + k) instead of O(Δ·k).

Every vertex must know the *multiset* of colors in its
d2-neighborhood, learned once in a bit-packed O(Δ) gather and then
maintained incrementally from the (congestion-free) announcements.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

import networkx as nx

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.pipelining import items_per_message
from repro.congest.policy import BandwidthPolicy
from repro.results import ColoringResult

_TAG_COLOR = "C"
_TAG_GATHER = "G"
_TAG_RECOLOR = "X"
_TAG_FORWARD = "F"


class ColorReductionProgram(NodeProgram):
    """One node of the Theorem B.2 color reduction."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.color: int = ctx.data["color_in"]
        self.target: int = ctx.data["target"]
        self.phases: int = ctx.data["phases"]
        self.gather_rounds: int = ctx.data["gather_rounds"]
        self.per_message: int = ctx.data["per_message"]
        self.d2_colors: Counter = Counter()
        self.recolored_in_phase: Optional[int] = None

    def run(self):
        neighbors = self.ctx.neighbors

        # --- setup: learn the d2-neighborhood color multiset --------
        inbox = yield self.broadcast((_TAG_COLOR, self.color))
        direct: Dict[int, int] = {
            sender: payload[1]
            for sender, payload in inbox.items()
            if payload[0] == _TAG_COLOR
        }
        self.d2_colors.update(direct.values())
        plans = {
            receiver: [
                color
                for sender, color in direct.items()
                if sender != receiver
            ]
            for receiver in neighbors
        }
        for chunk in range(self.gather_rounds):
            lo = chunk * self.per_message
            hi = lo + self.per_message
            outbox = {}
            for receiver, colors in plans.items():
                part = colors[lo:hi]
                if part:
                    outbox[receiver] = (_TAG_GATHER,) + tuple(part)
            inbox = yield outbox
            for payload in inbox.values():
                if payload[0] == _TAG_GATHER:
                    self.d2_colors.update(payload[1:])

        # --- phases: local maxima above the target recolor ----------
        # Announcements carry the originator so that (a) the origin
        # ignores forwards of its own event and (b) the multiset
        # bookkeeping stays exact: a d2-neighbor is counted once per
        # 2-path plus once if adjacent, and the forwards replay the
        # event with exactly that multiplicity.
        me = self.ctx.node
        for phase in range(self.phases):
            recolor = None
            if self.color >= self.target and all(
                self.color > other for other in self.d2_colors
            ):
                new_color = self._smallest_free()
                recolor = (_TAG_RECOLOR, me, self.color, new_color)
                self.color = new_color
                self.recolored_in_phase = phase
            inbox = yield (
                self.broadcast(recolor) if recolor else {}
            )

            # Forward any announcement one more hop; at most one can
            # arrive per phase (recoloring vertices are pairwise
            # non-d2-adjacent), so there is no queue.
            forward = None
            for payload in inbox.values():
                if payload[0] == _TAG_RECOLOR:
                    self._apply(payload[2], payload[3])
                    forward = (_TAG_FORWARD,) + payload[1:]
            inbox = yield (
                self.broadcast(forward) if forward else {}
            )
            for payload in inbox.values():
                if payload[0] == _TAG_FORWARD and payload[1] != me:
                    self._apply(payload[2], payload[3])
        return self.color

    def _apply(self, old: int, new: int) -> None:
        self.d2_colors[old] -= 1
        if self.d2_colors[old] <= 0:
            del self.d2_colors[old]
        self.d2_colors[new] += 1

    def _smallest_free(self) -> int:
        for color in range(self.target):
            if color not in self.d2_colors:
                return color
        raise AssertionError(
            "no free color in the target palette: target "
            f"{self.target} <= d2-degree {sum(self.d2_colors.values())}"
        )


def color_reduction_d2(
    graph: nx.Graph,
    color_in: Dict[int, int],
    palette_in: int,
    target: Optional[int] = None,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
) -> ColoringResult:
    """Reduce a (c+k)-coloring of G² to a c-coloring (c = Δ²+1 by
    default) in O(Δ + k) rounds."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    policy = policy or BandwidthPolicy()
    if target is None:
        target = delta * delta + 1
    if palette_in < target:
        raise ValueError("input palette below target; nothing to do")
    phases = palette_in - target
    n = graph.number_of_nodes()
    budget = policy.budget_bits(n)
    color_bits = max(1, (palette_in - 1).bit_length())
    per_message = items_per_message(color_bits, budget)
    gather_rounds = max(1, -(-delta // per_message)) if delta else 0

    inputs = {
        v: {
            "color_in": color_in[v],
            "target": target,
            "phases": phases,
            "gather_rounds": gather_rounds,
            "per_message": per_message,
        }
        for v in graph.nodes
    }
    network = Network(
        graph,
        ColorReductionProgram,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run = network.run()
    return ColoringResult(
        algorithm="color-reduction-d2",
        coloring=dict(run.outputs),
        palette_size=target,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
        params={
            "phases": phases,
            "gather_rounds": gather_rounds,
        },
    )
