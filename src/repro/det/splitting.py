"""Local refinement splitting (Definition 3.1, Theorem 3.2).

Given a vertex partition V_1, ..., V_p and λ > 0, 2-color the vertices
red/blue so that every vertex v with deg_i(v) >= 12·log n/λ² has at
most (1+λ)·deg_i(v)/2 neighbors of each color inside every V_i.

- :func:`random_splitting` — the zero-round randomized algorithm
  (each vertex flips a fair coin); succeeds w.h.p. (Lemma A.5).
- :func:`derandomized_splitting` — the method of conditional
  expectations over a network decomposition of G² (Theorem 3.2):
  iterate the decomposition's color classes; within every same-color
  cluster (pairwise > 2 apart, hence with disjoint influence on the
  failure indicators) fix its members' coins one by one, each time
  choosing the value minimizing a pessimistic estimator of
  E[Σ_v F_v].

  Estimator substitution (DESIGN.md §3.3): the paper fixes Θ(log² n)
  seed *bits* of a Θ(log n)-wise independent hash family; evaluating
  the conditional expectations exactly for such seeds is
  super-polynomial, so the default here fixes the per-node *coins*
  directly and uses the exactly-computable Chernoff/MGF pessimistic
  estimator (independent coins factorize).  The schedule — color
  classes sequentially, clusters of one class in parallel, per-cluster
  sequential fixing with tree aggregation — is the paper's; the
  CONGEST cost of that schedule is charged analytically per cluster
  (members × (weak diameter + 2)) and reported.

The ``seeded`` variant demonstrates the literal seed-bit mechanics
with the GF(2^a) k-wise family of Theorem A.6, estimating conditional
failure counts by averaging over deterministic pseudo-random suffix
samples; the result is verified against Definition 3.1 and retried
with more samples if needed (see DESIGN.md §3.3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.congest.rng import derive_rng
from repro.det.decomposition import (
    NetworkDecomposition,
    ball_carving_decomposition,
)
from repro.util.kwise import KWiseCoins

RED = 0
BLUE = 1


def degree_threshold(n: int, lam: float) -> float:
    """Definition 3.1's threshold: only vertices with
    deg_i(v) >= 12·log2 n / λ² carry a balance guarantee."""
    return 12.0 * math.log2(max(n, 2)) / (lam * lam)


@dataclass
class SplittingResult:
    colors: Dict[int, int]
    lam: float
    violations: List[Tuple[int, int]] = field(default_factory=list)
    #: analytically charged CONGEST rounds of the fixing schedule.
    charged_rounds: int = 0
    method: str = "random"

    @property
    def ok(self) -> bool:
        return not self.violations


def _group_neighbor_lists(
    graph: nx.Graph, partition: Dict[int, int]
) -> Dict[int, Dict[int, List[int]]]:
    """node -> {group: [neighbors in that group]}."""
    out: Dict[int, Dict[int, List[int]]] = {}
    for v in graph.nodes:
        groups: Dict[int, List[int]] = {}
        for u in graph.neighbors(v):
            groups.setdefault(partition[u], []).append(u)
        out[v] = groups
    return out


def splitting_violations(
    graph: nx.Graph,
    partition: Dict[int, int],
    colors: Dict[int, int],
    lam: float,
    threshold: Optional[float] = None,
) -> List[Tuple[int, int]]:
    """All (vertex, group) pairs violating Definition 3.1.

    ``threshold`` overrides the 12·log n/λ² degree floor (used by the
    practical small-scale regime; see recursive_split).
    """
    n = graph.number_of_nodes()
    if threshold is None:
        threshold = degree_threshold(n, lam)
    by_group = _group_neighbor_lists(graph, partition)
    violations = []
    for v, groups in by_group.items():
        for group, members in groups.items():
            degree = len(members)
            if degree < threshold:
                continue
            reds = sum(1 for u in members if colors[u] == RED)
            blues = degree - reds
            bound = (1.0 + lam) * degree / 2.0
            if reds > bound or blues > bound:
                violations.append((v, group))
    return violations


def random_splitting(
    graph: nx.Graph,
    partition: Dict[int, int],
    lam: float,
    seed: int = 0,
    threshold: Optional[float] = None,
) -> SplittingResult:
    """The zero-round randomized splitting (fair coin per vertex)."""
    rng = derive_rng(seed, "splitting")
    colors = {v: rng.randrange(2) for v in graph.nodes}
    return SplittingResult(
        colors=colors,
        lam=lam,
        violations=splitting_violations(
            graph, partition, colors, lam, threshold
        ),
        method="random",
    )


# ----------------------------------------------------------------------
# Derandomization via conditional expectations


class _MgfEstimator:
    """Pessimistic estimator of Σ_v Pr[v fails] for independent fair
    coins, exactly computable under partial assignments.

    For X = #red among the m group-neighbors of v (μ = m/2), Chernoff:
        Pr[X > (1+λ)μ] <= E[e^{tX}] / e^{t(1+λ)μ},  t = ln(1+λ),
    and symmetrically for blue.  E[e^{tX}] factorizes over coins:
    fixed red contributes e^t, fixed blue contributes 1, an unfixed
    coin contributes (1+e^t)/2.
    """

    def __init__(self, lam: float):
        self.lam = lam
        self.t = math.log1p(lam)
        self.e_t = math.exp(self.t)
        self.mix = (1.0 + self.e_t) / 2.0

    def vertex_group_estimate(
        self,
        members: Sequence[int],
        colors: Dict[int, Optional[int]],
    ) -> float:
        m = len(members)
        mu = m / 2.0
        cap = (1.0 + self.lam) * mu
        red_factor = 1.0
        blue_factor = 1.0
        for u in members:
            coin = colors.get(u)
            if coin is None:
                red_factor *= self.mix
                blue_factor *= self.mix
            elif coin == RED:
                red_factor *= self.e_t
            else:
                blue_factor *= self.e_t
        scale = math.exp(-self.t * cap)
        return red_factor * scale + blue_factor * scale


def derandomized_splitting(
    graph: nx.Graph,
    partition: Dict[int, int],
    lam: float,
    decomposition: Optional[NetworkDecomposition] = None,
    method: str = "node_coins",
    seed: int = 0,
    seeded_samples: int = 64,
    seeded_retries: int = 4,
    threshold: Optional[float] = None,
) -> SplittingResult:
    """Deterministic λ-local refinement splitting (Theorem 3.2)."""
    if decomposition is None:
        decomposition = ball_carving_decomposition(graph, k=2)
    if method == "node_coins":
        return _derandomize_node_coins(
            graph, partition, lam, decomposition, threshold
        )
    if method == "seeded":
        return _derandomize_seeded(
            graph,
            partition,
            lam,
            decomposition,
            seed,
            seeded_samples,
            seeded_retries,
        )
    raise ValueError(f"unknown method {method!r}")


def _derandomize_node_coins(
    graph: nx.Graph,
    partition: Dict[int, int],
    lam: float,
    decomposition: NetworkDecomposition,
    threshold: Optional[float] = None,
) -> SplittingResult:
    n = graph.number_of_nodes()
    if threshold is None:
        threshold = degree_threshold(n, lam)
    estimator = _MgfEstimator(lam)
    by_group = _group_neighbor_lists(graph, partition)
    # Constrained (vertex, group) pairs and, per node u, the pairs u's
    # coin can influence.
    influenced: Dict[int, List[Tuple[int, int]]] = {
        v: [] for v in graph.nodes
    }
    constrained: Dict[Tuple[int, int], List[int]] = {}
    for v, groups in by_group.items():
        for group, members in groups.items():
            if len(members) >= threshold:
                constrained[(v, group)] = members
                for u in members:
                    influenced[u].append((v, group))

    colors: Dict[int, Optional[int]] = {v: None for v in graph.nodes}
    charged_rounds = 0
    classes = decomposition.color_classes()
    for color_class in sorted(classes):
        clusters = classes[color_class]
        # Same-color clusters are > 2 apart in G, so no constrained
        # pair sees coins from two of them: fixing them in parallel
        # is exact.  Simulation fixes them sequentially but charges
        # the parallel schedule: max over clusters of the per-cluster
        # cost (members × (diameter bound + 2) for the aggregate /
        # broadcast per fixed coin).
        class_cost = 0
        for cluster in clusters:
            members = decomposition.members[cluster]
            for u in sorted(members):
                best_color = RED
                best_value = None
                for candidate in (RED, BLUE):
                    colors[u] = candidate
                    value = sum(
                        estimator.vertex_group_estimate(
                            constrained[pair], colors
                        )
                        for pair in influenced[u]
                    )
                    if best_value is None or value < best_value:
                        best_value = value
                        best_color = candidate
                colors[u] = best_color
            radius = decomposition.radius.get(
                cluster, max(1, len(members))
            )
            class_cost = max(
                class_cost, len(members) * (2 * radius + 2)
            )
        charged_rounds += class_cost

    final = {v: colors[v] for v in graph.nodes}
    return SplittingResult(
        colors=final,
        lam=lam,
        violations=splitting_violations(
            graph, partition, final, lam, threshold
        ),
        charged_rounds=charged_rounds,
        method="node_coins",
    )


def _derandomize_seeded(
    graph: nx.Graph,
    partition: Dict[int, int],
    lam: float,
    decomposition: NetworkDecomposition,
    seed: int,
    samples: int,
    retries: int,
) -> SplittingResult:
    """Seed-bit fixing with the Theorem A.6 k-wise family.

    Conditional failure counts are estimated by averaging
    Σ_v 1[v fails] over deterministic pseudo-random suffix
    completions; the final assignment is verified and the sample
    budget doubled on failure (bounded retries, then fall back to
    the exact node_coins method).  See DESIGN.md §3.3.
    """
    n = graph.number_of_nodes()
    a = max(3, (max(graph.nodes)).bit_length())
    k = min(10, max(2, int(math.log2(max(n, 2)))))
    seed_len = KWiseCoins.seed_length(k, a)

    for attempt in range(retries):
        colors = _seeded_attempt(
            graph,
            partition,
            lam,
            decomposition,
            a,
            k,
            seed_len,
            derive_rng(seed, "seeded", attempt),
            samples * (2**attempt),
        )
        violations = splitting_violations(
            graph, partition, colors, lam
        )
        if not violations:
            return SplittingResult(
                colors=colors,
                lam=lam,
                violations=[],
                method="seeded",
            )
    # Exact fallback keeps the public contract deterministic.
    return _derandomize_node_coins(
        graph, partition, lam, decomposition
    )


def _seeded_attempt(
    graph: nx.Graph,
    partition: Dict[int, int],
    lam: float,
    decomposition: NetworkDecomposition,
    a: int,
    k: int,
    seed_len: int,
    rng: random.Random,
    samples: int,
) -> Dict[int, int]:
    cluster_bits: Dict[int, List[Optional[int]]] = {
        cluster: [None] * seed_len
        for cluster in decomposition.members
    }

    def colors_for(
        fixed: Dict[int, List[Optional[int]]],
        filler: random.Random,
    ) -> Dict[int, int]:
        out = {}
        for cluster, members in decomposition.members.items():
            bits = [
                bit if bit is not None else filler.randrange(2)
                for bit in fixed[cluster]
            ]
            coins = KWiseCoins(k, a, bits)
            for v in members:
                out[v] = coins.coin(v)
        return out

    def estimate() -> float:
        total = 0
        for s in range(samples):
            filler = random.Random(rng.random())
            colors = colors_for(cluster_bits, filler)
            total += len(
                splitting_violations(graph, partition, colors, lam)
            )
        return total / samples

    classes = decomposition.color_classes()
    for color_class in sorted(classes):
        for cluster in classes[color_class]:
            bits = cluster_bits[cluster]
            for index in range(seed_len):
                best_bit, best_value = 0, None
                for candidate in (0, 1):
                    bits[index] = candidate
                    value = estimate()
                    if best_value is None or value < best_value:
                        best_value = value
                        best_bit = candidate
                bits[index] = best_bit
    return colors_for(cluster_bits, random.Random(0))
