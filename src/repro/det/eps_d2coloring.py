"""Theorem 1.3: deterministic (1+ε)Δ² coloring of G².

Pipeline (Sec. 3): recursively split G into p = 2^h parts with
per-part degree Δ_h (Lemma 3.3, via the derandomized local refinement
splitting of Theorem 3.2), then d2-color all subgraphs
H_i = G²[V_i] in parallel with disjoint palettes of Δ·Δ_h + 1 colors
each (Lemma 3.5 relay bounds; see :mod:`repro.det.part_d2coloring`).
Total colors: 2^h·(Δ·Δ_h + 1) ≈ (1+ε)Δ².

At paper parameters the splitting threshold 1200·ε⁻²·log³n exceeds
any laptop-scale Δ, making h = 0 (a single part = plain Theorem 1.2);
``target_degree``/``levels`` expose the h ≥ 1 regime to benches.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.congest.policy import BandwidthPolicy
from repro.det.part_d2coloring import part_d2_coloring
from repro.det.recursive_split import (
    RecursiveSplit,
    recursive_split,
)
from repro.results import ColoringResult


def eps_d2_color(
    graph: nx.Graph,
    eps: float,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    target_degree: Optional[float] = None,
    levels: Optional[int] = None,
    deterministic_split: bool = True,
    split: Optional[RecursiveSplit] = None,
    split_lam: Optional[float] = None,
    split_threshold: Optional[float] = None,
) -> ColoringResult:
    """Deterministic (1+ε)Δ² d2-coloring of G (Theorem 1.3)."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    if delta == 0:
        return ColoringResult(
            algorithm="eps-d2-coloring",
            coloring={v: 0 for v in graph.nodes},
            palette_size=1,
            rounds=0,
        )
    if split is None:
        split = recursive_split(
            graph,
            eps / 4.0,
            target_degree=target_degree,
            levels=levels,
            deterministic=deterministic_split,
            lam=split_lam,
            threshold=split_threshold,
        )
    part_delta = max(1, split.max_part_degree)
    # Max degree of H_i = G²[V_i]: Δ neighbors each contributing at
    # most Δ_h same-part second neighbors, plus Δ_h direct ones.
    part_d2_degree = min(
        delta * delta, delta * part_delta
    )

    colored = part_d2_coloring(
        graph,
        parts=split.parts,
        part_d2_degree=part_d2_degree,
        num_parts=split.num_parts,
        delta=delta,
        policy=policy,
    )

    result = ColoringResult(
        algorithm="eps-d2-coloring",
        coloring=colored.coloring,
        palette_size=colored.palette_size,
        rounds=0,
        params={
            "eps": eps,
            "levels": split.levels,
            "parts": split.num_parts,
            "part_delta": part_delta,
            "part_d2_degree": part_d2_degree,
            "split_charged_rounds": split.charged_rounds,
            "delta_sq_plus_1": delta * delta + 1,
            "color_budget": (1.0 + eps) * delta * delta,
            "max_blocked_phases": colored.params[
                "max_blocked_phases"
            ],
        },
    )
    result.add_phase(
        "recursive-split(charged)", split.charged_rounds
    )
    for phase in colored.phases:
        result.add_phase(phase.name, phase.rounds, phase.metrics)
    return result
