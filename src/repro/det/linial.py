"""Linial's color reduction on G and on G² (Theorem B.1).

One Linial iteration maps a valid m-coloring to a valid q²-coloring
(for max conflict degree D) using the polynomial cover-free family of
:func:`repro.util.fq.linial_set`: color c ↦ the set
A(c) = {(x, p_c(x)) : x ∈ F_q} with p_c the c-th degree-≤d polynomial
over F_q.  Distinct degree-≤d polynomials agree on ≤ d points, so with
q > d·D the D conflicting sets cover < q points of A(c) and every node
finds a pair (x, p(x)) not covered by its conflict neighborhood; the
pair index x·q + p(x) is the new color in [q²].

On G², the conflict neighborhood is the d2-neighborhood: each node
learns the colors of its d2-neighbors by one broadcast round plus
bit-packed relay rounds (Theorem B.1's pipelining argument — with
colors of b bits, ⌈Δ·b / budget⌉ relay rounds suffice, which drops to
O(1) once colors are small).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.pipelining import items_per_message
from repro.congest.policy import BandwidthPolicy
from repro.results import ColoringResult
from repro.util.fq import linial_set
from repro.util.primes import next_prime_at_least

_TAG_COLOR = "C"
_TAG_RELAY = "R"


def choose_parameters(m: int, conflict_degree: int) -> Tuple[int, int]:
    """The (d, q) minimizing the next palette size q².

    Constraints: q prime, q > d·D (cover-freeness) and q^(d+1) >= m
    (enough degree-<=d polynomials for all input colors).  For each
    candidate degree d, the smallest admissible prime is
    nextprime(max(d·D + 1, ceil(m^{1/(d+1)}))).
    """
    degree_bound = max(1, conflict_degree)
    best: Optional[Tuple[int, int]] = None
    for d in range(1, 300):
        root = math.ceil(m ** (1.0 / (d + 1)))
        q = next_prime_at_least(max(d * degree_bound + 1, root, 2))
        while q ** (d + 1) < m:  # ceil rounding guard
            q = next_prime_at_least(q + 1)
        if best is None or q * q < best[1] * best[1]:
            best = (d, q)
        if root <= d * degree_bound + 1:
            # Larger d only raises the q > d·D floor from here on.
            break
    if best is None:
        raise ArithmeticError(
            f"no Linial parameters for m={m}, D={conflict_degree}"
        )
    return best


def linial_schedule(
    m0: int, conflict_degree: int
) -> List[Tuple[int, int, int]]:
    """The iteration schedule [(d, q, m_new), ...] down to the fixed
    point q_1² with q_1 = nextprime(D+1) — O(D²) colors total.

    Every node derives the same schedule from (n, Δ), so no
    coordination is needed (log* n iterations, Thm B.1).
    """
    schedule = []
    m = m0
    while True:
        d, q = choose_parameters(m, conflict_degree)
        m_new = q * q
        if m_new >= m:
            break
        schedule.append((d, q, m_new))
        m = m_new
    return schedule


def final_palette(m0: int, conflict_degree: int) -> int:
    """Palette size after running the full schedule (m0 if the input
    palette is already at or below the fixed point)."""
    schedule = linial_schedule(m0, conflict_degree)
    return schedule[-1][2] if schedule else m0


def _new_color(
    own_color: int, neighbor_colors: Set[int], d: int, q: int
) -> int:
    """Pick the smallest element of A(own) not covered by neighbors."""
    own_set = sorted(linial_set(own_color, d, q))
    covered: Set[int] = set()
    for c in neighbor_colors:
        if c != own_color:
            covered |= linial_set(c, d, q)
    for pair in own_set:
        if pair not in covered:
            return pair
    raise AssertionError(
        "cover-free property violated: no free pair "
        f"(d={d}, q={q}, |N|={len(neighbor_colors)})"
    )


class LinialProgram(NodeProgram):
    """Runs the full Linial schedule at one node.

    ``ctx.data``: ``schedule`` (shared), ``relay`` (True for the G²
    version), ``per_message`` list (packing factor per iteration),
    ``relay_rounds`` list, optional ``color_in`` (defaults to the ID)
    and optional ``part`` (conflicts are then confined to same-part
    nodes — the per-part Linial of the Theorem 1.3 pipeline).
    """

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.color: int = ctx.data.get("color_in", ctx.node)
        self.part: int = ctx.data.get("part", 0)
        self.schedule = ctx.data["schedule"]
        self.relay: bool = ctx.data["relay"]
        self.relay_rounds: Sequence[int] = ctx.data["relay_rounds"]
        self.per_message: Sequence[int] = ctx.data["per_message"]

    def run(self):
        neighbors = self.ctx.neighbors
        for index, (d, q, _m_new) in enumerate(self.schedule):
            # 1. broadcast current color (and part, for filtering)
            inbox = yield self.broadcast(
                (_TAG_COLOR, self.color, self.part)
            )
            direct: Dict[int, Tuple[int, int]] = {
                sender: (payload[1], payload[2])
                for sender, payload in inbox.items()
                if payload[0] == _TAG_COLOR
            }
            conflict_colors: Set[int] = {
                color
                for color, part in direct.values()
                if part == self.part
            }

            # 2. relay rounds (G² only): forward neighbor colors,
            # filtered to the receiver's part.
            if self.relay:
                per_message = self.per_message[index]
                plans = {}
                for receiver in neighbors:
                    recv_part = direct.get(receiver, (None, 0))[1]
                    plans[receiver] = [
                        color
                        for sender, (color, part) in direct.items()
                        if sender != receiver and part == recv_part
                    ]
                for chunk in range(self.relay_rounds[index]):
                    lo = chunk * per_message
                    hi = lo + per_message
                    outbox = {}
                    for receiver, colors in plans.items():
                        part = colors[lo:hi]
                        if part:
                            outbox[receiver] = (_TAG_RELAY,) + tuple(
                                part
                            )
                    inbox = yield outbox
                    for payload in inbox.values():
                        if payload[0] == _TAG_RELAY:
                            conflict_colors.update(payload[1:])

            # 3. recolor locally
            self.color = _new_color(self.color, conflict_colors, d, q)
        return self.color


def _run_linial(
    graph: nx.Graph,
    distance_two: bool,
    delta: Optional[int],
    policy: Optional[BandwidthPolicy],
    color_in: Optional[Dict[int, int]],
    palette_in: Optional[int],
    parts: Optional[Dict[int, int]] = None,
    conflict_degree: Optional[int] = None,
) -> ColoringResult:
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    policy = policy or BandwidthPolicy()
    n = graph.number_of_nodes()
    if conflict_degree is None:
        conflict_degree = delta * delta if distance_two else delta
    conflict_degree = max(conflict_degree, 1)
    m0 = palette_in if palette_in is not None else n
    schedule = linial_schedule(m0, conflict_degree)

    budget = policy.budget_bits(n)
    relay_rounds = []
    per_message = []
    current_m = m0
    for _d, _q, m_new in schedule:
        color_bits = max(1, (current_m - 1).bit_length())
        per_msg = items_per_message(color_bits, budget)
        per_message.append(per_msg)
        relay_rounds.append(max(1, -(-delta // per_msg)))
        current_m = m_new

    data = {
        "schedule": schedule,
        "relay": distance_two,
        "relay_rounds": relay_rounds,
        "per_message": per_message,
    }
    inputs = {}
    for v in graph.nodes:
        node_data = dict(data)
        if color_in is not None:
            node_data["color_in"] = color_in[v]
        if parts is not None:
            node_data["part"] = parts[v]
        inputs[v] = node_data

    network = Network(
        graph, LinialProgram, policy=policy, delta=delta, inputs=inputs
    )
    run = network.run()
    if schedule:
        palette = schedule[-1][2]
    else:
        palette = m0
    return ColoringResult(
        algorithm=(
            "linial-d2" if distance_two else "linial-g"
        ),
        coloring=dict(run.outputs),
        palette_size=palette,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
        params={
            "iterations": len(schedule),
            "schedule": schedule,
            "conflict_degree": conflict_degree,
        },
    )


def linial_d2_coloring(
    graph: nx.Graph,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    color_in: Optional[Dict[int, int]] = None,
    palette_in: Optional[int] = None,
    parts: Optional[Dict[int, int]] = None,
    conflict_degree: Optional[int] = None,
) -> ColoringResult:
    """O(Δ⁴)-coloring of G² in O(Δ·log* n / packing) rounds
    (Theorem B.1).  Starts from IDs unless ``color_in`` is given.
    With ``parts``, conflicts are restricted to same-part d2-pairs
    and ``conflict_degree`` should bound the per-part d2-degree."""
    return _run_linial(
        graph,
        True,
        delta,
        policy,
        color_in,
        palette_in,
        parts,
        conflict_degree,
    )


def linial_g_coloring(
    graph: nx.Graph,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    color_in: Optional[Dict[int, int]] = None,
    palette_in: Optional[int] = None,
    parts: Optional[Dict[int, int]] = None,
    conflict_degree: Optional[int] = None,
) -> ColoringResult:
    """O(Δ²)-coloring of G in O(log* n) rounds (classic Linial)."""
    return _run_linial(
        graph,
        False,
        delta,
        policy,
        color_in,
        palette_in,
        parts,
        conflict_degree,
    )
