"""Deterministic (Δ+1)-coloring of G — the [7]-style substrate.

Theorem 3.4 colors each part of the recursive splitting with a
(Δ_h+1)-coloring algorithm "e.g. the algorithm of [7]" (Barenboim,
Elkin, Goldenberg).  We build the same pipeline the paper uses on G²
(Appendix B), specialized to distance 1:

1. Linial on G: IDs → O(Δ²) colors in O(log* n) rounds;
2. locally-iterative: O(Δ²) → q ∈ (4Δ, 8Δ) colors in O(Δ) phases,
   via degree-≤1 polynomials over F_q (the distance-1 Lemma B.3:
   every neighbor blocks ≤ 2 phases, and q > 4Δ ≥ 2·deg + 1);
3. color reduction: q → Δ+1 colors in O(q - Δ) phases.

The try primitive at distance 1 is lighter than the d2 one: a node
sees its neighbors' tries directly, so a phase is 2 rounds (try,
adopt) with the conflict check local.

Parts: every function takes an optional ``parts`` map (node → group
id).  With parts, conflicts only count within the same group and all
groups run concurrently — the parallel coloring step of Theorem 3.4
(parts are vertex-disjoint, so no relaying or extra congestion is
needed at distance 1).
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthPolicy
from repro.det.linial import linial_g_coloring
from repro.results import ColoringResult
from repro.util.fq import Poly1
from repro.util.primes import next_prime_at_least

_TAG_TRY = "t"
_TAG_ADOPT = "a"
_TAG_COLOR = "c"
_TAG_RECOLOR = "x"


def prime_between(low: int, high: int) -> int:
    """Smallest prime in (low, high); exists for high >= 2·low by
    Bertrand's postulate."""
    q = next_prime_at_least(low + 1)
    if q >= high:
        raise ArithmeticError(f"no prime in ({low}, {high})")
    return q


class _G1Program(NodeProgram):
    """Shared state for the distance-1 phases."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.part = ctx.data.get("part", 0)
        self.nbr_parts: Dict[int, int] = {}
        self.nbr_colors: Dict[int, int] = {}
        self.color: Optional[int] = None

    def _same_part(self, node: int) -> bool:
        return self.nbr_parts.get(node, 0) == self.part

    def learn_parts(self):
        inbox = yield self.broadcast(("p", self.part))
        self.nbr_parts = {
            sender: payload[1]
            for sender, payload in inbox.items()
            if payload[0] == "p"
        }

    def try_g_phase(self, candidate: Optional[int]):
        """2-round distance-1 try: broadcast, resolve, announce."""
        if candidate is not None:
            inbox = yield self.broadcast((_TAG_TRY, candidate))
        else:
            inbox = yield {}
        conflict = False
        if candidate is not None:
            for sender, payload in inbox.items():
                if not self._same_part(sender):
                    continue
                if payload[0] == _TAG_TRY and payload[1] == candidate:
                    conflict = True
                    break
            if not conflict and candidate in {
                color
                for nbr, color in self.nbr_colors.items()
                if self._same_part(nbr)
            }:
                conflict = True
        adopted = candidate is not None and not conflict
        if adopted:
            self.color = candidate
            inbox = yield self.broadcast((_TAG_ADOPT, candidate))
        else:
            inbox = yield {}
        for sender, payload in inbox.items():
            if payload[0] == _TAG_ADOPT:
                self.nbr_colors[sender] = payload[1]
        return adopted


class LocallyIterativeGProgram(_G1Program):
    """Phases of trying p_v(i) over F_q at distance 1."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.q: int = ctx.data["q"]
        self.poly = Poly1.from_color(ctx.data["color_in"], self.q)
        self.blocked_phases = 0

    def run(self):
        yield from self.learn_parts()
        for phase in range(self.q):
            candidate = (
                self.poly(phase) if self.color is None else None
            )
            adopted = yield from self.try_g_phase(candidate)
            if candidate is not None and not adopted:
                self.blocked_phases += 1
        return self.color


class ColorReductionGProgram(_G1Program):
    """Iterative reduction to target colors at distance 1."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.color = ctx.data["color_in"]
        self.target: int = ctx.data["target"]
        self.phases: int = ctx.data["phases"]

    def run(self):
        yield from self.learn_parts()
        inbox = yield self.broadcast((_TAG_COLOR, self.color))
        for sender, payload in inbox.items():
            if payload[0] == _TAG_COLOR:
                self.nbr_colors[sender] = payload[1]
        for _phase in range(self.phases):
            same_part_colors = {
                color
                for nbr, color in self.nbr_colors.items()
                if self._same_part(nbr)
            }
            announce = None
            if self.color >= self.target and all(
                self.color > c for c in same_part_colors
            ):
                new_color = next(
                    c
                    for c in range(self.target)
                    if c not in same_part_colors
                )
                announce = (_TAG_RECOLOR, new_color)
                self.color = new_color
            inbox = yield (
                self.broadcast(announce) if announce else {}
            )
            for sender, payload in inbox.items():
                if payload[0] == _TAG_RECOLOR:
                    self.nbr_colors[sender] = payload[1]
        return self.color


def _part_inputs(graph, parts, extra):
    inputs = {}
    for v in graph.nodes:
        data = dict(extra.get(v, {}))
        if parts is not None:
            data["part"] = parts[v]
        inputs[v] = data
    return inputs


def deg_plus_one_coloring_g(
    graph: nx.Graph,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    parts: Optional[Dict[int, int]] = None,
    part_delta: Optional[int] = None,
    target: Optional[int] = None,
) -> ColoringResult:
    """(Δ+1)-coloring of G (or (Δ_h+1) per part) deterministically.

    With ``parts``, conflicts are confined to same-part neighbors and
    ``part_delta`` bounds the per-part degree; the resulting colors
    are *local* (offset them per part for a disjoint-palette union).
    """
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    eff_delta = part_delta if part_delta is not None else delta
    eff_delta = max(eff_delta, 1)
    if target is None:
        target = eff_delta + 1

    # Stage 1: Linial on G, with conflicts confined to same-part
    # neighbors so that the fixed-point palette is O(Δ_h²), matching
    # the locally-iterative stage's q² bound.
    linial = linial_g_coloring(
        graph,
        delta=delta,
        policy=policy,
        parts=parts,
        conflict_degree=eff_delta,
    )

    # Stage 2: locally-iterative down to q ∈ (4Δ_h, 8Δ_h).
    q = prime_between(4 * eff_delta, 8 * eff_delta)
    if linial.palette_size > q * q:
        raise AssertionError(
            "Linial fixed point exceeded the locally-iterative "
            f"bound: {linial.palette_size} > {q * q}"
        )
    inputs = _part_inputs(
        graph,
        parts,
        {
            v: {"q": q, "color_in": linial.coloring[v]}
            for v in graph.nodes
        },
    )
    net = Network(
        graph,
        LocallyIterativeGProgram,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run_li = net.run()
    li_coloring = dict(run_li.outputs)
    blocked = {
        v: p.blocked_phases for v, p in net.programs.items()
    }

    # Stage 3: reduce q -> target.
    inputs = _part_inputs(
        graph,
        parts,
        {
            v: {
                "color_in": li_coloring[v],
                "target": target,
                "phases": max(0, q - target),
            }
            for v in graph.nodes
        },
    )
    net2 = Network(
        graph,
        ColorReductionGProgram,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run_cr = net2.run()

    result = ColoringResult(
        algorithm="deg-plus-one-g" if parts is None else "parts-g",
        coloring=dict(run_cr.outputs),
        palette_size=target,
        rounds=0,
        params={
            "q": q,
            "max_blocked_phases": max(blocked.values(), default=0),
        },
    )
    result.add_phase("linial-g", linial.rounds, linial.metrics)
    result.add_phase(
        "locally-iterative-g", run_li.metrics.rounds, run_li.metrics
    )
    result.add_phase(
        "color-reduction-g", run_cr.metrics.rounds, run_cr.metrics
    )
    return result
