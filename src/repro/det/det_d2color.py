"""Theorem 1.2: deterministic Δ²+1 d2-coloring in O(Δ² + log* n).

The three-stage pipeline of Appendix B, run back to back:

1. :func:`repro.det.linial.linial_d2_coloring`
   IDs → O(Δ⁴) colors in O(Δ + log* n) rounds (Theorem B.1);
2. :func:`repro.det.locally_iterative.locally_iterative_d2_coloring`
   O(Δ⁴) → q ∈ (4Δ², 8Δ²) colors in O(Δ²) rounds (Theorem B.4);
3. :func:`repro.det.color_reduction.color_reduction_d2`
   q → Δ²+1 colors in O(Δ²) rounds (Theorem B.2).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.congest.policy import BandwidthPolicy
from repro.det.color_reduction import color_reduction_d2
from repro.det.linial import linial_d2_coloring
from repro.det.locally_iterative import locally_iterative_d2_coloring
from repro.results import ColoringResult


def deterministic_d2_color(
    graph: nx.Graph,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    stop_early: bool = True,
) -> ColoringResult:
    """Deterministic d2-coloring with Δ²+1 colors (Theorem 1.2)."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    if delta == 0:
        coloring = {v: 0 for v in graph.nodes}
        return ColoringResult(
            algorithm="deterministic-d2",
            coloring=coloring,
            palette_size=1,
            rounds=0,
        )

    linial = linial_d2_coloring(graph, delta=delta, policy=policy)
    iterative = locally_iterative_d2_coloring(
        graph,
        color_in=linial.coloring,
        palette_in=linial.palette_size,
        delta=delta,
        policy=policy,
        stop_early=stop_early,
    )
    target = delta * delta + 1
    if iterative.palette_size > target:
        reduced = color_reduction_d2(
            graph,
            color_in=iterative.coloring,
            palette_in=iterative.palette_size,
            target=target,
            delta=delta,
            policy=policy,
        )
        final_coloring = reduced.coloring
        reduction_phase = reduced
    else:
        final_coloring = iterative.coloring
        reduction_phase = None

    result = ColoringResult(
        algorithm="deterministic-d2",
        coloring=final_coloring,
        palette_size=target,
        rounds=0,
        params={"delta": delta},
    )
    result.add_phase("linial", linial.rounds, linial.metrics)
    result.add_phase(
        "locally-iterative", iterative.rounds, iterative.metrics
    )
    if reduction_phase is not None:
        result.add_phase(
            "color-reduction",
            reduction_phase.rounds,
            reduction_phase.metrics,
        )
    result.params["max_blocked_phases"] = iterative.params[
        "max_blocked_phases"
    ]
    result.params["q"] = iterative.params["q"]
    return result
