"""Network decomposition of G^k with congestion (Definition A.1).

The paper consumes an (O(log n), O(log³ n))-decomposition of G² from
Rozhoň–Ghaffari [28] as a black-box substrate.  Reimplementing [28]
is out of scope (it is its own paper); per DESIGN.md §3.2 we provide
two substitute constructions with the same *output interface* and
verified output properties:

- :func:`ball_carving_decomposition` — deterministic sequential ball
  carving: repeatedly grow a ball around the smallest unclustered ID
  until the boundary is a small fraction of the ball (radius
  O(log n) by the standard charging argument), carve it, and greedily
  color the cluster graph so same-color clusters are > k apart.
- :func:`mpx_decomposition` — randomized Miller–Peng–Xu exponential
  shifts, same coloring post-pass.

Both are computed centrally (the decomposition is substrate, not the
contribution under test; see DESIGN.md).  The derandomization of
Theorem 3.2 uses only the *properties* checked by
:meth:`NetworkDecomposition.validate`: same-color separation in G^k,
bounded weak diameter, and a bound on the number of colors.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx


@dataclass
class NetworkDecomposition:
    """A partition into clusters with colors and diameters."""

    k: int
    cluster_of: Dict[int, int]
    color_of_cluster: Dict[int, int]
    members: Dict[int, List[int]] = field(default_factory=dict)
    radius: Dict[int, int] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return len(self.members)

    @property
    def num_colors(self) -> int:
        return len(set(self.color_of_cluster.values()))

    def color_classes(self) -> Dict[int, List[int]]:
        """color -> list of cluster ids."""
        classes: Dict[int, List[int]] = {}
        for cluster, color in self.color_of_cluster.items():
            classes.setdefault(color, []).append(cluster)
        return classes

    def max_diameter(self, graph: nx.Graph) -> int:
        """Maximum weak diameter (distance in G) over clusters."""
        worst = 0
        for nodes in self.members.values():
            if len(nodes) <= 1:
                continue
            source = nodes[0]
            lengths = nx.single_source_shortest_path_length(
                graph, source
            )
            worst = max(
                worst, max(lengths[v] for v in nodes if v in lengths)
            )
        return worst

    def validate(self, graph: nx.Graph) -> bool:
        """Same-color clusters must be > k apart in G (property iii
        of Definition A.1); the partition must cover every node."""
        if set(self.cluster_of) != set(graph.nodes):
            return False
        for color, clusters in self.color_classes().items():
            nodes_by_cluster = [
                set(self.members[c]) for c in clusters
            ]
            # BFS from each cluster, bounded by k, must not meet
            # another same-color cluster.
            for index, nodes in enumerate(nodes_by_cluster):
                others = set().union(
                    *(
                        s
                        for j, s in enumerate(nodes_by_cluster)
                        if j != index
                    )
                ) if len(nodes_by_cluster) > 1 else set()
                if not others:
                    continue
                frontier = set(nodes)
                seen = set(nodes)
                for _ in range(self.k):
                    frontier = {
                        u
                        for v in frontier
                        for u in graph.neighbors(v)
                        if u not in seen
                    }
                    seen |= frontier
                    if frontier & others:
                        return False
        return True


def _carve_ball(
    graph: nx.Graph,
    remaining: Set[int],
    center: int,
    growth: float,
) -> Set[int]:
    """Grow a ball in the remaining graph until the next layer adds
    fewer than ``growth`` fraction of the current ball."""
    ball = {center}
    frontier = {center}
    while True:
        next_layer = {
            u
            for v in frontier
            for u in graph.neighbors(v)
            if u in remaining and u not in ball
        }
        if not next_layer:
            return ball
        if len(next_layer) < growth * len(ball):
            return ball | next_layer
        ball |= next_layer
        frontier = next_layer


def _color_clusters(
    graph: nx.Graph,
    k: int,
    cluster_of: Dict[int, int],
    members: Dict[int, List[int]],
) -> Dict[int, int]:
    """Greedy coloring of the cluster graph: clusters within distance
    k in G get distinct colors."""
    adjacency: Dict[int, Set[int]] = {c: set() for c in members}
    for cluster, nodes in members.items():
        seen = set(nodes)
        frontier = set(nodes)
        for _ in range(k):
            frontier = {
                u
                for v in frontier
                for u in graph.neighbors(v)
                if u not in seen
            }
            seen |= frontier
            for u in frontier:
                other = cluster_of[u]
                if other != cluster:
                    adjacency[cluster].add(other)
    color_of: Dict[int, int] = {}
    for cluster in sorted(members):
        used = {
            color_of[other]
            for other in adjacency[cluster]
            if other in color_of
        }
        color = 0
        while color in used:
            color += 1
        color_of[cluster] = color
    return color_of


def ball_carving_decomposition(
    graph: nx.Graph, k: int = 2
) -> NetworkDecomposition:
    """Deterministic ball-carving decomposition of G^k.

    Ball radii are O(log n) (each retained layer grows the ball by a
    (1 + 1/⌈log2 n⌉) factor, and balls cannot exceed n nodes).
    """
    n = graph.number_of_nodes()
    growth = 1.0 / max(1.0, math.log2(max(n, 2)))
    remaining = set(graph.nodes)
    cluster_of: Dict[int, int] = {}
    members: Dict[int, List[int]] = {}
    next_id = 0
    radius: Dict[int, int] = {}
    while remaining:
        center = min(remaining)
        ball = _carve_ball(graph, remaining, center, growth)
        members[next_id] = sorted(ball)
        for v in ball:
            cluster_of[v] = next_id
        lengths = nx.single_source_shortest_path_length(
            graph.subgraph(ball), center
        )
        radius[next_id] = max(lengths.values(), default=0)
        remaining -= ball
        next_id += 1
    color_of = _color_clusters(graph, k, cluster_of, members)
    return NetworkDecomposition(
        k=k,
        cluster_of=cluster_of,
        color_of_cluster=color_of,
        members=members,
        radius=radius,
    )


def mpx_decomposition(
    graph: nx.Graph,
    k: int = 2,
    beta: Optional[float] = None,
    seed: int = 0,
) -> NetworkDecomposition:
    """Miller–Peng–Xu exponential-shift decomposition of G^k.

    Each node draws δ_v ~ Exp(β) and joins the cluster of the node u
    maximizing δ_u - d(u, v); with β = Θ(1/log n) cluster radii are
    O(log n / β·...) = O(log n) w.h.p.
    """
    n = graph.number_of_nodes()
    if beta is None:
        beta = 1.0 / (2.0 * math.log2(max(n, 2)))
    rng = random.Random(seed)
    shifts = {v: rng.expovariate(beta) for v in graph.nodes}
    # Dijkstra-like relaxation of (d(u, v) - δ_u) from all sources.
    import heapq

    best: Dict[int, float] = {}
    owner: Dict[int, int] = {}
    heap = []
    for v in graph.nodes:
        key = -shifts[v]
        best[v] = key
        owner[v] = v
        heapq.heappush(heap, (key, v, v))
    while heap:
        key, source, v = heapq.heappop(heap)
        if key > best[v] or owner[v] != source:
            continue
        for u in graph.neighbors(v):
            candidate = key + 1.0
            if candidate < best.get(u, float("inf")):
                best[u] = candidate
                owner[u] = source
                heapq.heappush(heap, (candidate, source, u))
    centers = sorted(set(owner.values()))
    index = {c: i for i, c in enumerate(centers)}
    cluster_of = {v: index[owner[v]] for v in graph.nodes}
    members: Dict[int, List[int]] = {}
    for v, c in cluster_of.items():
        members.setdefault(c, []).append(v)
    members = {c: sorted(vs) for c, vs in members.items()}
    radius = {}
    for c, vs in members.items():
        center = centers[c]
        lengths = nx.single_source_shortest_path_length(
            graph, center
        )
        radius[c] = max((lengths.get(v, 0) for v in vs), default=0)
    color_of = _color_clusters(graph, k, cluster_of, members)
    return NetworkDecomposition(
        k=k,
        cluster_of=cluster_of,
        color_of_cluster=color_of,
        members=members,
        radius=radius,
    )
