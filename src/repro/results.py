"""Common result types returned by the coloring algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.congest.metrics import RunMetrics


@dataclass
class PhaseResult:
    """One phase of a multi-phase algorithm (e.g. "Linial")."""

    name: str
    rounds: int
    metrics: Optional[RunMetrics] = None


@dataclass
class ColoringResult:
    """A coloring plus the cost of computing it.

    ``palette_size`` is the number of colors the algorithm was allowed
    (e.g. Δ²+1); ``colors_used`` is how many distinct colors actually
    appear.  ``rounds`` is the total number of CONGEST rounds across
    all phases.
    """

    algorithm: str
    coloring: Dict[int, int]
    palette_size: int
    rounds: int
    metrics: RunMetrics = field(default_factory=RunMetrics)
    phases: List[PhaseResult] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def colors_used(self) -> int:
        return len(set(self.coloring.values()))

    @property
    def complete(self) -> bool:
        """True when every node has a (non-None) color."""
        return all(c is not None for c in self.coloring.values())

    def phase_rounds(self) -> Dict[str, int]:
        return {phase.name: phase.rounds for phase in self.phases}

    def add_phase(
        self, name: str, rounds: int, metrics: Optional[RunMetrics] = None
    ) -> None:
        self.phases.append(PhaseResult(name, rounds, metrics))
        self.rounds += rounds
        if metrics is not None:
            self.metrics = self.metrics.merge(metrics)

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.colors_used} colors "
            f"(palette {self.palette_size}), {self.rounds} rounds, "
            f"{self.metrics.total_messages} messages"
        )
