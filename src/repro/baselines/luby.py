"""Distance-k maximal independent set via random priorities.

Sec. 1 of the paper: "The distance-k maximal independent set problem
can easily be solved in O(k log n) time using Luby's algorithm."  Each
phase, live nodes draw a random O(log n)-bit priority; a node joins
the MIS when it holds the strict maximum priority among live nodes
within distance k (computable by k rounds of max-flooding), and nodes
within distance k of a new MIS member retire.  Experiment E17 checks
the O(k log n) round scaling.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import networkx as nx

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthPolicy

_TAG_RANK = "K"
_TAG_DOM = "D"

_STATE_LIVE = "live"
_STATE_IN_MIS = "in_mis"
_STATE_DOMINATED = "dominated"


class LubyDistanceKProgram(NodeProgram):
    """One node of the distance-k MIS protocol."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.k: int = ctx.data["k"]
        self.state = _STATE_LIVE
        self.phases = 0

    def _draw_rank(self) -> int:
        # rank * n + id: distinct total order even on rank collisions.
        n = self.ctx.n
        return self.ctx.rng.randrange(n**3) * n + self.ctx.node

    def run(self):
        k = self.k
        while True:
            self.phases += 1
            # --- max-flooding of ranks for k rounds ------------------
            own_rank = self._draw_rank() if self.state == _STATE_LIVE else -1
            best = own_rank
            for _ in range(k):
                inbox = yield self.broadcast((_TAG_RANK, best))
                for payload in inbox.values():
                    if payload and payload[0] == _TAG_RANK:
                        best = max(best, payload[1])
            joined = (
                self.state == _STATE_LIVE and best == own_rank
            )
            if joined:
                self.state = _STATE_IN_MIS

            # --- dominate the k-ball around new MIS members ----------
            hops = k if joined else 0
            for _ in range(k):
                outbox = (
                    self.broadcast((_TAG_DOM, hops))
                    if hops > 0
                    else {}
                )
                inbox = yield outbox
                incoming = [
                    payload[1]
                    for payload in inbox.values()
                    if payload and payload[0] == _TAG_DOM
                ]
                if incoming:
                    if self.state == _STATE_LIVE:
                        self.state = _STATE_DOMINATED
                    hops = max([hops] + [h - 1 for h in incoming])
                elif not joined:
                    hops = 0


def _all_decided(network, _round) -> bool:
    return all(
        program.state != _STATE_LIVE
        for program in network.programs.values()
    )


def luby_distance_k_mis(
    graph: nx.Graph,
    k: int = 2,
    seed: int = 0,
    policy: Optional[BandwidthPolicy] = None,
    max_rounds: int = 100_000,
):
    """Compute a distance-k MIS; returns ``(mis_set, rounds, metrics)``."""
    inputs = {v: {"k": k} for v in graph.nodes}
    network = Network(
        graph,
        LubyDistanceKProgram,
        seed=seed,
        policy=policy,
        inputs=inputs,
    )
    run = network.run(
        max_rounds=max_rounds,
        stop_when=_all_decided,
        raise_on_timeout=False,
    )
    mis: Set[int] = {
        node
        for node, state in network.node_table("state").items()
        if state == _STATE_IN_MIS
    }
    return mis, run.metrics.rounds, run.metrics


def check_distance_k_mis(graph: nx.Graph, mis: Set[int], k: int) -> bool:
    """Independence at distance k plus domination within distance k."""
    lengths = dict(nx.all_pairs_shortest_path_length(graph, cutoff=k))
    for u in mis:
        for v in mis:
            if u < v and v in lengths.get(u, {}):
                return False
    for v in graph.nodes:
        if v in mis:
            continue
        if not any(m in lengths.get(v, {}) for m in mis):
            return False
    return True
