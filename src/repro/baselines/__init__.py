"""Baselines: centralized oracles and the algorithms the paper beats."""

from repro.baselines.greedy import dsatur_d2_coloring, greedy_d2_coloring
from repro.baselines.trial import trial_d2_color
from repro.baselines.naive import naive_congest_d2_color
from repro.baselines.luby import luby_distance_k_mis

__all__ = [
    "dsatur_d2_coloring",
    "greedy_d2_coloring",
    "luby_distance_k_mis",
    "naive_congest_d2_color",
    "trial_d2_color",
]
