"""The random-trial baseline (Sec. 2.1 and Step 2 of d2-Color).

Every live node repeatedly tries a uniformly random color from the
whole palette.  With (1+ε)Δ² colors this alone finishes in
O(log_{1/ε} n) phases (experiment E16); with Δ²+1 colors it is the
slow strawman whose acceleration is the paper's main contribution.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx

from repro.congest.network import Network, UniformInputs
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthPolicy
from repro.core.trying import TryPhaseMixin, all_colored
from repro.results import ColoringResult


class TrialProgram(TryPhaseMixin, NodeProgram):
    """Try a uniform random palette color until colored.

    ``ctx.data['palette']`` is the palette size; an optional
    ``ctx.data['color']`` precolors the node.  Colored nodes keep
    serving verdicts for their neighbors (the simulation stops them
    globally once everyone is colored).
    """

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.init_tracker(ctx.data.get("color"))
        self.palette = ctx.data["palette"]
        self.avoid_known = ctx.data.get("avoid_known", False)
        self.phases_tried = 0

    def _candidate(self) -> Optional[int]:
        if not self.live:
            return None
        self.phases_tried += 1
        if self.avoid_known:
            known = set(self.nbr_colors.values())
            free = [c for c in range(self.palette) if c not in known]
            if free:
                return self.ctx.rng.choice(free)
        return self.ctx.rng.randrange(self.palette)

    def run(self):
        while True:
            yield from self.try_phase(self._candidate())


def trial_d2_color(
    graph: nx.Graph,
    seed: int = 0,
    eps: float = 0.0,
    avoid_known: bool = False,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    max_rounds: int = 200_000,
) -> ColoringResult:
    """Run the trial baseline with palette ``(1+eps)Δ² + 1`` colors.

    ``eps = 0`` gives the paper's Δ²+1 palette.
    """
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    palette = math.floor((1.0 + eps) * delta * delta) + 1
    inputs = UniformInputs(
        graph.nodes,
        {"palette": palette, "avoid_known": avoid_known},
    )
    network = Network(
        graph,
        TrialProgram,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run = network.run(
        max_rounds=max_rounds,
        stop_when=all_colored,
        raise_on_timeout=False,
    )
    coloring = network.node_colors()
    return ColoringResult(
        algorithm=f"trial(eps={eps})",
        coloring=coloring,
        palette_size=palette,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
        params={"eps": eps, "avoid_known": avoid_known, "seed": seed},
    )
