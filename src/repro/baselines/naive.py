"""The naive approach the paper argues against (Sec. 1).

"In general, simulating a single CONGEST round on G² requires Ω(Δ)
CONGEST rounds on G."  This module implements exactly that strawman:
Johansson's random (deg+1)-coloring run on G², with each G² round
simulated by explicitly relaying every neighbor's state across every
edge.  Relays are packed into O(log n)-bit messages as tightly as the
bandwidth policy allows, so the per-phase cost is
``ceil(Δ / items_per_message)`` — the Θ(Δ) information bottleneck
appears as soon as Δ exceeds the per-message packing factor
(experiment E14 runs with a tight budget to expose it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx

from repro.congest.network import Network, UniformInputs
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.pipelining import items_per_message
from repro.congest.policy import BandwidthPolicy
from repro.core.trying import all_colored, coloring_from_programs
from repro.results import ColoringResult

_TAG_STATUS = "S"
_TAG_RELAY = "R"
_TAG_RESULT = "F"

#: Status codes multiplexed with the color value.
_LIVE = 0
_COLORED = 1


class NaiveProgram(NodeProgram):
    """One node of the naive G²-simulation coloring.

    Phase layout (globally scheduled, all nodes in lockstep):

    1. one round: broadcast own status ``(S, kind, value)`` where kind
       is live-with-proposal or colored-with-color;
    2. ``relay_rounds`` rounds: forward every neighbor's status to
       every other neighbor, packed;
    3. one round: broadcast whether the proposal succeeded, so
       neighbors update their color tables.
    """

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.color: Optional[int] = ctx.data.get("color")
        self.palette: int = ctx.data["palette"]
        self.relay_rounds: int = ctx.data["relay_rounds"]
        self.known_used: Set[int] = set()
        self.nbr_colors: Dict[int, int] = {}

    def _proposal(self) -> Optional[int]:
        if self.color is not None:
            return None
        blocked = self.known_used | set(self.nbr_colors.values())
        free = [c for c in range(self.palette) if c not in blocked]
        if not free:
            # Cannot happen with palette > d2-degree, but stay safe.
            return self.ctx.rng.randrange(self.palette)
        return self.ctx.rng.choice(free)

    def run(self):
        neighbors = self.ctx.neighbors
        while True:
            # --- 1. status broadcast --------------------------------
            proposal = self._proposal()
            if self.color is not None:
                status = (_TAG_STATUS, _COLORED, self.color)
            else:
                status = (_TAG_STATUS, _LIVE, proposal)
            inbox = yield {v: status for v in neighbors}

            statuses: Dict[int, tuple] = {}
            for sender, payload in inbox.items():
                if payload[0] == _TAG_STATUS:
                    statuses[sender] = (payload[1], payload[2])

            # --- 2. relay every neighbor's status to the others -----
            # For receiver v we forward the statuses of all neighbors
            # except v itself (v knows its own state; echoing it back
            # would create false conflicts).
            plans: Dict[int, List[tuple]] = {}
            for receiver in neighbors:
                items = [
                    (kind, value)
                    for sender, (kind, value) in statuses.items()
                    if sender != receiver
                ]
                plans[receiver] = items
            per_message = self.ctx.data["per_message"]
            seen_proposals: List[int] = []
            seen_colors: List[int] = []
            for chunk_index in range(self.relay_rounds):
                outbox = {}
                lo = chunk_index * per_message
                hi = lo + per_message
                for receiver, items in plans.items():
                    chunk = items[lo:hi]
                    if chunk:
                        flat = []
                        for kind, value in chunk:
                            flat.extend((kind, value))
                        outbox[receiver] = (_TAG_RELAY,) + tuple(flat)
                inbox = yield outbox
                for payload in inbox.values():
                    if payload[0] != _TAG_RELAY:
                        continue
                    flat = payload[1:]
                    for index in range(0, len(flat), 2):
                        kind, value = flat[index], flat[index + 1]
                        if kind == _COLORED:
                            seen_colors.append(value)
                        else:
                            seen_proposals.append(value)

            # Direct neighbors' statuses count as distance-1 info.
            for kind, value in statuses.values():
                if kind == _COLORED:
                    seen_colors.append(value)
                else:
                    seen_proposals.append(value)

            # --- 3. resolve and announce ----------------------------
            adopted = False
            if self.color is None and proposal is not None:
                conflict = (
                    proposal in seen_colors
                    or proposal in seen_proposals
                )
                if not conflict:
                    self.color = proposal
                    adopted = True
            self.known_used.update(seen_colors)
            inbox = yield {
                v: (_TAG_RESULT, adopted, self.color if adopted else 0)
                for v in neighbors
            }
            for sender, payload in inbox.items():
                if payload[0] == _TAG_RESULT and payload[1]:
                    self.nbr_colors[sender] = payload[2]


def naive_congest_d2_color(
    graph: nx.Graph,
    seed: int = 0,
    delta: Optional[int] = None,
    policy: Optional[BandwidthPolicy] = None,
    max_rounds: int = 500_000,
) -> ColoringResult:
    """Run the naive G²-simulation coloring with palette Δ²+1."""
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    policy = policy or BandwidthPolicy()
    palette = delta * delta + 1
    n = graph.number_of_nodes()
    budget = policy.budget_bits(n)
    # Each relayed item is (kind, color): ~2 + color bits, packed.
    color_bits = max(1, (palette - 1).bit_length()) + 4
    per_message = items_per_message(color_bits, budget)
    relay_rounds = max(1, -(-delta // per_message))
    inputs = UniformInputs(
        graph.nodes,
        {
            "palette": palette,
            "relay_rounds": relay_rounds,
            "per_message": per_message,
        },
    )
    network = Network(
        graph,
        NaiveProgram,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run = network.run(
        max_rounds=max_rounds,
        stop_when=all_colored,
        raise_on_timeout=False,
    )
    coloring = coloring_from_programs(network.programs)
    return ColoringResult(
        algorithm="naive-g2-simulation",
        coloring=coloring,
        palette_size=palette,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
        params={
            "seed": seed,
            "relay_rounds_per_phase": relay_rounds,
            "per_message": per_message,
        },
    )
