"""Centralized greedy d2-colorings.

The sequential greedy argument is what makes Δ²+1 the natural palette
size (Sec. 1): every node has at most Δ² d2-neighbors, so first-fit
never needs color Δ²+1 or higher.  These oracles provide ground truth
color counts for experiment E18 and sanity baselines for tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import networkx as nx

from repro.graphs.square import d2_neighborhoods
from repro.results import ColoringResult


def _first_fit(used: set) -> int:
    color = 0
    while color in used:
        color += 1
    return color


def greedy_d2_coloring(
    graph: nx.Graph,
    order: Optional[Iterable[int]] = None,
) -> ColoringResult:
    """First-fit d2-coloring in ``order`` (default: by node ID)."""
    neighborhoods = d2_neighborhoods(graph)
    delta = max((d for _, d in graph.degree), default=0)
    coloring: Dict[int, int] = {}
    ordering = list(order) if order is not None else sorted(graph.nodes)
    for node in ordering:
        used = {
            coloring[u] for u in neighborhoods[node] if u in coloring
        }
        coloring[node] = _first_fit(used)
    return ColoringResult(
        algorithm="greedy-centralized",
        coloring=coloring,
        palette_size=delta * delta + 1,
        rounds=0,
        params={"centralized": True},
    )


def dsatur_d2_coloring(graph: nx.Graph) -> ColoringResult:
    """DSATUR on G²: always color the node whose d2-neighborhood uses
    the most distinct colors (ties by d2-degree, then ID)."""
    neighborhoods = d2_neighborhoods(graph)
    delta = max((d for _, d in graph.degree), default=0)
    coloring: Dict[int, int] = {}
    saturation: Dict[int, set] = {v: set() for v in graph.nodes}
    uncolored = set(graph.nodes)
    while uncolored:
        node = max(
            uncolored,
            key=lambda v: (
                len(saturation[v]),
                len(neighborhoods[v]),
                -v,
            ),
        )
        color = _first_fit(saturation[node])
        coloring[node] = color
        uncolored.discard(node)
        for u in neighborhoods[node]:
            saturation[u].add(color)
    return ColoringResult(
        algorithm="dsatur-centralized",
        coloring=coloring,
        palette_size=delta * delta + 1,
        rounds=0,
        params={"centralized": True},
    )
