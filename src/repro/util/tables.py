"""Plain-text tables for the experiment harness."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render rows as a boxed, aligned plain-text table."""
    text_rows: List[List[str]] = [
        [format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [
            cell.rjust(widths[index])
            for index, cell in enumerate(cells)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [separator, line(list(headers)), separator]
    for row in text_rows:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)
