"""Math utilities: primes, finite fields, k-wise hashing, fitting."""

from repro.util.primes import bertrand_prime, is_prime, next_prime_at_least
from repro.util.fq import Poly1, degree_le_polynomials
from repro.util.gf2 import GF2Field
from repro.util.kwise import KWiseCoins

__all__ = [
    "GF2Field",
    "KWiseCoins",
    "Poly1",
    "bertrand_prime",
    "degree_le_polynomials",
    "is_prime",
    "next_prime_at_least",
]
