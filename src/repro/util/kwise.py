"""k-wise independent hash families (Definition A.3, Theorem A.6).

A uniformly random polynomial of degree < k over GF(2^a), evaluated at
distinct points, yields k-wise independent uniform field elements; one
fixed output bit is then a k-wise independent fair coin.  A family
member is described by k·a random bits — the "short seed" that the
derandomized splitting algorithm fixes bit by bit (Appendix A).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.util.gf2 import GF2Field


class KWiseCoins:
    """k-wise independent fair coins for inputs in [0, 2^a).

    ``seed_bits`` is the raw seed: a list of k·a bits, interpreted as
    the k coefficients (a bits each, low to high) of a polynomial over
    GF(2^a).  ``coin(x)`` is the lowest bit of the evaluation at the
    field element derived from ``x``.
    """

    def __init__(self, k: int, a: int, seed_bits: Sequence[int]):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.field = GF2Field(a)
        self.k = k
        self.a = a
        expected = k * a
        if len(seed_bits) != expected:
            raise ValueError(
                f"need {expected} seed bits for k={k}, a={a}; "
                f"got {len(seed_bits)}"
            )
        if any(bit not in (0, 1) for bit in seed_bits):
            raise ValueError("seed bits must be 0/1")
        self.seed_bits = list(seed_bits)
        self.coeffs = [
            self._bits_to_element(seed_bits[i * a : (i + 1) * a])
            for i in range(k)
        ]

    @staticmethod
    def _bits_to_element(bits: Sequence[int]) -> int:
        value = 0
        for index, bit in enumerate(bits):
            value |= bit << index
        return value

    @staticmethod
    def seed_length(k: int, a: int) -> int:
        return k * a

    @staticmethod
    def random_seed(k: int, a: int, rng: random.Random) -> List[int]:
        return [rng.randrange(2) for _ in range(k * a)]

    def element(self, x: int) -> int:
        """The k-wise independent field element at input ``x``."""
        point = x % self.field.order
        return self.field.poly_eval(self.coeffs, point)

    def coin(self, x: int) -> int:
        """A k-wise independent fair coin for input ``x``.

        Inputs must be distinct modulo 2^a for independence to hold;
        callers map node IDs into [0, 2^a) injectively by choosing
        a >= ceil(log2 n).
        """
        return self.element(x) & 1
