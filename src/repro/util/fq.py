"""Polynomials over prime fields F_q.

Two users in the paper:

- Sec. B.2 (locally-iterative coloring): each input color maps to a
  degree-<=1 polynomial a + b·x over F_q; the color sequence of a node
  is the evaluation table of its polynomial.
- Thm B.1 (Linial's algorithm): colors map to degree-<=d polynomials;
  the cover-free set system is {(x, p(x)) : x in F_q}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.util.primes import is_prime


@dataclass(frozen=True)
class Poly1:
    """Degree-<=1 polynomial a + b·x over F_q (Sec. B.2 footnote 5:
    a = floor(color / q), b = color mod q)."""

    a: int
    b: int
    q: int

    @staticmethod
    def from_color(color: int, q: int) -> "Poly1":
        if color < 0 or color >= q * q:
            raise ValueError(f"color {color} not in [0, q^2)")
        return Poly1(color // q, color % q, q)

    def __call__(self, x: int) -> int:
        return (self.a + self.b * x) % self.q

    def is_constant(self) -> bool:
        return self.b == 0

    def agreements(self, other: "Poly1") -> int:
        """Number of x in F_q where self(x) == other(x).

        Distinct degree-<=1 polynomials over a field agree on at most
        one point (Lemma B.3's argument); equal ones agree on q.
        """
        if self.q != other.q:
            raise ValueError("mixed fields")
        if self.a == other.a and self.b == other.b:
            return self.q
        if self.b == other.b:
            return 0
        return 1


def poly_eval(coeffs: Tuple[int, ...], x: int, q: int) -> int:
    """Evaluate a polynomial given coefficients (low to high) at x."""
    acc = 0
    power = 1
    for c in coeffs:
        acc = (acc + c * power) % q
        power = (power * x) % q
    return acc


def degree_le_polynomials(color: int, degree: int, q: int) -> Tuple[int, ...]:
    """Map a color index to the ``color``-th degree-<=``degree``
    polynomial over F_q (coefficients = base-q digits).

    Injective for color < q^(degree+1); used by Linial's set system.
    """
    if not is_prime(q):
        raise ValueError(f"q={q} must be prime")
    bound = q ** (degree + 1)
    if color < 0 or color >= bound:
        raise ValueError(f"color {color} not in [0, q^{degree + 1})")
    coeffs: List[int] = []
    value = color
    for _ in range(degree + 1):
        coeffs.append(value % q)
        value //= q
    return tuple(coeffs)


def linial_set(color: int, degree: int, q: int) -> frozenset:
    """The Linial cover-free set of a color: {(x, p(x))} as ints x*q+y.

    Two distinct degree-<=d polynomials collide on at most d points,
    so a set is never covered by the union of (q-1)/d - ... others;
    choosing q > d·D makes the family D-cover-free.
    """
    coeffs = degree_le_polynomials(color, degree, q)
    return frozenset(
        x * q + poly_eval(coeffs, x, q) for x in range(q)
    )
