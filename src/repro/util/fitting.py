"""Scaling-shape checks: fit measured rounds against candidate forms.

The paper's claims are asymptotic (O(log Δ log n), O(Δ² + log* n),
polylog n).  A reproduction cannot verify constants, but it *can*
check which functional form explains the measurements best.  We fit
``rounds ≈ a·f(x) + b`` by least squares for each candidate ``f`` and
compare residuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class Fit:
    """One least-squares fit rounds ≈ slope·feature + intercept."""

    name: str
    slope: float
    intercept: float
    r_squared: float

    def predict(self, feature_value: float) -> float:
        return self.slope * feature_value + self.intercept


def fit_linear(
    features: Sequence[float], values: Sequence[float], name: str
) -> Fit:
    """Least-squares fit of ``values`` against a single feature."""
    x = np.asarray(features, dtype=float)
    y = np.asarray(values, dtype=float)
    design = np.column_stack([x, np.ones_like(x)])
    coeffs, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    predictions = slope * x + intercept
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return Fit(name, slope, intercept, r_squared)


def compare_models(
    xs: Sequence[Tuple[float, ...]],
    rounds: Sequence[float],
    models: Dict[str, Callable[..., float]],
) -> List[Fit]:
    """Fit every model and return fits sorted best-first.

    ``xs`` holds the raw sweep parameters (e.g. (n, delta) tuples);
    each model maps them to the candidate feature, e.g.
    ``lambda n, d: math.log(n) * math.log(d)``.
    """
    fits = []
    for name, model in models.items():
        features = [model(*x) for x in xs]
        fits.append(fit_linear(features, rounds, name))
    fits.sort(key=lambda fit: fit.r_squared, reverse=True)
    return fits


def log_star(n: float) -> int:
    """Iterated logarithm (base 2): log* n."""
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


STANDARD_MODELS: Dict[str, Callable[[float, float], float]] = {
    "log(n)*log(delta)": lambda n, d: math.log(n) * math.log(max(d, 2)),
    "log(n)": lambda n, d: math.log(n),
    "log^2(n)": lambda n, d: math.log(n) ** 2,
    "log^3(n)": lambda n, d: math.log(n) ** 3,
    "delta^2": lambda n, d: d * d,
    "delta": lambda n, d: d,
    "n": lambda n, d: n,
    "sqrt(n)": lambda n, d: math.sqrt(n),
}
