"""GF(2^a) arithmetic for k-wise independent fair coins (Thm A.6).

Elements are ints in [0, 2^a) interpreted as polynomials over GF(2);
multiplication is carry-less multiplication reduced modulo a fixed
irreducible polynomial of degree a.  A uniformly random element has
uniformly random bits, so taking one bit of a k-wise independent
field element yields a k-wise independent fair coin — exactly what
the derandomized splitting (Appendix A) needs.
"""

from __future__ import annotations

from typing import Dict

# Irreducible polynomials over GF(2), degree -> polynomial with the
# leading term included (bit a set).  Standard table entries.
_IRREDUCIBLE: Dict[int, int] = {
    1: 0b11,                  # x + 1
    2: 0b111,                 # x^2 + x + 1
    3: 0b1011,                # x^3 + x + 1
    4: 0b10011,               # x^4 + x + 1
    5: 0b100101,              # x^5 + x^2 + 1
    6: 0b1000011,             # x^6 + x + 1
    7: 0b10000011,            # x^7 + x + 1
    8: 0b100011011,           # x^8 + x^4 + x^3 + x + 1 (AES)
    9: 0b1000010001,          # x^9 + x^4 + 1
    10: 0b10000001001,        # x^10 + x^3 + 1
    11: 0b100000000101,       # x^11 + x^2 + 1
    12: 0b1000001010011,      # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,     # x^13 + x^4 + x^3 + x + 1
    14: 0b100000101000011,    # x^14 + x^8 + x^6 + x + 1
    15: 0b1000000000000011,   # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
    17: 0b100000000000001001,  # x^17 + x^3 + 1
    18: 0b1000000000010000001,  # x^18 + x^7 + 1
    19: 0b10000000000000100111,  # x^19 + x^5 + x^2 + x + 1
    20: 0b100000000000000001001,  # x^20 + x^3 + 1
}


class GF2Field:
    """The finite field GF(2^a)."""

    def __init__(self, a: int):
        if a not in _IRREDUCIBLE:
            raise ValueError(
                f"GF(2^{a}) not supported; a must be in "
                f"[1, {max(_IRREDUCIBLE)}]"
            )
        self.a = a
        self.order = 1 << a
        self.modulus = _IRREDUCIBLE[a]

    def add(self, x: int, y: int) -> int:
        """Addition = XOR."""
        return x ^ y

    def mul(self, x: int, y: int) -> int:
        """Carry-less multiplication reduced mod the irreducible."""
        self._check(x)
        self._check(y)
        product = 0
        while y:
            if y & 1:
                product ^= x
            y >>= 1
            x <<= 1
            if x & self.order:
                x ^= self.modulus
        return product

    def pow(self, x: int, e: int) -> int:
        self._check(x)
        result = 1
        base = x
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def inv(self, x: int) -> int:
        """Multiplicative inverse via x^(2^a - 2)."""
        if x == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^a)")
        return self.pow(x, self.order - 2)

    def poly_eval(self, coeffs, x: int) -> int:
        """Evaluate a polynomial (coefficients low to high) at x."""
        acc = 0
        power = 1
        for c in coeffs:
            acc ^= self.mul(c, power)
            power = self.mul(power, x)
        return acc

    def _check(self, x: int) -> None:
        if x < 0 or x >= self.order:
            raise ValueError(f"{x} not an element of GF(2^{self.a})")
