"""Primality and prime search.

Sec. B.2 needs a common prime q with 4Δ² < q < 8Δ² (Bertrand's
postulate guarantees one); nodes derive it locally from Δ, so the
search must be deterministic.
"""

from __future__ import annotations

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

# Deterministic Miller-Rabin witness sets for 64-bit integers.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin, exact for n < 3.3 * 10^24."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime_at_least(n: int) -> int:
    """Smallest prime >= n."""
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def bertrand_prime(delta: int) -> int:
    """The common prime of Sec. B.2: smallest prime q with
    4Δ² < q < 8Δ² (exists by Bertrand's postulate for Δ >= 1)."""
    if delta < 1:
        raise ValueError("delta must be >= 1")
    lower = 4 * delta * delta
    upper = 8 * delta * delta
    q = next_prime_at_least(lower + 1)
    if q >= upper:
        # Only possible for tiny delta where the open interval is
        # narrow; Bertrand guarantees a prime in (m, 2m) for m >= 1,
        # with 4=lower giving q=5 < 8, so this cannot trigger for
        # delta >= 1.  Guard anyway.
        raise ArithmeticError(
            f"no prime in (4*{delta}^2, 8*{delta}^2)"
        )
    return q
