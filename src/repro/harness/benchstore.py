"""Append-only per-commit bench result store + trajectory gate.

``benchmarks/results/BENCH_<name>.json`` used to be overwritten in
place on every bench run, so the repository only ever recorded the
latest numbers and a perf regression could not be detected from the
file history alone.  This module grows each file into an append-only
*trajectory*::

    {
      "schema": 2,
      "bench": "e22_sharded_sweep",
      "entries": [
        {"commit": "04e0f9b", "timestamp": "2026-08-08T...Z",
         "metrics": {"cells": 12, "sharded_3_wall_seconds": 0.009}},
        ...
      ]
    }

Entries are appended per run; re-running on the *same* commit
replaces that commit's last entry (so local iteration doesn't grow
the file), and the list is capped at ``max_entries`` most-recent
records.  Legacy overwrite-style files (a bare metrics object) are
migrated on first append as a ``"commit": "pre-schema"`` entry, so
no trajectory starts empty.

:func:`check_trajectory` is the regression gate: it compares every
``*seconds*`` metric of the newest entry against the previous one
and reports ratios above ``max_ratio`` (default 2×).  CI runs it via
``python -m repro.harness.benchstore check benchmarks/results``
right after the bench smoke, so the freshly appended entry is gated
against the last committed one.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from typing import Any, Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 2

#: Wall-clock readings below this are timer noise, not signal — the
#: gate skips them rather than flagging a 0.4ms -> 1ms "regression".
MIN_GATED_SECONDS = 0.005

#: RSS readings below this are interpreter baseline wobble (allocator
#: arenas, import order), not a workload regression — the RSS gate
#: skips them the same way the seconds gate skips timer noise.
MIN_GATED_RSS_MB = 64.0


def current_commit(cwd: Optional[str] = None) -> str:
    """The short git head, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    head = out.stdout.strip()
    return head if out.returncode == 0 and head else "unknown"


def current_timestamp() -> str:
    from datetime import datetime, timezone

    return (
        datetime.now(timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z")
    )


def load_payload(path: pathlib.Path, name: str) -> Dict[str, Any]:
    """The trajectory payload at ``path`` (migrating legacy
    overwrite-style files, tolerating missing/torn ones)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {"schema": SCHEMA_VERSION, "bench": name, "entries": []}
    if (
        isinstance(data, dict)
        and isinstance(data.get("entries"), list)
        and data.get("schema") == SCHEMA_VERSION
    ):
        return data
    # Legacy schema: the file *is* the metrics object.  Keep it as
    # the trajectory's first entry rather than losing the data point.
    entries = []
    if isinstance(data, dict) and data:
        entries.append(
            {
                "commit": "pre-schema",
                "timestamp": None,
                "metrics": data,
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "entries": entries,
    }


def append_entry(
    results_dir: pathlib.Path,
    name: str,
    metrics: Dict[str, Any],
    commit: Optional[str] = None,
    timestamp: Optional[str] = None,
    max_entries: int = 100,
    obs: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Append one ``{commit, timestamp, metrics}`` record to
    ``<results_dir>/BENCH_<name>.json`` (atomically: temp file +
    ``os.replace``).  A repeat run on the same commit replaces that
    commit's latest entry instead of stacking duplicates.

    ``obs``, when given, is a structured observability payload (a
    :meth:`repro.obs.MetricsRegistry.snapshot` or similar) stored
    under the entry's ``"obs"`` key — carried alongside, never gated:
    the regression gates only read ``"metrics"``."""
    import os

    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    payload = load_payload(path, name)
    entry: Dict[str, Any] = {
        "commit": commit or current_commit(cwd=str(results_dir)),
        "timestamp": timestamp or current_timestamp(),
        "metrics": metrics,
    }
    if obs is not None:
        entry["obs"] = obs
    entries: List[Dict] = payload["entries"]
    if entries and entries[-1].get("commit") == entry["commit"]:
        entries[-1] = entry
    else:
        entries.append(entry)
    payload["entries"] = entries[-max_entries:]
    payload["bench"] = name
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# the trajectory regression gate


def _flatten_seconds(
    metrics: Any, prefix: str = ""
) -> Dict[str, float]:
    """Dotted-key map of every numeric ``*seconds*`` metric, however
    deeply nested."""
    out: Dict[str, float] = {}
    if isinstance(metrics, dict):
        for key, value in metrics.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                out.update(_flatten_seconds(value, dotted))
            elif (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and "seconds" in str(key)
            ):
                out[dotted] = float(value)
    return out


def _flatten_rss(metrics: Any, prefix: str = "") -> Dict[str, float]:
    """Dotted-key map of every numeric ``*rss_mb*`` metric, however
    deeply nested (``peak_rss_mb`` and friends)."""
    out: Dict[str, float] = {}
    if isinstance(metrics, dict):
        for key, value in metrics.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                out.update(_flatten_rss(value, dotted))
            elif (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and "rss_mb" in str(key)
            ):
                out[dotted] = float(value)
    return out


def _gate(
    previous: Dict[str, float],
    latest: Dict[str, float],
    max_ratio: float,
    floor: float,
) -> List[Tuple[str, float, float, float]]:
    """The shared ratio gate: flag keys whose latest reading exceeds
    ``max_ratio`` times the previous one, skipping readings where both
    sides sit under the noise ``floor``."""
    violations = []
    for key, before in previous.items():
        after = latest.get(key)
        if after is None:
            continue
        if before < floor and after < floor:
            continue
        baseline = max(before, floor)
        ratio = after / baseline
        if ratio > max_ratio:
            violations.append((key, before, after, ratio))
    return violations


def check_trajectory(
    payload: Dict[str, Any],
    max_ratio: float = 2.0,
    min_seconds: float = MIN_GATED_SECONDS,
    min_mb: float = MIN_GATED_RSS_MB,
) -> List[Tuple[str, float, float, float]]:
    """Violations ``(metric, previous, latest, ratio)`` where the
    newest entry is more than ``max_ratio`` times worse than the
    previous recorded entry — for every ``*seconds*`` metric (wall
    time) and every ``*rss_mb*`` metric (peak memory).  Trajectories
    with fewer than two entries, metrics missing from either side,
    and readings below the per-kind noise floor (``min_seconds`` /
    ``min_mb``) are all ungated."""
    entries = payload.get("entries", [])
    if len(entries) < 2:
        return []
    before_metrics = entries[-2].get("metrics", {})
    after_metrics = entries[-1].get("metrics", {})
    violations = _gate(
        _flatten_seconds(before_metrics),
        _flatten_seconds(after_metrics),
        max_ratio,
        min_seconds,
    )
    violations += _gate(
        _flatten_rss(before_metrics),
        _flatten_rss(after_metrics),
        max_ratio,
        min_mb,
    )
    return violations


def check_results_dir(
    results_dir: pathlib.Path,
    max_ratio: float = 2.0,
    min_seconds: float = MIN_GATED_SECONDS,
    min_mb: float = MIN_GATED_RSS_MB,
) -> Dict[str, List[Tuple[str, float, float, float]]]:
    """Gate every ``BENCH_*.json`` under ``results_dir``; returns
    ``{bench name: violations}`` for the benches that regressed."""
    results_dir = pathlib.Path(results_dir)
    failures = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        violations = check_trajectory(
            load_payload(path, name),
            max_ratio=max_ratio,
            min_seconds=min_seconds,
            min_mb=min_mb,
        )
        if violations:
            failures[name] = violations
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.benchstore",
        description=(
            "Append-only bench trajectories: show them, or gate the "
            "newest entry against the previous one."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check = sub.add_parser(
        "check", help="fail (exit 1) on >max-ratio slowdowns"
    )
    check.add_argument("results_dir")
    check.add_argument("--max-ratio", type=float, default=2.0)
    check.add_argument(
        "--min-seconds", type=float, default=MIN_GATED_SECONDS
    )
    check.add_argument(
        "--min-mb",
        type=float,
        default=MIN_GATED_RSS_MB,
        help="RSS noise floor in MiB for the rss_mb gate",
    )
    show = sub.add_parser("show", help="print each trajectory")
    show.add_argument("results_dir")
    args = parser.parse_args(argv)

    results_dir = pathlib.Path(args.results_dir)
    if args.command == "show":
        for path in sorted(results_dir.glob("BENCH_*.json")):
            name = path.stem[len("BENCH_"):]
            payload = load_payload(path, name)
            print(f"{name}: {len(payload['entries'])} entries")
            for entry in payload["entries"]:
                seconds = _flatten_seconds(entry.get("metrics", {}))
                brief = ", ".join(
                    f"{k}={v:.4f}" for k, v in sorted(seconds.items())
                )
                print(
                    f"  {entry.get('commit')} "
                    f"{entry.get('timestamp')}: {brief}"
                )
        return 0

    failures = check_results_dir(
        results_dir,
        max_ratio=args.max_ratio,
        min_seconds=args.min_seconds,
        min_mb=args.min_mb,
    )
    for name, violations in failures.items():
        for key, before, after, ratio in violations:
            unit = "MB" if "rss_mb" in key else "s"
            print(
                f"REGRESSION {name}.{key}: {before:.4f}{unit} -> "
                f"{after:.4f}{unit} ({ratio:.2f}x > {args.max_ratio}x)"
            )
    if failures:
        return 1
    print(
        f"bench trajectories OK (max allowed slowdown "
        f"{args.max_ratio}x)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
