"""Experiment implementations E1..E18 (DESIGN.md §2).

Every function runs a sweep, fills an
:class:`~repro.harness.report.ExperimentTable`, and asserts nothing
itself — the benches assert the hard invariants from the returned
``checks``.  Sweep sizes default to bench-friendly values (seconds,
not minutes); EXPERIMENTS.md records a larger run.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro import registry
from repro.baselines.luby import (
    check_distance_k_mis,
    luby_distance_k_mis,
)
from repro.baselines.naive import naive_congest_d2_color
from repro.baselines.trial import trial_d2_color
from repro.congest.policy import BandwidthPolicy
from repro.core.constants import Constants
from repro.core.d2color import basic_d2_color, improved_d2_color
from repro.det.det_d2color import deterministic_d2_color
from repro.det.eps_coloring import eps_coloring_g
from repro.det.eps_d2coloring import eps_d2_color
from repro.det.linial import linial_d2_coloring
from repro.det.locally_iterative import locally_iterative_d2_coloring
from repro.det.recursive_split import recursive_split
from repro.det.splitting import (
    derandomized_splitting,
    random_splitting,
)
from repro.graphs.generators import (
    clique_clusters,
    gnp,
    random_regular,
    unit_disk,
)
from repro.graphs.instances import (
    hoffman_singleton,
    moore_graph,
    petersen,
    projective_plane_incidence,
)
from repro.graphs.properties import slack, sparsity
from repro.graphs.square import d2_neighborhoods, max_d2_degree
from repro.harness.report import ExperimentTable
from repro.util.fitting import compare_models, log_star
from repro.verify.checker import check_coloring, check_d2_coloring

_SHAPE_MODELS = {
    "log(n)*log(delta)": lambda n, d: math.log(n)
    * math.log(max(d, 2)),
    "log(n)": lambda n, d: math.log(n),
    "delta^2": lambda n, d: float(d * d),
    "n": lambda n, d: float(n),
}


def _check_valid(table, graph, result, label):
    report = check_d2_coloring(
        graph, result.coloring, result.palette_size
    )
    table.add_check(f"{label}: valid d2-coloring", report.valid)
    table.add_check(
        f"{label}: palette respected",
        result.colors_used <= result.palette_size,
    )


# ----------------------------------------------------------------------


def e01_improved_randomized(
    ns: Sequence[int] = (32, 128, 512),
    deltas: Sequence[int] = (6, 8, 12),
    fixed_delta: int = 8,
    fixed_n: int = 96,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentTable:
    """Theorem 1.1: Δ²+1 colors in O(log Δ · log n) rounds."""
    table = ExperimentTable(
        "E1",
        "Improved-d2-Color rounds scaling",
        "Thm 1.1: Δ²+1 colors, O(log Δ · log n) rounds w.h.p.",
        ["graph", "n", "Δ", "rounds(mean)", "colors", "palette"],
    )
    seed = seeds[0]
    points: List[Tuple[float, float]] = []
    rounds_list: List[float] = []
    for n in ns:
        per_seed = []
        last = None
        for s in seeds:
            graph = random_regular(fixed_delta, n, seed=s)
            last = improved_d2_color(
                graph, seed=s, allow_deterministic_fallback=False
            )
            _check_valid(
                table, graph, last, f"rr({fixed_delta},{n},s{s})"
            )
            per_seed.append(last.rounds)
        mean_rounds = statistics.mean(per_seed)
        table.add_row(
            "random-regular",
            n,
            fixed_delta,
            round(mean_rounds, 1),
            last.colors_used,
            last.palette_size,
        )
        points.append((n, fixed_delta))
        rounds_list.append(mean_rounds)
    for delta in deltas:
        per_seed = []
        last = None
        for s in seeds:
            graph = random_regular(delta, fixed_n, seed=s)
            last = improved_d2_color(
                graph, seed=s, allow_deterministic_fallback=False
            )
            _check_valid(
                table, graph, last, f"rr({delta},{fixed_n},s{s})"
            )
            per_seed.append(last.rounds)
        mean_rounds = statistics.mean(per_seed)
        table.add_row(
            "random-regular",
            fixed_n,
            delta,
            round(mean_rounds, 1),
            last.colors_used,
            last.palette_size,
        )
        points.append((fixed_n, delta))
        rounds_list.append(mean_rounds)
    # Hard instances where the palette bound is tight.
    for name, graph in (
        ("petersen", petersen()),
        ("hoffman-singleton", hoffman_singleton()),
    ):
        delta = max(d for _, d in graph.degree)
        result = improved_d2_color(
            graph, seed=seed, allow_deterministic_fallback=False
        )
        _check_valid(table, graph, result, name)
        table.add_check(
            f"{name}: rainbow forced (Δ²+1 colors used)",
            result.colors_used == delta * delta + 1,
        )
        table.add_row(
            name,
            graph.number_of_nodes(),
            delta,
            result.rounds,
            result.colors_used,
            result.palette_size,
        )
    table.fits = compare_models(points, rounds_list, _SHAPE_MODELS)
    table.add_check(
        "shape: sublinear in n (log-form beats linear)",
        _model_rank(table.fits, "n")
        > min(
            _model_rank(table.fits, "log(n)"),
            _model_rank(table.fits, "log(n)*log(delta)"),
        ),
    )
    return table


def _model_rank(fits, name: str) -> int:
    for index, fit in enumerate(fits):
        if fit.name == name:
            return index
    return len(fits)


def e02_basic_randomized(
    ns: Sequence[int] = (16, 64, 256),
    delta: int = 6,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentTable:
    """Corollary 2.1: the basic pipeline in O(log³ n) rounds."""
    table = ExperimentTable(
        "E2",
        "Basic d2-Color rounds scaling",
        "Cor 2.1: Δ²+1 colors in O(log³ n) rounds w.h.p.",
        ["n", "Δ", "rounds(mean)", "colors", "palette"],
    )
    points = []
    rounds_list = []
    for n in ns:
        per_seed = []
        last = None
        for s in seeds:
            graph = random_regular(delta, n, seed=s)
            last = basic_d2_color(
                graph, seed=s, allow_deterministic_fallback=False
            )
            _check_valid(table, graph, last, f"n={n},s{s}")
            per_seed.append(last.rounds)
        mean_rounds = statistics.mean(per_seed)
        table.add_row(
            n,
            delta,
            round(mean_rounds, 1),
            last.colors_used,
            last.palette_size,
        )
        points.append((n, delta))
        rounds_list.append(mean_rounds)
    models = {
        "log^3(n)": lambda n, d: math.log(n) ** 3,
        "log(n)": lambda n, d: math.log(n),
        "n": lambda n, d: float(n),
    }
    table.fits = compare_models(points, rounds_list, models)
    table.add_check(
        "shape: sublinear in n",
        _model_rank(table.fits, "n") > 0,
    )
    return table


def e03_deterministic(
    deltas: Sequence[int] = (3, 6, 9, 12),
    fixed_n: int = 60,
    ns: Sequence[int] = (30, 60, 120, 240),
    fixed_delta: int = 4,
    seed: int = 3,
) -> ExperimentTable:
    """Theorem 1.2: deterministic Δ²+1 in O(Δ² + log* n) rounds."""
    table = ExperimentTable(
        "E3",
        "Deterministic d2-coloring rounds scaling",
        "Thm 1.2: Δ²+1 colors in O(Δ² + log* n) rounds",
        ["sweep", "n", "Δ", "rounds", "colors", "log*(n)"],
    )
    points = []
    rounds_list = []
    for delta in deltas:
        graph = random_regular(delta, fixed_n, seed=seed)
        result = deterministic_d2_color(graph, stop_early=False)
        _check_valid(table, graph, result, f"Δ={delta}")
        table.add_row(
            "Δ",
            graph.number_of_nodes(),
            delta,
            result.rounds,
            result.colors_used,
            log_star(graph.number_of_nodes()),
        )
        points.append((graph.number_of_nodes(), delta))
        rounds_list.append(result.rounds)
    n_rounds = []
    for n in ns:
        graph = random_regular(fixed_delta, n, seed=seed)
        result = deterministic_d2_color(graph, stop_early=False)
        _check_valid(table, graph, result, f"n={n}")
        table.add_row(
            "n",
            graph.number_of_nodes(),
            fixed_delta,
            result.rounds,
            result.colors_used,
            log_star(graph.number_of_nodes()),
        )
        n_rounds.append(result.rounds)
    models = {
        "delta^2": lambda n, d: float(d * d),
        "delta": lambda n, d: float(d),
        "n": lambda n, d: float(n),
    }
    table.fits = compare_models(points, rounds_list, models)
    table.add_check(
        "shape: Δ² fits the Δ-sweep best",
        table.fits[0].name == "delta^2",
    )
    spread = max(n_rounds) - min(n_rounds)
    table.add_check(
        "shape: near-constant in n at fixed Δ (log* n term)",
        spread <= 0.35 * max(n_rounds),
    )
    table.add_note(
        f"n-sweep rounds spread: {min(n_rounds)}..{max(n_rounds)} "
        "(the additive log* n term)"
    )
    return table


def e04_eps_deterministic(
    eps_values: Sequence[float] = (0.25, 0.5, 1.0),
    delta: int = 10,
    n: int = 60,
    seed: int = 4,
) -> ExperimentTable:
    """Theorem 1.3: deterministic (1+ε)Δ² colors."""
    table = ExperimentTable(
        "E4",
        "(1+ε)Δ² deterministic d2-coloring",
        "Thm 1.3: (1+ε)Δ² colors in polylog n rounds",
        ["ε", "levels", "palette", "(1+ε)Δ²", "rounds", "colors"],
    )
    graph = random_regular(delta, n, seed=seed)
    for eps in eps_values:
        result = eps_d2_color(graph, eps=eps)
        _check_valid(table, graph, result, f"ε={eps} (paper h)")
        table.add_row(
            eps,
            result.params["levels"],
            result.palette_size,
            result.params["color_budget"],
            result.rounds,
            result.colors_used,
        )
        table.add_check(
            f"ε={eps}: palette within (1+ε)Δ² budget",
            result.palette_size
            <= result.params["color_budget"] + 1,
        )
    # Forced h=1 regime (mechanism demo; palette may exceed budget
    # when the practical split is imperfect — reported, not hidden).
    forced = eps_d2_color(
        graph, eps=1.0, levels=1, split_lam=0.3, split_threshold=4
    )
    _check_valid(table, graph, forced, "forced h=1")
    table.add_row(
        "1.0(h=1)",
        forced.params["levels"],
        forced.palette_size,
        forced.params["color_budget"],
        forced.rounds,
        forced.colors_used,
    )
    return table


def e05_eps_g_coloring(
    eps_values: Sequence[float] = (0.25, 0.5, 1.0),
    delta: int = 10,
    n: int = 60,
    seed: int = 5,
) -> ExperimentTable:
    """Theorem 3.4: deterministic (1+ε)Δ coloring of G."""
    table = ExperimentTable(
        "E5",
        "(1+ε)Δ deterministic coloring of G",
        "Thm 3.4: (1+ε)Δ colors in O(log⁸ n + ε⁻² log³ n) rounds",
        ["ε", "levels", "palette", "(1+ε)Δ", "rounds", "colors"],
    )
    graph = random_regular(delta, n, seed=seed)
    for eps in eps_values:
        result = eps_coloring_g(graph, eps=eps)
        report = check_coloring(
            graph, result.coloring, result.palette_size
        )
        table.add_check(f"ε={eps}: valid coloring", report.valid)
        table.add_row(
            eps,
            result.params["levels"],
            result.palette_size,
            (1 + eps) * delta,
            result.rounds,
            result.colors_used,
        )
        table.add_check(
            f"ε={eps}: palette within (1+ε)Δ budget",
            result.palette_size <= (1 + eps) * delta + 1,
        )
    forced = eps_coloring_g(
        graph, eps=1.0, levels=2, split_lam=0.3, split_threshold=4
    )
    report = check_coloring(
        graph, forced.coloring, forced.palette_size
    )
    table.add_check("forced h=2: valid coloring", report.valid)
    table.add_row(
        "1.0(h=2)",
        forced.params["levels"],
        forced.palette_size,
        2 * delta,
        forced.rounds,
        forced.colors_used,
    )
    return table


def e06_splitting(
    delta: int = 16, n: int = 80, seed: int = 6
) -> ExperimentTable:
    """Theorem 3.2 / Lemma 3.3: splitting quality."""
    table = ExperimentTable(
        "E6",
        "Local refinement splitting quality",
        "Def 3.1 / Lemma 3.3: per-part degree ~ (1+λ)·Δ/2 per level",
        [
            "method",
            "levels",
            "parts",
            "max part degree",
            "ideal Δ/2^h",
            "violations",
            "charged rounds",
        ],
    )
    graph = random_regular(delta, n, seed=seed)
    for method in ("random", "derandomized"):
        for levels in (1, 2, 3):
            split = recursive_split(
                graph,
                eps=0.5,
                levels=levels,
                deterministic=(method == "derandomized"),
                lam=0.3,
                threshold=4,
                seed=seed,
            )
            violations = sum(
                len(r.violations) for r in split.level_results
            )
            table.add_row(
                method,
                levels,
                split.num_parts,
                split.max_part_degree,
                delta / 2**levels,
                violations,
                split.charged_rounds,
            )
            table.add_check(
                f"{method} h={levels}: degree reduced below Δ",
                split.max_part_degree < delta,
            )
    # Paper-threshold sanity: guaranteed-violation-free instance.
    hub = nx.complete_bipartite_graph(1, 300)
    hub = nx.convert_node_labels_to_integers(hub)
    result = derandomized_splitting(
        hub, {v: 0 for v in hub.nodes}, lam=0.7
    )
    table.add_check(
        "Chernoff-closed instance: derandomization violation-free",
        result.ok,
    )
    return table


def e07_similarity(
    c10_values: Sequence[float] = (4.0, 8.0, 16.0), seed: int = 7
) -> ExperimentTable:
    """Theorem 2.2: sampled similarity classification accuracy."""
    from repro.tests_support import build_similarity_states

    table = ExperimentTable(
        "E7",
        "Similarity graph sampling accuracy",
        "Thm 2.2: sampled H agrees with true common-neighborhood "
        "thresholds w.h.p.",
        ["instance", "c10", "true-similar rate", "false-pos rate"],
    )
    dense = hoffman_singleton()
    sparse = nx.path_graph(200)
    for c10 in c10_values:
        constants = Constants.practical().scaled(c10=c10)
        states, _cfg = build_similarity_states(
            dense, force_exact=False, constants=constants, seed=seed
        )
        hits = total = 0
        for v in list(dense.nodes)[:15]:
            for u in dense.neighbors(v):
                total += 1
                hits += states[v].is_h(v, u)
        tp_rate = hits / total
        states, _cfg = build_similarity_states(
            sparse, force_exact=False, constants=constants, seed=seed
        )
        false_pos = sum(
            1
            for v in sparse.nodes
            for u in sparse.neighbors(v)
            if states[v].is_h(v, u)
        )
        fp_rate = false_pos / (2 * sparse.number_of_edges())
        table.add_row("HS(dense)/path(sparse)", c10, tp_rate, fp_rate)
        if c10 >= 16:
            table.add_check(
                f"c10={c10}: dense pairs accepted", tp_rate > 0.8
            )
            table.add_check(
                f"c10={c10}: sparse pairs rejected", fp_rate < 0.05
            )
    return table


def e08_sampling(
    draws: int = 300, seed: int = 8
) -> ExperimentTable:
    """Lemma 2.3: XOR lottery uniformity."""
    from scipy import stats

    from repro.tests_support import run_lottery_draws

    table = ExperimentTable(
        "E8",
        "XOR lottery uniformity",
        "Lemma 2.3: R_u entries are independent uniform H-neighbors",
        ["node", "H-degree", "draws", "chi2 p-value"],
    )
    graph = petersen()
    outputs = run_lottery_draws(graph, count=draws, seed=seed)
    p_values = []
    for v in list(graph.nodes)[:5]:
        counts: Dict[int, int] = {}
        for drawn in outputs[v]["draws"]:
            counts[drawn[0]] = counts.get(drawn[0], 0) + 1
        observed = [
            counts.get(u, 0) for u in graph.nodes if u != v
        ]
        _chi, p_value = stats.chisquare(observed)
        p_values.append(p_value)
        table.add_row(v, len(observed), draws, p_value)
    table.add_check(
        "uniformity not rejected (min p > 1e-4)",
        min(p_values) > 1e-4,
    )
    return table


def e09_slack(
    deltas: Sequence[int] = (6, 10, 14),
    n: int = 80,
    seed: int = 9,
) -> ExperimentTable:
    """Prop 2.5 (Elkin–Pettie–Su): sparsity converts to slack."""
    table = ExperimentTable(
        "E9",
        "Slack generation from sparsity",
        "Prop 2.5: after one random-trial round, slack >= ζ/(4e³) "
        "w.h.p.",
        [
            "Δ",
            "mean ζ",
            "mean slack (live)",
            "ζ/(4e³)",
            "bound satisfied",
        ],
    )
    import random as pyrandom

    e3 = math.e**3
    for delta in deltas:
        graph = random_regular(delta, n, seed=seed)
        zeta = sparsity(graph)
        palette = delta * delta + 1
        rng = pyrandom.Random(seed)
        # One round of d2-Color step 2: uniform tries, adopt when no
        # d2-neighbor picked or owns the color (centrally simulated).
        tries = {
            v: rng.randrange(palette) for v in graph.nodes
        }
        hoods = d2_neighborhoods(graph)
        coloring = {}
        for v in graph.nodes:
            conflict = any(
                tries[u] == tries[v] for u in hoods[v]
            )
            coloring[v] = None if conflict else tries[v]
        slk = slack(graph, coloring, delta)
        live = [v for v in graph.nodes if coloring[v] is None]
        live_slack = [slk[v] for v in live] or [0]
        mean_zeta = statistics.mean(zeta.values())
        satisfied = all(
            slk[v] >= zeta[v] / (4 * e3) - 1e-9 for v in live
        )
        table.add_row(
            delta,
            round(mean_zeta, 2),
            round(statistics.mean(live_slack), 2),
            round(mean_zeta / (4 * e3), 3),
            satisfied,
        )
        table.add_check(
            f"Δ={delta}: slack bound holds for all live nodes",
            satisfied,
        )
    return table


def e10_finish(
    ns: Sequence[int] = (50, 100, 200), seed: int = 10
) -> ExperimentTable:
    """Lemma 2.14: FinishColoring completes in O(log n) rounds."""
    from repro.tests_support import run_finish_only

    table = ExperimentTable(
        "E10",
        "FinishColoring round complexity",
        "Lemma 2.14: O(log n) rounds once palettes are known",
        ["n", "live nodes", "rounds", "log2(n)"],
    )
    points = []
    rounds_list = []
    for n in ns:
        graph = random_regular(6, n, seed=seed)
        live_target = max(4, int(math.log2(n)))
        rounds, valid = run_finish_only(
            graph, live_target, seed=seed
        )
        table.add_row(
            graph.number_of_nodes(),
            live_target,
            rounds,
            round(math.log2(n), 1),
        )
        table.add_check(f"n={n}: finish produces valid coloring", valid)
        points.append((graph.number_of_nodes(), 6))
        rounds_list.append(rounds)
    models = {
        "log(n)": lambda n, d: math.log(n),
        "n": lambda n, d: float(n),
    }
    table.fits = compare_models(points, rounds_list, models)
    return table


def e11_learn_palette(seed: int = 11) -> ExperimentTable:
    """Thm 2.16 / Lemma 2.15: LearnPalette correctness and cost."""
    from repro.tests_support import run_learn_palette_only

    table = ExperimentTable(
        "E11",
        "LearnPalette exactness",
        "Thm 2.16: palettes learned in O(log n) rounds; step-7 "
        "correction makes them exact",
        ["instance", "mode", "live", "rounds", "exact palettes"],
    )
    for name, graph, force_small in (
        ("HS", hoffman_singleton(), True),
        ("HS", hoffman_singleton(), False),
        ("PG(2,5)", projective_plane_incidence(5), False),
    ):
        live_target = max(4, int(math.log2(graph.number_of_nodes())))
        rounds, exact, superset = run_learn_palette_only(
            graph, live_target, force_small, seed=seed
        )
        mode = "flood" if force_small else "handlers"
        table.add_row(name, mode, live_target, rounds, exact)
        table.add_check(
            f"{name}/{mode}: learned palettes contain all free "
            "colors",
            superset,
        )
        if force_small:
            table.add_check(
                f"{name}/{mode}: flooding palettes exact", exact
            )
    return table


def e12_blocked_phases(seed: int = 12) -> ExperimentTable:
    """Lemma B.3: at most 2Δ² blocked phases."""
    table = ExperimentTable(
        "E12",
        "Locally-iterative blocked phases",
        "Lemma B.3: every vertex is blocked in at most 2Δ² of the "
        "q > 4Δ² phases",
        ["graph", "Δ", "q", "max blocked", "bound 2·maxd2deg"],
    )
    instances = {
        "petersen": petersen(),
        "rr(6,36)": random_regular(6, 36, seed=seed),
        "cliques(4x6)": clique_clusters(4, 6, seed=seed),
        "pg2_3": projective_plane_incidence(3),
    }
    for name, graph in instances.items():
        delta = max(d for _, d in graph.degree)
        linial = linial_d2_coloring(graph)
        result = locally_iterative_d2_coloring(
            graph,
            color_in=linial.coloring,
            palette_in=linial.palette_size,
            stop_early=False,
        )
        bound = 2 * max_d2_degree(graph)
        blocked = result.params["max_blocked_phases"]
        table.add_row(
            name, delta, result.params["q"], blocked, bound
        )
        table.add_check(
            f"{name}: blocked <= 2·(max d2-degree)",
            blocked <= bound,
        )
    return table


def e13_linial(
    ns: Sequence[int] = (64, 256, 1024),
    deltas: Sequence[int] = (4, 8, 12),
    seed: int = 13,
) -> ExperimentTable:
    """Theorem B.1: O(Δ⁴) colors in O(Δ + log* n) rounds."""
    table = ExperimentTable(
        "E13",
        "Linial on G²",
        "Thm B.1: O(Δ⁴) colors in O(Δ + log* n) rounds",
        ["n", "Δ", "iterations", "rounds", "palette", "~8Δ⁴"],
    )
    for n in ns:
        graph = nx.cycle_graph(n)
        result = linial_d2_coloring(graph)
        table.add_row(
            n,
            2,
            result.params["iterations"],
            result.rounds,
            result.palette_size,
            8 * 16,
        )
        table.add_check(
            f"cycle n={n}: palette O(Δ⁴)",
            result.palette_size <= 8 * 16,
        )
        table.add_check(
            f"cycle n={n}: valid",
            check_d2_coloring(
                graph, result.coloring, result.palette_size
            ).valid,
        )
    for delta in deltas:
        graph = random_regular(delta, 64, seed=seed)
        result = linial_d2_coloring(graph)
        bound = 8 * delta**4
        table.add_row(
            64,
            delta,
            result.params["iterations"],
            result.rounds,
            result.palette_size,
            bound,
        )
        table.add_check(
            f"Δ={delta}: palette O(Δ⁴)",
            result.palette_size <= bound,
        )
    return table


def e14_crossover(
    deltas: Sequence[int] = (4, 8, 12, 16),
    n: int = 64,
    seed: int = 14,
) -> ExperimentTable:
    """Sec. 1: the naive G² simulation pays Θ(Δ) per G² round."""
    table = ExperimentTable(
        "E14",
        "Naive simulation vs paper algorithms",
        "Sec. 1: simulating one G² round costs Ω(Δ) rounds on G; "
        "the paper's algorithms avoid the factor",
        [
            "Δ",
            "naive rounds",
            "naive relay/phase",
            "improved rounds",
            "det rounds",
        ],
    )
    policy = BandwidthPolicy.track(beta=2, min_bits=24)
    naive_relay = []
    for delta in deltas:
        graph = random_regular(delta, n, seed=seed)
        naive = naive_congest_d2_color(
            graph, seed=seed, policy=policy
        )
        improved = improved_d2_color(
            graph, seed=seed, allow_deterministic_fallback=False
        )
        det = deterministic_d2_color(graph)
        table.add_row(
            delta,
            naive.rounds,
            naive.params["relay_rounds_per_phase"],
            improved.rounds,
            det.rounds,
        )
        naive_relay.append(naive.params["relay_rounds_per_phase"])
        _check_valid(table, graph, naive, f"naive Δ={delta}")
    table.add_check(
        "naive per-phase relay cost grows with Δ",
        naive_relay[-1] > naive_relay[0],
    )
    return table


def e15_bandwidth(seed: int = 15, backend=None) -> ExperimentTable:
    """CONGEST compliance audit across algorithms.

    ``backend`` selects the execution engine for every audited run
    (compliance must hold — and is metered identically — on any
    metered backend).
    """
    from repro.verify.audit import audit_bandwidth

    table = ExperimentTable(
        "E15",
        "Bandwidth compliance",
        "Model: every message O(log n) bits",
        [
            "algorithm",
            "budget bits",
            "max msg bits",
            "headroom",
            "violations",
            "compliant",
        ],
    )
    graph = projective_plane_incidence(3)
    # Every distributed algorithm in the registry is audited; adding
    # an algorithm to the registry adds it to this compliance table.
    # "heavy" specs (the O(log³ n) strawman) are skipped: dense PG
    # neighborhoods cost them tens of seconds for one audit row.
    for spec in registry.algorithms(distributed=True):
        if "heavy" in spec.tags:
            table.add_note(f"{spec.name}: skipped (tagged heavy)")
            continue
        result = spec.run(graph, seed=seed, backend=backend)
        report = audit_bandwidth(spec.name, result.metrics)
        table.add_row(*report.row())
        if spec.expects_compliant:
            table.add_check(f"{spec.name}: compliant", report.compliant)
        if spec.kind == "randomized":
            # The audit must cover the randomized pipeline itself: a
            # silent Step-0 fallback would record the deterministic
            # chain's traffic under this spec's name.
            table.add_check(
                f"{spec.name}: audited its own pipeline (no fallback)",
                not result.params.get("deterministic_fallback", False),
            )
    return table


def e16_trial_eps(
    eps_values: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    delta: int = 8,
    n: int = 64,
    seed: int = 16,
) -> ExperimentTable:
    """Sec. 2.1: with (1+ε)Δ² colors, trials finish in
    O(log_{1/ε'} n) rounds."""
    table = ExperimentTable(
        "E16",
        "Random-trial baseline palette sweep",
        "Sec. 2.1: (1+ε)Δ² palette => O(log n / log(1+ε)) phases",
        ["ε", "palette", "rounds", "colors used"],
    )
    graph = random_regular(delta, n, seed=seed)
    rounds_list = []
    for eps in eps_values:
        result = trial_d2_color(graph, seed=seed, eps=eps)
        table.add_row(
            eps,
            result.palette_size,
            result.rounds,
            result.colors_used,
        )
        rounds_list.append(result.rounds)
        _check_valid(table, graph, result, f"ε={eps}")
    table.add_check(
        "rounds decrease with palette slack",
        rounds_list[-1] <= rounds_list[0],
    )
    return table


def e17_luby_mis(
    ks: Sequence[int] = (1, 2, 3),
    ns: Sequence[int] = (40, 80, 160),
    delta: int = 4,
    seed: int = 17,
) -> ExperimentTable:
    """Sec. 1: distance-k MIS in O(k log n) rounds."""
    table = ExperimentTable(
        "E17",
        "Distance-k MIS (Luby)",
        "Sec. 1: O(k · log n) rounds",
        ["k", "n", "rounds", "MIS size", "valid"],
    )
    for k in ks:
        for n in ns:
            graph = random_regular(delta, n, seed=seed)
            mis, rounds, _ = luby_distance_k_mis(
                graph, k=k, seed=seed
            )
            valid = check_distance_k_mis(graph, mis, k)
            table.add_row(k, n, rounds, len(mis), valid)
            table.add_check(f"k={k} n={n}: valid MIS", valid)
    return table


def e18_colors(seed: int = 18, backend=None) -> ExperimentTable:
    """Color quality across all algorithms.

    ``backend`` selects the execution engine for every run; colors
    and rounds are backend-invariant, so the table is too.
    """
    table = ExperimentTable(
        "E18",
        "Colors used by every algorithm",
        "All Δ²+1 algorithms stay within the palette; on Moore "
        "graphs they are forced to use exactly Δ²+1",
        ["instance", "algorithm", "colors", "palette", "rounds"],
    )
    instances = {
        "petersen": petersen(),
        "rr(6,48)": random_regular(6, 48, seed=seed),
        "udg(50)": unit_disk(50, 0.25, seed=seed),
    }
    for name, graph in instances.items():
        delta = max(d for _, d in graph.degree)
        # The full registry runs on every instance — oracles included.
        for spec in registry.ALGORITHMS:
            if not spec.applicable(graph):
                continue
            result = spec.run(graph, seed=seed, backend=backend)
            table.add_row(
                name,
                spec.name,
                result.colors_used,
                result.palette_size,
                result.rounds,
            )
            _check_valid(table, graph, result, f"{name}/{spec.name}")
            if name == "petersen":
                # G² is complete on a Moore graph and n = Δ²+1, so
                # *every* algorithm (whatever its palette slack) is
                # forced to use exactly Δ²+1 colors.
                table.add_check(
                    f"{spec.name}: Moore graph needs full palette",
                    result.colors_used == delta * delta + 1,
                )
    return table


ALL_EXPERIMENTS = {
    "E1": e01_improved_randomized,
    "E2": e02_basic_randomized,
    "E3": e03_deterministic,
    "E4": e04_eps_deterministic,
    "E5": e05_eps_g_coloring,
    "E6": e06_splitting,
    "E7": e07_similarity,
    "E8": e08_sampling,
    "E9": e09_slack,
    "E10": e10_finish,
    "E11": e11_learn_palette,
    "E12": e12_blocked_phases,
    "E13": e13_linial,
    "E14": e14_crossover,
    "E15": e15_bandwidth,
    "E16": e16_trial_eps,
    "E17": e17_luby_mis,
    "E18": e18_colors,
}


def e19_ablation(seed: int = 19) -> ExperimentTable:
    """Ablation of the randomized algorithm's design choices.

    DESIGN.md calls out three load-bearing mechanisms: the Reduce
    ladder (colored helpers), the similarity filter (exact vs
    sampled), and the initial random trials.  This experiment runs
    Improved-d2-Color on the Hoffman–Singleton graph (G² complete —
    the regime the helpers exist for) with each mechanism varied.
    """
    table = ExperimentTable(
        "E19",
        "Ablations on the dense extremal instance",
        "Sec. 2: helpers and similarity filtering drive progress "
        "when neighborhoods are dense",
        ["variant", "rounds", "colors", "complete"],
    )
    graph = hoffman_singleton()
    baseline = improved_d2_color(
        graph, seed=seed, allow_deterministic_fallback=False
    )
    table.add_row(
        "baseline (practical constants)",
        baseline.rounds,
        baseline.colors_used,
        baseline.complete,
    )
    _check_valid(table, graph, baseline, "baseline")

    # Fewer initial trials: the ladder + finish must absorb the load.
    fewer = improved_d2_color(
        graph,
        seed=seed,
        constants=Constants.practical().scaled(c0=1.0),
        allow_deterministic_fallback=False,
    )
    table.add_row(
        "c0=1 (few initial trials)",
        fewer.rounds,
        fewer.colors_used,
        fewer.complete,
    )
    _check_valid(table, graph, fewer, "c0=1")

    # More aggressive activation/query probabilities.
    aggressive = improved_d2_color(
        graph,
        seed=seed,
        constants=Constants.practical().scaled(
            act_c=1.0, query_c=0.5
        ),
        allow_deterministic_fallback=False,
    )
    table.add_row(
        "aggressive act/query",
        aggressive.rounds,
        aggressive.colors_used,
        aggressive.complete,
    )
    _check_valid(table, graph, aggressive, "aggressive")

    # Shorter ladder (higher floor): LearnPalette takes over earlier.
    short = improved_d2_color(
        graph,
        seed=seed,
        constants=Constants.practical().scaled(c2=8.0),
        allow_deterministic_fallback=False,
    )
    table.add_row(
        "c2=8 (short ladder)",
        short.rounds,
        short.colors_used,
        short.complete,
    )
    _check_valid(table, graph, short, "short ladder")

    # Handler-based LearnPalette instead of flooding.
    handlers = improved_d2_color(
        graph,
        seed=seed,
        allow_deterministic_fallback=False,
        force_learn_handlers=True,
    )
    table.add_row(
        "handler LearnPalette",
        handlers.rounds,
        handlers.colors_used,
        handlers.complete,
    )
    _check_valid(table, graph, handlers, "handlers")
    table.add_check(
        "all ablations complete the coloring",
        all(row[3] for row in table.rows),
    )
    return table


ALL_EXPERIMENTS["E19"] = e19_ablation


def e20_conformance(seed: int = 20, backend=None) -> ExperimentTable:
    """Differential conformance sweep of the whole registry.

    Runs every registered algorithm on every scenario in the
    conformance corpus (including the adversarial generators) and
    asserts the shared contract: checker-valid colorings within each
    spec's palette bound, metered bandwidth, and per-seed
    repeatability.  Algorithms added to the registry are swept
    automatically.

    ``backend`` is forwarded to :func:`run_conformance`: pass a
    :class:`~repro.exec.sweep.SweepBackend` (or "sweep") and the whole
    matrix fans out across workers with identical results.
    """
    from repro.conformance import build_corpus, run_conformance

    table = ExperimentTable(
        "E20",
        "Registry × scenario conformance",
        "All registered algorithms solve the same problem: a valid "
        "d2-coloring within their palette bound, under CONGEST "
        "bandwidth metering",
        ["scenario", "algorithms", "colors(min..max)", "failures"],
    )
    corpus = build_corpus()
    report = run_conformance(
        scenarios=corpus,
        seed=seed,
        check_repeatability=True,
        backend=backend,
    )
    by_scenario: Dict[str, list] = {}
    for record in report.records:
        by_scenario.setdefault(record.scenario, []).append(record)
    for scenario in corpus:
        records = by_scenario.get(scenario.name, [])
        if not records:
            continue
        colors = [r.colors_used for r in records]
        failures = [r for r in records if not r.ok]
        table.add_row(
            scenario.name,
            len(records),
            f"{min(colors)}..{max(colors)}",
            len(failures),
        )
    table.add_check(
        "registry lists >= 8 algorithm specs",
        len(registry.ALGORITHMS) >= 8,
    )
    table.add_check(
        "every spec ran on >= 10 scenarios",
        min(
            sum(1 for r in report.records if r.algorithm == spec.name)
            for spec in registry.ALGORITHMS
        )
        >= 10,
    )
    table.add_check("all conformance records ok", report.ok)
    if not report.ok:
        table.add_note(report.explain())
    return table


ALL_EXPERIMENTS["E20"] = e20_conformance


def e21_backends(
    seed: int = 21,
    timing_repeats: int = 3,
    sweep_workers: int = 4,
) -> ExperimentTable:
    """Execution backends head-to-head (docs/BACKENDS.md).

    Runs message-heavy algorithms on the large-tier scenarios under
    every round-level backend and checks the two contracts of
    :mod:`repro.exec`: (1) equivalence — identical colorings and
    round counts on every backend; (2) speed — ``fastpath`` beats
    ``reference`` wall-clock on the largest corpus scenario (best of
    ``timing_repeats``, unbounded policy, where the fast path may
    skip per-message sizing).  A sweep-grid determinism check (same
    grid, 1 worker vs ``sweep_workers``) rides along.
    """
    import time

    from repro.conformance.scenarios import build_large_corpus
    from repro.exec import SweepBackend, grid_cells

    table = ExperimentTable(
        "E21",
        "Execution backends head-to-head",
        "repro.exec: identical semantics on every backend; fastpath "
        "faster where metering is the bottleneck",
        [
            "scenario",
            "n",
            "algorithm",
            "backend",
            "wall ms (best)",
            "rounds",
            "messages",
            "colors",
        ],
    )
    policy = BandwidthPolicy.unbounded()
    # Build each instance once; sort (scenario, graph) pairs by size.
    built = sorted(
        ((s, s.graph(seed)) for s in build_large_corpus()),
        key=lambda pair: pair[1].number_of_nodes(),
    )
    largest = built[-1][0]
    spec_names = ("trial", "naive-g2")
    backends = ("reference", "fastpath", "vectorized")
    best: Dict[tuple, float] = {}
    for scenario, graph in (built[0], built[-1]):
        n = graph.number_of_nodes()
        for spec_name in spec_names:
            spec = registry.get_algorithm(spec_name)
            results = {}
            for backend in backends:
                walls = []
                for _ in range(timing_repeats):
                    t0 = time.perf_counter()
                    result = spec.run(
                        graph, seed=seed, policy=policy, backend=backend
                    )
                    walls.append(time.perf_counter() - t0)
                results[backend] = result
                best[(scenario.name, spec_name, backend)] = min(walls)
                table.add_row(
                    scenario.name,
                    n,
                    spec_name,
                    backend,
                    round(min(walls) * 1000, 1),
                    result.rounds,
                    result.metrics.total_messages,
                    result.colors_used,
                )
            reference = results["reference"]
            for backend in backends[1:]:
                table.add_check(
                    f"{scenario.name}/{spec_name}: {backend} "
                    "coloring identical to reference",
                    reference.coloring == results[backend].coloring,
                )
                table.add_check(
                    f"{scenario.name}/{spec_name}: {backend} rounds "
                    "identical to reference",
                    reference.rounds == results[backend].rounds,
                )
    for spec_name in spec_names:
        table.add_check(
            f"{largest.name}/{spec_name}: fastpath beats reference "
            "wall-clock",
            best[(largest.name, spec_name, "fastpath")]
            < best[(largest.name, spec_name, "reference")],
        )
    # The trial pipeline has a vectorized kernel; the array engine
    # must beat the per-node fast path where it applies.
    table.add_check(
        f"{largest.name}/trial: vectorized beats fastpath wall-clock",
        best[(largest.name, "trial", "vectorized")]
        < best[(largest.name, "trial", "fastpath")],
    )

    # Sweep determinism: the same grid, serial vs fanned out.
    cells = grid_cells(
        specs=[
            registry.get_algorithm(name)
            for name in ("trial", "greedy-oracle", "deterministic-d2")
        ],
        seeds=(seed, seed + 1),
    )
    one = SweepBackend(executor="serial").run_grid(cells)
    many = SweepBackend(
        executor="thread", max_workers=sweep_workers
    ).run_grid(cells)
    table.add_check(
        f"sweep: {len(cells)}-cell grid byte-identical at 1 vs "
        f"{sweep_workers} workers",
        one.fingerprint() == many.fingerprint(),
    )
    table.add_check("sweep: all cells ran clean", one.ok and many.ok)
    table.add_note(
        f"sweep aggregate: {one.aggregate_metrics().summary()}"
    )
    return table


ALL_EXPERIMENTS["E21"] = e21_backends


def e22_sharded_sweep(
    seed: int = 22,
    num_shards: int = 3,
    checkpoint_dir: Optional[str] = None,
) -> ExperimentTable:
    """Sharded, resumable sweep execution (docs/WORKLOADS.md).

    Compiles a registry × workload grid to a shard manifest and
    checks the contracts of :mod:`repro.exec.shards` and
    :mod:`repro.exec.fleet`:
    (1) *equivalence* — the grid split into 1, 2, and ``num_shards``
    shards merges byte-identically (``SweepResult.fingerprint()`` and
    aggregate metrics) to the unsharded run; (2) *resumability* — a
    shard killed mid-flight completes from its per-cell checkpoint
    without recomputing finished cells; (3) *crash reclaim* — a fleet
    worker dying mid-shard with an unreleased lease has its shard
    reclaimed and finished by a survivor, merge still byte-identical;
    (4) *cache sharing* — the instance cache builds each referenced
    (workload, seed) instance exactly once for the whole grid, not
    once per cell.
    """
    import os
    import tempfile
    import time

    from repro.exec import (
        LeaseStore,
        ReclaimPolicy,
        SweepBackend,
        compile_manifest,
        grid_cells,
        merge_shards,
        run_fleet_worker,
        run_shard,
        run_sharded,
    )
    from repro.workloads import InstanceCache, get_workload

    table = ExperimentTable(
        "E22",
        "Sharded, resumable sweeps",
        "repro.exec.shards + repro.exec.fleet: a grid compiles to a "
        "deterministic shard manifest; shards run independently, "
        "checkpoint per cell, survive worker crashes via lease "
        "reclaim, and merge byte-identically to the unsharded run",
        ["shards", "cells", "resumed", "executed", "wall ms", "merge"],
    )
    specs = [
        registry.get_algorithm(name)
        for name in ("trial", "deterministic-d2", "greedy-oracle")
    ]
    corpus = [
        get_workload(name)
        for name in (
            "gnp24",
            "relay3x4",
            "powerlaw24",
            "sampling-slack24",
            "petersen",
        )
    ]
    cells = grid_cells(
        specs=specs, scenarios=corpus, seeds=(seed, seed + 1)
    )
    unsharded = SweepBackend(executor="serial").run_grid(cells)
    fingerprint = unsharded.fingerprint()

    with tempfile.TemporaryDirectory() as tmp:
        base = checkpoint_dir or tmp
        for k in (1, 2, num_shards):
            shard_dir = os.path.join(base, f"k{k}")
            t0 = time.perf_counter()
            merged = run_sharded(cells, k, shard_dir)
            wall = (time.perf_counter() - t0) * 1000
            identical = merged.fingerprint() == fingerprint
            table.add_row(
                k, len(cells), 0, len(cells), round(wall, 1),
                "identical" if identical else "DIVERGED",
            )
            table.add_check(
                f"{k}-shard merge byte-identical to unsharded",
                identical,
            )
            table.add_check(
                f"{k}-shard aggregate metrics identical",
                repr(merged.aggregate_metrics())
                == repr(unsharded.aggregate_metrics()),
            )

        # Kill one shard after 3 cells, then resume it.
        resume_dir = os.path.join(base, "resume")
        manifest = compile_manifest(cells, 2)
        os.makedirs(resume_dir, exist_ok=True)
        manifest.save(resume_dir)
        partial = run_shard(manifest, 0, resume_dir, max_cells=3)
        resumed = run_shard(manifest, 0, resume_dir)
        run_shard(manifest, 1, resume_dir)
        merged = merge_shards(manifest, resume_dir)
        table.add_row(
            "2 (kill+resume)",
            len(cells),
            resumed.resumed,
            partial.executed + resumed.executed,
            "-",
            "identical"
            if merged.fingerprint() == fingerprint
            else "DIVERGED",
        )
        table.add_check(
            "killed shard resumed from checkpoint "
            f"(skipped {resumed.resumed} finished cells)",
            resumed.resumed == partial.executed == 3,
        )
        table.add_check(
            "resumed merge byte-identical to unsharded",
            merged.fingerprint() == fingerprint,
        )

        # Fleet crash reclaim: a worker claims shard 0, checkpoints
        # two cells, and dies without releasing its lease.  A
        # survivor with a fast reclaim policy must take the lease
        # over, finish the abandoned shard, and drain the rest.
        fleet_dir = os.path.join(base, "fleet")
        fleet_manifest = compile_manifest(cells, 2)
        os.makedirs(fleet_dir, exist_ok=True)
        fleet_manifest.save(fleet_dir)
        policy = ReclaimPolicy(
            stale_after=0.05, poll_interval=0.02, max_poll_interval=0.1
        )
        victim_store = LeaseStore(
            fleet_dir,
            fleet_manifest.grid_digest,
            worker_id="e22-victim",
            policy=policy,
        )
        victim_lease = victim_store.try_claim(0)
        run_shard(fleet_manifest, 0, fleet_dir, max_cells=2)
        # No heartbeat, no release: the victim is now dead.
        t0 = time.perf_counter()
        report = run_fleet_worker(
            fleet_manifest,
            fleet_dir,
            worker_id="e22-survivor",
            policy=policy,
            deadline=60.0,
        )
        fleet_wall = (time.perf_counter() - t0) * 1000
        merged = merge_shards(fleet_manifest, fleet_dir)
        fleet_identical = merged.fingerprint() == fingerprint
        table.add_row(
            "2 (fleet reclaim)",
            len(cells),
            report.resumed,
            report.executed,
            round(fleet_wall, 1),
            "identical" if fleet_identical else "DIVERGED",
        )
        table.add_check(
            "survivor reclaimed the dead worker's lease",
            0 in report.reclaimed and report.completed,
        )
        table.add_check(
            "survivor resumed past the victim's checkpointed cells",
            report.resumed == 2,
        )
        table.add_check(
            "fleet merge byte-identical to unsharded",
            fleet_identical,
        )
        assert victim_lease is not None  # claim on a fresh dir

    # Cache sharing: one instance build per (workload, seed), however
    # many algorithm cells reference it.
    cache = InstanceCache()
    for cell in cells:
        cache.get(cell.workload, cell.seed)
    distinct = len({(c.workload, c.seed) for c in cells})
    table.add_check(
        f"instance cache: {len(cells)} cells share {distinct} builds",
        cache.stats.builds == distinct
        and cache.stats.hits == len(cells) - distinct,
    )
    table.add_note(
        f"grid: {len(specs)} specs x {len(corpus)} workloads x 2 seeds"
        f" = {len(cells)} cells; manifest digest "
        f"{compile_manifest(cells, num_shards).grid_digest[:12]}..."
    )
    return table


ALL_EXPERIMENTS["E22"] = e22_sharded_sweep
