"""Experiment harness: sweeps, tables and scaling-shape checks.

Each experiment in DESIGN.md §2 is a function in
:mod:`repro.harness.experiments` returning an
:class:`~repro.harness.report.ExperimentTable`; the benches in
``benchmarks/`` print these tables next to the paper's claim and
assert the hard invariants (validity, palette bounds).
"""

from repro.harness.report import ExperimentTable

__all__ = ["ExperimentTable"]
