"""Experiment result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.util.fitting import Fit
from repro.util.tables import ascii_table


@dataclass
class ExperimentTable:
    """One experiment's measurements, ready to print."""

    exp_id: str
    title: str
    claim: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    fits: List[Fit] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def add_check(self, name: str, passed: bool) -> None:
        self.checks[name] = passed

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def best_fit(self) -> Optional[Fit]:
        return self.fits[0] if self.fits else None

    def render(self) -> str:
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            f"paper claim: {self.claim}",
            ascii_table(self.headers, self.rows),
        ]
        if self.fits:
            lines.append("model fits (best first):")
            for fit in self.fits:
                lines.append(
                    f"  rounds ~ {fit.slope:.3g}*{fit.name} + "
                    f"{fit.intercept:.3g}   R^2 = {fit.r_squared:.4f}"
                )
        for name, passed in self.checks.items():
            status = "PASS" if passed else "FAIL"
            lines.append(f"check [{status}] {name}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
