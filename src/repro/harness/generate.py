"""Regenerate EXPERIMENTS.md from a full experiment run.

Usage:  python -m repro.harness.generate [output_path]
"""

from __future__ import annotations

import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS

_HEADER = """# EXPERIMENTS — paper vs. measured

Regenerate with ``python -m repro.harness.generate`` (or run
``pytest benchmarks/ --benchmark-only -s``, which executes the same
experiments one by one and asserts every check).

The paper is theoretical, so "paper vs. measured" means: for every
theorem/lemma with a quantitative claim, the table below shows the
measured CONGEST rounds / colors / quality next to the claimed
asymptotic form, plus a least-squares shape comparison where a sweep
makes one meaningful.  Absolute constants are not comparable (the
paper's constants close union bounds as n → ∞; see DESIGN.md §3.1) —
the *shape* and the *hard invariants* (validity, palette bounds) are.

Summary of substitutions that affect the numbers (DESIGN.md §3):

- randomized-algorithm constants use the ``practical()`` preset;
- the Rozhoň–Ghaffari network decomposition is replaced by ball
  carving, and the splitting derandomization cost is charged
  analytically (reported as "charged rounds");
- experiments marked "forced" exercise mechanisms (h ≥ 1 splitting,
  handler-based LearnPalette) outside the regime the paper's
  parameters would select at laptop scale.
"""


def main(path: str = "EXPERIMENTS.md") -> None:
    sections = [_HEADER]
    overall_ok = True
    for exp_id in sorted(
        ALL_EXPERIMENTS, key=lambda e: int(e[1:])
    ):
        start = time.time()
        table = ALL_EXPERIMENTS[exp_id]()
        elapsed = time.time() - start
        ok = table.all_checks_pass
        overall_ok = overall_ok and ok
        status = "all checks pass" if ok else "CHECK FAILURES"
        sections.append(
            f"\n## {exp_id}: {table.title}\n\n"
            f"*{table.claim}*\n\n"
            "```\n" + table.render() + "\n```\n\n"
            f"Status: {status} ({elapsed:.1f}s)\n"
        )
        print(f"{exp_id}: {status} ({elapsed:.1f}s)")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("".join(sections))
    print(f"wrote {path}; overall pass: {overall_ok}")


if __name__ == "__main__":
    main(*sys.argv[1:])
