r"""LearnPalette (Sec. 2.6, Lemma 2.15, Theorem 2.16).

Once few live nodes remain, there is enough bandwidth for them to
learn their *remaining palette* — the set of colors unused in their
d2-neighborhood — after which coloring finishes like the classic
(Δ+1)-coloring algorithm.  No single node can collect Δ² colors, so
the work is spread:

1. every node learns its live d2-neighbors (flooding);
2. each live node v appoints, per color block B_i, a random
   H-neighbor z_i^v as *handler* (XOR lottery; Z = Δ blocks);
3. each handler informs a random set Z_i^v of P d2-neighbors that it
   handles block i for v (random 2-paths, remembering return routes);
4. every colored node u pushes its color along Θ((Δ²/P)·log n) random
   2-walks per live d2-neighbor v; walks landing in Z_i^v forward the
   color to the handler (meet in the middle);
5. handlers report the *unheard* colors T_i^v = B_i \ C_i^v back;
6. v double-checks T_v = ∪_i T_i^v with its immediate neighbors, who
   strike every color actually used in their own neighborhoods —
   making the final palette exact regardless of step 4's luck
   (handlers only bound |T_v| and hence the pipelining time).

Every schedule length below derives from global parameters only, so
all nodes stay in lockstep; overflow beyond a schedule bound is
dropped and counted (w.h.p. zero at paper constants; the step-6
correction keeps the result exact—missing "possibly free" reports only
shrink the candidate set, never falsify it).

When Δ = O(log n) the whole exercise is unnecessary: d2 colors are
flooded directly (the paper's step 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.congest.pipelining import items_per_message
from repro.core.constants import Constants
from repro.core.sampling import LotteryMixin
from repro.core.trying import iter_messages, multiplex

_TAG_FLOOD_COLOR = "fc"
_TAG_FLOOD_RELAY = "fr"
_TAG_LIVE = "lv"
_TAG_LIVE_RELAY = "lr"
_TAG_HANDLER = "hd"
_TAG_HANDLER2 = "h2"
_TAG_ZCOUNT = "zc"
_TAG_ZINFORM = "zi"
_TAG_WALK = "wk"
_TAG_WALK2 = "wd"
_TAG_TOFRONT = "tf"
_TAG_TOHANDLER = "tz"
_TAG_TREPORT = "tv"
_TAG_CORR = "cq"
_TAG_CORR_REPLY = "cr"


def _add(outbox: dict, receiver: int, message: tuple) -> None:
    existing = outbox.get(receiver)
    if existing is None:
        outbox[receiver] = message
    else:
        outbox[receiver] = multiplex(
            *list(iter_messages(existing)), message
        )


@dataclass(frozen=True)
class LearnPaletteConfig:
    """Globally derived schedule for LearnPalette."""

    palette: int
    small_delta: bool
    flood_rounds: int
    live_rounds: int
    z_blocks: int
    block_size: int
    p_targets: int
    walks: int
    t_rounds: int
    corr_rounds: int
    per_message: int
    item_cap: int

    @staticmethod
    def derive(
        n: int,
        delta: int,
        budget_bits: int,
        constants: Constants,
        force_small: Optional[bool] = None,
    ) -> "LearnPaletteConfig":
        delta = max(delta, 1)
        palette = delta * delta + 1
        log_n = math.log2(max(n, 2))
        color_bits = max(1, (palette - 1).bit_length())
        id_bits = max(1, (n - 1).bit_length())
        item_bits = color_bits + id_bits + 8
        per_message = items_per_message(item_bits, budget_bits)
        small = delta <= max(8.0, 2.0 * log_n)
        if force_small is not None:
            small = force_small
        z_blocks = constants.learn_z or delta
        z_blocks = max(1, min(z_blocks, palette))
        block_size = -(-palette // z_blocks)
        p_targets = max(
            1,
            min(
                delta * delta,
                math.ceil(delta * math.sqrt(delta * log_n)),
            ),
        )
        walks = max(
            1,
            math.ceil(
                2.0 * (delta * delta / p_targets) * log_n
            ),
        )
        live_bound = math.ceil(2.0 * constants.c2 * log_n + 8)
        t_bound = 2 * block_size + 8
        corr_bound = math.ceil(4.0 * constants.c2 * log_n + 16)
        return LearnPaletteConfig(
            palette=palette,
            small_delta=small,
            flood_rounds=max(1, -(-delta // per_message)),
            live_rounds=max(1, -(-live_bound // per_message)),
            z_blocks=z_blocks,
            block_size=block_size,
            p_targets=p_targets,
            walks=walks,
            t_rounds=max(1, -(-t_bound // per_message)) + 1,
            corr_rounds=max(1, -(-corr_bound // per_message)),
            per_message=per_message,
            item_cap=max(2, per_message),
        )

    def block_of(self, color: int) -> int:
        return min(color // self.block_size, self.z_blocks - 1)

    def block_colors(self, i: int) -> range:
        lo = i * self.block_size
        hi = min(self.palette, lo + self.block_size)
        if i == self.z_blocks - 1:
            hi = self.palette
        return range(lo, hi)


class LearnPaletteMixin(LotteryMixin):
    """Sub-protocol ``learn_palette`` -> exact free-color set.

    Requires ``self.similarity``, the ColorTracker state and
    ``self.constants``.  Returns a set of candidate-free colors for
    live nodes (guaranteed to contain every truly free color; may
    contain a used color only when a schedule bound overflowed, which
    is counted in ``self.learn_drops``) and None for colored nodes.
    """

    def learn_palette(self, cfg: LearnPaletteConfig):
        self.learn_drops = 0
        if cfg.small_delta:
            free = yield from self._learn_by_flooding(cfg)
            return free
        free = yield from self._learn_by_handlers(cfg)
        return free

    # -- small Δ: plain flooding (paper's step 1) ----------------------

    def _learn_by_flooding(self, cfg: LearnPaletteConfig):
        ctx = self.ctx
        neighbors = ctx.neighbors
        used: Set[int] = set()
        marker = -1
        my_color = self.color if self.color is not None else marker
        inbox = yield self.broadcast((_TAG_FLOOD_COLOR, my_color))
        direct: Dict[int, int] = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_FLOOD_COLOR:
                    direct[sender] = message[1]
                    if message[1] != marker:
                        used.add(message[1])
        plans = {
            receiver: [
                color
                for sender, color in direct.items()
                if sender != receiver and color != marker
            ]
            for receiver in neighbors
        }
        for chunk in range(cfg.flood_rounds):
            lo = chunk * cfg.per_message
            hi = lo + cfg.per_message
            outbox = {}
            for receiver, colors in plans.items():
                part = colors[lo:hi]
                if part:
                    outbox[receiver] = (_TAG_FLOOD_RELAY,) + tuple(
                        part
                    )
            inbox = yield outbox
            for payload in inbox.values():
                for message in iter_messages(payload):
                    if message[0] == _TAG_FLOOD_RELAY:
                        used.update(message[1:])
        if self.color is not None:
            return None
        return {c for c in range(cfg.palette) if c not in used}

    # -- large Δ: handlers + meet-in-the-middle ------------------------

    def _learn_by_handlers(self, cfg: LearnPaletteConfig):
        ctx = self.ctx
        rng = ctx.rng
        neighbors = ctx.neighbors

        # ---- step 2: live-neighbor discovery ------------------------
        inbox = yield self.broadcast((_TAG_LIVE, self.live))
        live_direct = [
            sender
            for sender, payload in inbox.items()
            for message in iter_messages(payload)
            if message[0] == _TAG_LIVE and message[1]
        ]
        live_d2: Set[int] = set(live_direct)
        for chunk in range(cfg.live_rounds):
            lo = chunk * cfg.per_message
            hi = lo + cfg.per_message
            part = tuple(live_direct[lo:hi])
            if chunk == cfg.live_rounds - 1 and len(live_direct) > hi:
                self.learn_drops += len(live_direct) - hi
            outbox = (
                {u: (_TAG_LIVE_RELAY,) + part for u in neighbors}
                if part
                else {}
            )
            inbox = yield outbox
            for payload in inbox.values():
                for message in iter_messages(payload):
                    if message[0] == _TAG_LIVE_RELAY:
                        live_d2.update(message[1:])
        live_d2.discard(ctx.node)

        # ---- step 3: appoint handlers (lottery + inform), Z times ---
        # handled[(v, i)] -> relay route back toward v
        handled: Dict[Tuple[int, int], int] = {}
        my_handlers: Dict[int, Tuple[int, int]] = {}
        for i in range(cfg.z_blocks):
            drawn = yield from self.lottery_round(
                self.similarity,
                filter_bits=self.lottery_filter_bits,
            )
            outbox = {}
            if self.live and drawn is not None:
                z, relay = drawn
                my_handlers[i] = (z, relay)
                if relay == z:
                    _add(outbox, z, (_TAG_HANDLER2, ctx.node, i))
                else:
                    _add(outbox, relay, (_TAG_HANDLER, z, i))
            inbox = yield outbox
            relay_out = {}
            for sender, payload in inbox.items():
                for message in iter_messages(payload):
                    if message[0] == _TAG_HANDLER:
                        _add(
                            relay_out,
                            message[1],
                            (_TAG_HANDLER2, sender, message[2]),
                        )
                    elif message[0] == _TAG_HANDLER2:
                        handled[(message[1], message[2])] = sender
            inbox = yield relay_out
            for sender, payload in inbox.items():
                for message in iter_messages(payload):
                    if message[0] == _TAG_HANDLER2:
                        handled[(message[1], message[2])] = sender

        # ---- step 4: handlers advertise Z_i^v ------------------------
        # Round A: per-neighbor counts; Round B: neighbors inform
        # random endpoints, who remember the return route.
        outbox = {}
        for (v, i), _route in handled.items():
            counts: Dict[int, int] = {}
            for _ in range(cfg.p_targets):
                if neighbors:
                    y = rng.choice(neighbors)
                    counts[y] = counts.get(y, 0) + 1
            for y, count in counts.items():
                _add(outbox, y, (_TAG_ZCOUNT, v, i, count))
        inbox = yield self._capped(outbox, cfg)
        # y-side: relay_map[(v, i)] -> handler z
        relay_map: Dict[Tuple[int, int], int] = {}
        inform_out: dict = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_ZCOUNT:
                    _tag, v, i, count = message
                    relay_map[(v, i)] = sender
                    for _ in range(min(count, cfg.item_cap)):
                        if neighbors:
                            target = rng.choice(neighbors)
                            _add(
                                inform_out,
                                target,
                                (_TAG_ZINFORM, v, i),
                            )
        inbox = yield inform_out
        # t-side: informed[(v, i)] -> the y to route through
        informed: Dict[Tuple[int, int], int] = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_ZINFORM:
                    informed[(message[1], message[2])] = sender

        # ---- step 5: colored nodes push colors along 2-walks --------
        outbox = {}
        if self.color is not None:
            for v in live_d2:
                for _ in range(cfg.walks):
                    if neighbors:
                        y = rng.choice(neighbors)
                        _add(
                            outbox, y, (_TAG_WALK, self.color, v)
                        )
        inbox = yield self._capped(outbox, cfg)
        walk_out: dict = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_WALK:
                    if neighbors:
                        t = rng.choice(neighbors)
                        _add(
                            walk_out,
                            t,
                            (_TAG_WALK2, message[1], message[2]),
                        )
        inbox = yield self._capped(walk_out, cfg)
        front_out: dict = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_WALK2:
                    color, v = message[1], message[2]
                    key = (v, cfg.block_of(color))
                    if key in informed:
                        _add(
                            front_out,
                            informed[key],
                            (_TAG_TOFRONT, v, color),
                        )
        inbox = yield self._capped(front_out, cfg)
        handler_out: dict = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_TOFRONT:
                    v, color = message[1], message[2]
                    key = (v, cfg.block_of(color))
                    if key in relay_map:
                        _add(
                            handler_out,
                            relay_map[key],
                            (_TAG_TOHANDLER, v, color),
                        )
        inbox = yield self._capped(handler_out, cfg)
        heard: Dict[Tuple[int, int], Set[int]] = {
            key: set() for key in handled
        }
        for payload in inbox.values():
            for message in iter_messages(payload):
                if message[0] == _TAG_TOHANDLER:
                    v, color = message[1], message[2]
                    key = (v, cfg.block_of(color))
                    if key in heard:
                        heard[key].add(color)

        # ---- step 6: handlers report unheard colors -----------------
        # Two-hop pipelining: z emits addressed chunks; everyone
        # relays chunks addressed onward in the next round.
        report_items: List[Tuple[int, int, int, Tuple[int, ...]]] = []
        for (v, i), route in handled.items():
            unheard = tuple(
                c
                for c in cfg.block_colors(i)
                if c not in heard[(v, i)]
            )
            report_items.append((v, i, route, unheard))
        chunk_queue: Dict[int, List[tuple]] = {}
        for v, i, route, unheard in report_items:
            pieces = [
                unheard[k : k + cfg.per_message]
                for k in range(0, len(unheard), cfg.per_message)
            ] or [()]
            for piece in pieces:
                chunk_queue.setdefault(route, []).append(
                    (_TAG_TREPORT, v, i) + piece
                )
        # v-side accumulation
        my_reports: Dict[int, Set[int]] = {}
        seen_blocks: Set[int] = set()
        forward_queue: Dict[int, List[tuple]] = {}
        for _round in range(cfg.t_rounds):
            outbox = {}
            for route, queue in list(chunk_queue.items()):
                if queue:
                    _add(outbox, route, queue.pop(0))
            for target, queue in list(forward_queue.items()):
                if queue:
                    _add(outbox, target, queue.pop(0))
            inbox = yield outbox
            for sender, payload in inbox.items():
                for message in iter_messages(payload):
                    if message[0] != _TAG_TREPORT:
                        continue
                    v, i = message[1], message[2]
                    if v == ctx.node:
                        seen_blocks.add(i)
                        my_reports.setdefault(i, set()).update(
                            message[3:]
                        )
                    elif v in set(neighbors):
                        forward_queue.setdefault(v, []).append(
                            message
                        )
        leftovers = sum(
            len(q) for q in chunk_queue.values()
        ) + sum(len(q) for q in forward_queue.values())
        self.learn_drops += leftovers

        # Assemble the candidate set: reported unheard colors, plus
        # whole blocks that never reported (unknown => maybe free).
        # Colored nodes keep an empty candidate set but MUST run the
        # correction rounds below: the schedule is global (lockstep),
        # and they are the ones answering the correction queries.
        candidates: Set[int] = set()
        if self.color is None:
            for i in range(cfg.z_blocks):
                if i in seen_blocks:
                    candidates |= my_reports.get(i, set())
                else:
                    candidates |= set(cfg.block_colors(i))
            candidates -= set(
                c for c in self.nbr_colors.values() if c is not None
            )

        # ---- step 7: exactness correction via immediate neighbors --
        # Request chunk r goes out in round r; replies to it come back
        # in round r+1.  Candidates beyond the schedule stay
        # unverified (counted; the verdict-checked finishing phase
        # keeps even unverified candidates safe).
        ordered = sorted(candidates)
        capacity = cfg.corr_rounds * cfg.per_message
        if self.live and len(ordered) > capacity:
            self.learn_drops += len(ordered) - capacity
        confirmed_used: Set[int] = set()
        pending_replies: Dict[int, Tuple[int, ...]] = {}
        for r in range(cfg.corr_rounds + 1):
            outbox = {}
            for receiver, used_part in pending_replies.items():
                _add(
                    outbox,
                    receiver,
                    (_TAG_CORR_REPLY,) + used_part,
                )
            pending_replies = {}
            lo = r * cfg.per_message
            part = tuple(ordered[lo : lo + cfg.per_message])
            if part and r < cfg.corr_rounds:
                for u in neighbors:
                    _add(outbox, u, (_TAG_CORR,) + part)
            inbox = yield outbox
            nearby = self._used_nearby()
            for sender, payload in inbox.items():
                for message in iter_messages(payload):
                    if message[0] == _TAG_CORR:
                        used_here = tuple(
                            c for c in message[1:] if c in nearby
                        )
                        if used_here:
                            pending_replies[sender] = used_here
                    elif message[0] == _TAG_CORR_REPLY:
                        confirmed_used.update(message[1:])
        if self.color is not None:
            return None
        return candidates - confirmed_used

    def _used_nearby(self) -> Set[int]:
        used = set(
            c for c in self.nbr_colors.values() if c is not None
        )
        if self.color is not None:
            used.add(self.color)
        return used

    def _capped(self, outbox: dict, cfg: LearnPaletteConfig) -> dict:
        """Trim multiplexed payloads to the per-edge item cap."""
        capped = {}
        for receiver, payload in outbox.items():
            messages = list(iter_messages(payload))
            if len(messages) > cfg.item_cap:
                self.learn_drops += len(messages) - cfg.item_cap
                messages = messages[: cfg.item_cap]
            capped[receiver] = multiplex(*messages)
        return capped
