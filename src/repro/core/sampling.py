"""Random H-neighbor selection — the XOR lottery (Lemma 2.3).

A node u cannot sample a uniformly random H-neighbor directly: it does
not even know the full list (non-adjacent H-neighbors are only known
to the middle nodes of their 2-paths), and sampling "via a random
2-path" would bias toward neighbors with many 2-paths (Sec. 2.1).

The paper's lottery: every node broadcasts a fresh 4·log n-bit random
string; the middle node x of each 2-path XORs the strings of each
H-adjacent pair (u, w) of its neighbors and forwards w's ticket to u
when the XOR passes a zero-prefix filter (width 2·logΔ - c11·loglog n,
keeping the expected number of forwarded tickets at O(log n)); u picks
the w whose XORed string is smallest.  Since the strings are i.i.d.
uniform, the argmin is a uniformly random H-neighbor (duplicate routes
yield identical XORs, so multiplicity does not bias the draw).

Here each middle forwards only its own argmin per requester (the
global argmin of per-middle argmins — same distribution, one message
per edge per round).  Experiment E8 checks uniformity.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.similarity import SimilarityState

_TAG_TICKET = "k"
_TAG_BEST = "b"


def filter_width(delta: int, n: int, c11: float) -> int:
    """The paper's zero-prefix width 2·log2 Δ - c11·log2 log2 n,
    clamped to >= 0 (0 disables filtering)."""
    import math

    if delta <= 1 or n <= 4:
        return 0
    width = 2.0 * math.log2(delta) - c11 * math.log2(
        math.log2(n)
    )
    return max(0, int(width))


class LotteryMixin:
    """Sub-protocol: one lottery iteration = 2 rounds, returning a
    uniformly random H-neighbor ``(w, relay)`` or None.

    ``relay`` is the middle node through which w's ticket arrived
    (== w itself for adjacent H-neighbors): the route used later to
    reach w.  All nodes participate every iteration (they cannot know
    who is sampling), so one call advances the whole network.
    """

    ctx = None  # provided by NodeProgram

    def lottery_round(
        self,
        similarity: SimilarityState,
        filter_bits: int = 0,
        string_bits: Optional[int] = None,
    ):
        ctx = self.ctx
        if string_bits is None:
            string_bits = 4 * max(1, (ctx.n - 1).bit_length())
        space = 1 << string_bits
        my_ticket = ctx.rng.randrange(space)

        # Round 1: broadcast tickets.
        inbox = yield self.broadcast((_TAG_TICKET, my_ticket))
        tickets = {
            sender: payload[1]
            for sender, payload in inbox.items()
            if payload[0] == _TAG_TICKET
        }

        # Middle duty: for every neighbor u, find the best H-partner
        # w among the other neighbors, subject to the prefix filter.
        threshold = (
            space >> filter_bits if filter_bits > 0 else space
        )
        outbox = {}
        for u, ticket_u in tickets.items():
            best: Optional[Tuple[int, int]] = None
            for w, ticket_w in tickets.items():
                if w == u or not similarity.is_h(u, w):
                    continue
                xored = ticket_u ^ ticket_w
                if xored >= threshold:
                    continue
                if best is None or xored < best[0]:
                    best = (xored, w)
            if best is not None:
                outbox[u] = (_TAG_BEST, best[1], best[0])
        inbox = yield outbox

        # Requester duty: global argmin over forwarded candidates and
        # direct H-neighbors.
        best_value = None
        best_w = None
        best_relay = None
        for w, ticket_w in tickets.items():
            if not similarity.is_h(ctx.node, w):
                continue
            xored = my_ticket ^ ticket_w
            if xored >= threshold:
                continue
            if best_value is None or xored < best_value:
                best_value, best_w, best_relay = xored, w, w
        for relay, payload in inbox.items():
            if payload and payload[0] == _TAG_BEST:
                w, xored = payload[1], payload[2]
                if w == ctx.node:
                    continue
                if best_value is None or xored < best_value:
                    best_value, best_w, best_relay = xored, w, relay
        if best_w is None:
            return None
        return (best_w, best_relay)
