"""Similarity graphs H = H_{2/3} and Ĥ = H_{5/6} (Sec. 2.3, Thm 2.2).

Two d2-neighbors are H_{1-1/k}-adjacent when they share "many" common
d2-neighbors.  Exact common-neighborhood sizes are unaffordable in
CONGEST for large Δ, so the paper estimates them from a random sample
S ⊆ V: every node enters S with probability p = c10·log n/Δ²; nodes
learn S_v = S ∩ N²(v); and u, v are declared H_{1-1/k}-adjacent when
|S_u ∩ S_v| ≥ (1 - 1/(2k))·p·Δ².  Theorem 2.2 (sampling accuracy) is
verified by experiment E7.

Where the knowledge lives afterwards (faithful to the paper):

- every node v holds its own set S_v,
- every node v holds S_u for each *immediate* neighbor u, so the
  middle node of any 2-path can decide H-adjacency of its endpoints —
  exactly what query routing in Reduce-Phase needs.

When Δ² = O(log n) the sample would be all of V; the protocol then
gathers exact d2-neighborhoods instead (the paper's small-Δ² case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.congest.pipelining import items_per_message
from repro.core.constants import Constants, K_H, K_HHAT

_TAG_IN_S = "s"
_TAG_LIST = "l"
_TAG_OWN = "d"


@dataclass(frozen=True)
class SimilarityConfig:
    """Globally derivable parameters of the construction."""

    exact: bool
    sample_p: float
    threshold_h: float
    threshold_hhat: float
    #: pipelined rounds for forwarding 1-hop lists / broadcasting the
    #: own set; identical at every node (derived from n, Δ only).
    forward_rounds: int
    own_rounds: int
    per_message: int

    @staticmethod
    def derive(
        n: int,
        delta: int,
        budget_bits: int,
        constants: Constants,
        force_exact: Optional[bool] = None,
    ) -> "SimilarityConfig":
        delta = max(delta, 1)
        delta_sq = delta * delta
        p = constants.similarity_sample_probability(n, delta)
        exact = p >= 0.5 if force_exact is None else force_exact
        id_bits = max(1, (n - 1).bit_length())
        per_message = items_per_message(id_bits, budget_bits)
        if exact:
            # forward: each node relays its (<= Δ)-sized neighbor
            # list; own: each node pipelines its (<= Δ²)-sized d2
            # list.  Both bounds are deterministic — no drops.
            forward_rounds = max(1, -(-delta // per_message))
            own_rounds = max(1, -(-delta_sq // per_message))
            threshold_h = (1.0 - 1.0 / K_H) * delta_sq
            threshold_hhat = (1.0 - 1.0 / K_HHAT) * delta_sq
            p = 1.0
        else:
            # W.h.p. bounds with slack: |S ∩ N(w)| ≲ 2pΔ + O(log n),
            # |S_v| ≲ 2pΔ² + O(log n); overflowing items are dropped
            # and counted (zero w.h.p.).
            log_n = math.log2(max(n, 2))
            bound_fwd = math.ceil(2.0 * p * delta + 2.0 * log_n + 8)
            bound_own = math.ceil(
                2.0 * p * delta_sq + 2.0 * log_n + 8
            )
            forward_rounds = max(1, -(-bound_fwd // per_message))
            own_rounds = max(1, -(-bound_own // per_message))
            threshold_h = (1.0 - 1.0 / (2 * K_H)) * p * delta_sq
            threshold_hhat = (1.0 - 1.0 / (2 * K_HHAT)) * p * delta_sq
        return SimilarityConfig(
            exact=exact,
            sample_p=p,
            threshold_h=threshold_h,
            threshold_hhat=threshold_hhat,
            forward_rounds=forward_rounds,
            own_rounds=own_rounds,
            per_message=per_message,
        )


class SimilarityState:
    """Per-node similarity knowledge after construction."""

    def __init__(
        self,
        node: int,
        own_set: FrozenSet[int],
        nbr_sets: Dict[int, FrozenSet[int]],
        config: SimilarityConfig,
        dropped_items: int = 0,
    ):
        self.node = node
        self.own_set = own_set
        self.nbr_sets = nbr_sets
        self.config = config
        #: items lost to the pipelining schedule bound (0 w.h.p.).
        self.dropped_items = dropped_items
        # Similarity queries repeat every phase; the underlying sets
        # are static after construction, so memoize.
        self._cache: Dict[tuple, bool] = {}

    def _set_of(self, node: int) -> Optional[FrozenSet[int]]:
        if node == self.node:
            return self.own_set
        return self.nbr_sets.get(node)

    def _similar(self, a: int, b: int, threshold: float) -> bool:
        if a > b:
            a, b = b, a
        key = (a, b, threshold)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        sa = self._set_of(a)
        sb = self._set_of(b)
        if sa is None or sb is None or a == b:
            result = False
        else:
            result = len(sa & sb) >= threshold
        self._cache[key] = result
        return result

    def is_h(self, a: int, b: int) -> bool:
        """H-adjacency of two nodes whose sets this node knows
        (itself and its immediate neighbors)."""
        return self._similar(a, b, self.config.threshold_h)

    def is_hhat(self, a: int, b: int) -> bool:
        """Ĥ-adjacency (higher similarity threshold)."""
        return self._similar(a, b, self.config.threshold_hhat)

    def h_immediate(self) -> FrozenSet[int]:
        """Immediate neighbors that are H-neighbors of this node."""
        return frozenset(
            u for u in self.nbr_sets if self.is_h(self.node, u)
        )

    def hhat_immediate(self) -> FrozenSet[int]:
        """Immediate neighbors that are Ĥ-neighbors of this node."""
        return frozenset(
            u for u in self.nbr_sets if self.is_hhat(self.node, u)
        )


class SimilarityMixin:
    """Sub-protocol building :class:`SimilarityState` at every node.

    Drive with ``self.similarity = yield from
    self.build_similarity(cfg)``.  Round cost is 1 + forward_rounds +
    own_rounds in sampled mode, forward_rounds + own_rounds in exact
    mode — identical at every node by construction.
    """

    ctx = None  # provided by NodeProgram

    def _pipeline_exchange(
        self,
        items: Sequence[int],
        rounds: int,
        per_message: int,
        tag: str,
    ):
        """Send ``items`` to every neighbor over ``rounds`` rounds and
        collect what the neighbors pipeline back under the same tag.

        Returns ``(received: {neighbor: [items]}, dropped: int)``.
        """
        neighbors = self.ctx.neighbors
        received: Dict[int, List[int]] = {u: [] for u in neighbors}
        capacity = rounds * per_message
        dropped = max(0, len(items) - capacity)
        for chunk in range(rounds):
            lo = chunk * per_message
            part = tuple(items[lo : lo + per_message])
            outbox = (
                {u: (tag,) + part for u in neighbors} if part else {}
            )
            inbox = yield outbox
            for sender, payload in inbox.items():
                if payload and payload[0] == tag:
                    received[sender].extend(payload[1:])
        return received, dropped

    def build_similarity(self, config: SimilarityConfig):
        ctx = self.ctx
        neighbors = ctx.neighbors
        dropped = 0

        if config.exact:
            # Phase 1: everyone pipelines its 1-hop neighbor list;
            # from the union each node assembles N²(v).
            lists, d1 = yield from self._pipeline_exchange(
                list(neighbors),
                config.forward_rounds,
                config.per_message,
                _TAG_LIST,
            )
            dropped += d1
            own = set(neighbors)
            for forwarded in lists.values():
                own.update(forwarded)
            own.discard(ctx.node)
        else:
            # Round 1: announce sample membership.
            in_sample = ctx.rng.random() < config.sample_p
            inbox = yield self.broadcast((_TAG_IN_S, in_sample))
            sampled_neighbors = [
                sender
                for sender, payload in inbox.items()
                if payload[0] == _TAG_IN_S and payload[1]
            ]
            # Phase 1: relay S ∩ N(w); union gives S_v = S ∩ N²(v).
            lists, d1 = yield from self._pipeline_exchange(
                sampled_neighbors,
                config.forward_rounds,
                config.per_message,
                _TAG_LIST,
            )
            dropped += d1
            own = set(sampled_neighbors)
            for forwarded in lists.values():
                own.update(forwarded)
            own.discard(ctx.node)

        own_frozen = frozenset(own)

        # Phase 2: pipeline the own set to immediate neighbors.
        received, d2 = yield from self._pipeline_exchange(
            sorted(own_frozen),
            config.own_rounds,
            config.per_message,
            _TAG_OWN,
        )
        dropped += d2
        nbr_sets = {
            u: frozenset(items) for u, items in received.items()
        }
        return SimilarityState(
            ctx.node, own_frozen, nbr_sets, config, dropped
        )
