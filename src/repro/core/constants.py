"""All constants of the randomized algorithm in one place.

The paper fixes (Sec. 2.2): c0 = 3e/c1, c1 <= 1/(402e³), c2 "large
enough for concentration", c3 = 32/c7 with c7 >= 1/1,200,000
(Lemma 2.12), query probability 1/(6000φ), activation probability
τ/(8φ), similarity sampling rate c10·log n/Δ², and the XOR-lottery
filter width 2·log Δ - c11·log log n (Sec. 2.3).

Those values close union bounds as n → ∞; at laptop scale they make
per-phase progress probabilities ≈ 10⁻⁶.  Every mechanism is therefore
parameterized here, with two presets:

- :meth:`Constants.paper` — the published values, used by unit tests
  that check the *formulas* (phase counts, probabilities, thresholds);
- :meth:`Constants.practical` — scaled values used by integration
  runs and benches.  Scaling constants preserves every claim we
  measure (shape of round scaling, palette bounds, invariants), per
  DESIGN.md §3.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Constants:
    """Tunable constants of d2-Color / Improved-d2-Color."""

    name: str
    #: Step 2 runs ``ceil(c0 · log2 n)`` initial random trials.
    c0: float
    #: Reduce handles leeway ranges below ``c1 · Δ²`` (Sec. 2.2).
    c1: float
    #: Leeway floor ``c2 · log2 n``: below it, concentration fails and
    #: the final phase (Reduce(·,1) or LearnPalette) takes over.
    c2: float
    #: Reduce(φ, τ) runs ``ceil(c3 · (φ/τ)² · log2 n)`` phases.
    c3: float
    #: A query crosses a given 2-path with probability
    #: ``min(cap, query_c / φ)``  (paper: query_c = 1/6000).
    query_c: float
    #: A live node is active in a phase with probability
    #: ``min(1, act_c · τ / φ)``  (paper: act_c = 1/8).
    act_c: float
    #: Similarity sampling probability is ``c10 · log2 n / Δ²``.
    c10: float
    #: XOR-lottery filter keeps ``2·logΔ - c11·loglog n`` zero bits.
    c11: float
    #: Probability caps keeping practical presets sane on tiny graphs.
    query_cap: float = 0.5
    #: LearnPalette block count Z (paper: Δ); None = use Δ.
    learn_z: int | None = None

    # ------------------------------------------------------------------
    # presets

    @staticmethod
    def paper() -> "Constants":
        c1 = 1.0 / (402.0 * math.e**3)
        c7 = 1.0 / 1_200_000.0
        return Constants(
            name="paper",
            c0=3.0 * math.e / c1,
            c1=c1,
            c2=50.0,
            c3=32.0 / c7,
            query_c=1.0 / 6000.0,
            act_c=1.0 / 8.0,
            c10=100.0,
            c11=4.0,
        )

    @staticmethod
    def practical() -> "Constants":
        return Constants(
            name="practical",
            c0=4.0,
            c1=0.3,
            c2=2.0,
            c3=1.0,
            query_c=0.125,
            act_c=0.5,
            c10=8.0,
            c11=4.0,
        )

    def scaled(self, **overrides) -> "Constants":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # derived quantities (same formulas for both presets)

    def initial_trials(self, n: int) -> int:
        """Number of Step-2 random color trials."""
        return max(1, math.ceil(self.c0 * math.log2(max(n, 2))))

    def leeway_start(self, delta: int) -> float:
        """The starting leeway bound c1·Δ² of the Reduce ladder."""
        return self.c1 * delta * delta

    def tau_floor(self, n: int) -> float:
        """The c2·log n floor where the Reduce ladder stops."""
        return self.c2 * math.log2(max(n, 2))

    def reduce_phases(self, phi: float, tau: float, n: int) -> int:
        """ρ = ceil(c3 · (φ/τ)² · log2 n) phases of Reduce-Phase."""
        ratio = phi / max(tau, 1.0)
        return max(
            1, math.ceil(self.c3 * ratio * ratio * math.log2(max(n, 2)))
        )

    def query_probability(self, phi: float) -> float:
        """Per-2-path query probability of Reduce-Phase step 1."""
        return min(self.query_cap, self.query_c / max(phi, 1.0))

    def activation_probability(self, phi: float, tau: float) -> float:
        """Probability a live node is active in a Reduce phase."""
        return min(1.0, self.act_c * tau / max(phi, 1.0))

    def small_graph_threshold(self, n: int) -> float:
        """Step 0: if Δ² < c2·log2 n, use the deterministic algorithm."""
        return self.c2 * math.log2(max(n, 2))

    def similarity_sample_probability(self, n: int, delta: int) -> float:
        """p = c10·log2 n / Δ² for the similarity-graph sample S."""
        delta_sq = max(delta * delta, 1)
        return min(1.0, self.c10 * math.log2(max(n, 2)) / delta_sq)

    def similarity_sample_threshold(self, n: int, k: int) -> float:
        """|S_v ∩ S_u| threshold for H_{1-1/k} (Thm 2.2):
        (1 - 1/(2k)) · c10 · log2 n."""
        return (1.0 - 1.0 / (2.0 * k)) * self.c10 * math.log2(max(n, 2))

    def ladder(self, n: int, delta: int) -> list:
        """The (φ, τ) schedule of the main phase:
        τ ← c1Δ²; while τ > c2·log n: Reduce(2τ, τ); τ ← τ/2."""
        schedule = []
        tau = self.leeway_start(delta)
        floor = self.tau_floor(n)
        while tau > floor:
            schedule.append((2.0 * tau, tau))
            tau /= 2.0
        return schedule


#: Similarity parameter k for H = H_{2/3} (common >= (1-1/k)·Δ²).
K_H = 3
#: Similarity parameter k for Ĥ = H_{5/6}.
K_HHAT = 6
