"""Reduce and Reduce-Phase (Sec. 2.2, Lemmas 2.8–2.12, Thm 2.13).

``Reduce(φ, τ)`` drives live nodes whose leeway is in [τ, φ) to get
colored "with a little help from their friends": colored similar nodes
check random colors on the live node's behalf, and similar-but-not-
d2-adjacent nodes donate their own colors.

One ``Reduce-Phase`` is a fixed 17-round schedule in which every node
simultaneously plays every role (the paper's 23-round schedule has the
same structure; our sub-protocols for the 2-path and d2-membership
checks are slightly tighter).  Roles and rounds:

==  =============================================================
 1  lottery: broadcast tickets                       (Lemma 2.3)
 2  lottery: middles forward best H-partner; each node u banks
    its fresh uniformly random H-neighbor (w, relay) — the next
    element of R_u
 3  V  active live nodes broadcast a query request     (step 1)
 4  M  middles flip a coin per 2-path (prob 1/(6000φ)) and
    forward ≤ 1 query per edge                (step 1 + drops)
 5  U  recipients select one query, broadcast the 2-path
    count probe for its origin v                       (step 2)
 6  Y  neighbors answer "is v my neighbor?"
 7  U  if the 2-path is unique: broadcast a random color check
    ĉ ≠ own color, and forward the query toward w = R_u.next
    via its relay                              (steps 3 and 4)
 8  Z  neighbors answer the color check against U's
    H-neighborhood; X relays ≤ 1 forwarded query per edge
 9  W  second helpers select one query, broadcast the
    d2-membership probe for v                          (step 5)
10  Y  neighbors answer
11  W  non-d2-neighbors of v return their own color via X
12  X  relays the color back to U
13  U  sends its proposals (clean ĉ and/or W's color) to M
14  M  relays proposals to V (packed, capped)
15  V  tries one uniformly random proposal — the shared 3-round
16     try primitive; everyone else serves verdicts    (step 6)
17
==  =============================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.constants import Constants
from repro.core.sampling import LotteryMixin
from repro.core.trying import TryPhaseMixin, iter_messages, multiplex

_TAG_QREQ = "q"
_TAG_QUERY = "Q"
_TAG_PATH_PROBE = "p"
_TAG_PATH_REPLY = "P"
_TAG_CHECK = "c"
_TAG_CHECK_REPLY = "C"
_TAG_FORWARD = "f"
_TAG_FORWARD2 = "F"
_TAG_MEMBER_PROBE = "m"
_TAG_MEMBER_REPLY = "M"
_TAG_COLOR_BACK = "w"
_TAG_COLOR_BACK2 = "W"
_TAG_PROPOSE = "o"
_TAG_PROPOSALS = "O"

#: Proposals relayed to one live node in one message (size cap).
_PROPOSAL_CAP = 6

#: Rounds in one Reduce-Phase (17 = 2 lottery + 12 routing + 3 try).
REDUCE_PHASE_ROUNDS = 17


def _add(outbox: dict, receiver: int, message: tuple) -> None:
    """Add a logical message to an outbox, multiplexing collisions."""
    existing = outbox.get(receiver)
    if existing is None:
        outbox[receiver] = message
    else:
        outbox[receiver] = multiplex(
            *list(iter_messages(existing)), message
        )


class ReduceStats:
    """Per-node counters used by the correctness experiments."""

    def __init__(self):
        self.queries_sent = 0
        self.queries_received = 0
        self.queries_accepted = 0
        self.proposals_received = 0
        self.proposals_made = 0
        self.colored_in_reduce = 0


class ReduceMixin(LotteryMixin, TryPhaseMixin):
    """Sub-protocols ``reduce`` and ``reduce_phase``.

    Requires ``self.similarity`` (a
    :class:`~repro.core.similarity.SimilarityState`), the
    :class:`~repro.core.trying.ColorTracker` state, ``self.constants``
    and ``self.palette``.  ``self.reduce_stats`` collects counters.
    """

    def reduce(self, phi: float, tau: float):
        """Reduce(φ, τ): ρ = c3·(φ/τ)²·log n phases (paper box)."""
        constants: Constants = self.constants
        rho = constants.reduce_phases(phi, tau, self.ctx.n)
        act_p = constants.activation_probability(phi, tau)
        query_p = constants.query_probability(phi)
        for _phase in range(rho):
            active = self.live and self.ctx.rng.random() < act_p
            yield from self.reduce_phase(active, query_p)
        return rho

    # ------------------------------------------------------------------

    def reduce_phase(self, active: bool, query_p: float):
        """One 17-round phase; returns True if this node adopted."""
        ctx = self.ctx
        rng = ctx.rng
        sim = self.similarity
        stats = self.reduce_stats

        # -- rounds 1-2: lottery (next element of R_u) ---------------
        next_ru = yield from self.lottery_round(
            sim, filter_bits=self.lottery_filter_bits
        )

        # -- round 3: V broadcasts query request ---------------------
        if active:
            stats.queries_sent += 1
            inbox = yield self.broadcast((_TAG_QREQ,))
        else:
            inbox = yield {}
        requesters = [
            sender
            for sender, payload in inbox.items()
            for message in iter_messages(payload)
            if message[0] == _TAG_QREQ
        ]

        # -- round 4: M forwards ≤ 1 query per edge ------------------
        outbox: dict = {}
        for u in ctx.neighbors:
            fired = [
                v
                for v in requesters
                if v != u
                and sim.is_hhat(v, u)
                and rng.random() < query_p
            ]
            if fired:
                _add(outbox, u, (_TAG_QUERY, rng.choice(fired)))
        inbox = yield outbox

        # -- round 5: U selects one query, probes the 2-path count ---
        arrivals: List[Tuple[int, int]] = []
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_QUERY:
                    arrivals.append((message[1], sender))
        stats.queries_received += len(arrivals)
        selected: Optional[Tuple[int, int]] = (
            rng.choice(arrivals) if arrivals else None
        )
        if selected is not None:
            inbox = yield self.broadcast(
                (_TAG_PATH_PROBE, selected[0])
            )
        else:
            inbox = yield {}
        probes = [
            (sender, message[1])
            for sender, payload in inbox.items()
            for message in iter_messages(payload)
            if message[0] == _TAG_PATH_PROBE
        ]

        # -- round 6: Y answers the 2-path probes --------------------
        outbox = {}
        nbr_set = set(ctx.neighbors)
        for asker, v in probes:
            _add(
                outbox,
                asker,
                (_TAG_PATH_REPLY, 1 if v in nbr_set else 0),
            )
        inbox = yield outbox
        path_count = sum(
            message[1]
            for payload in inbox.values()
            for message in iter_messages(payload)
            if message[0] == _TAG_PATH_REPLY
        )
        query_ok = selected is not None and path_count == 1
        if query_ok:
            stats.queries_accepted += 1

        # -- round 7: U broadcasts color check + forwards query ------
        check_color: Optional[int] = None
        outbox = {}
        if query_ok:
            choices = [
                c for c in range(self.palette) if c != self.color
            ]
            check_color = rng.choice(choices)
            for nbr in ctx.neighbors:
                _add(outbox, nbr, (_TAG_CHECK, check_color))
            if next_ru is not None:
                w, relay = next_ru
                _add(
                    outbox,
                    relay,
                    (_TAG_FORWARD, selected[0], w),
                )
        inbox = yield outbox
        checks = []
        relay_requests: Dict[int, List[Tuple[int, int]]] = {}
        direct_seconds: List[Tuple[int, int, Optional[int]]] = []
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_CHECK:
                    checks.append((sender, message[1]))
                elif message[0] == _TAG_FORWARD:
                    v, w = message[1], message[2]
                    if w == ctx.node:
                        # Adjacent H-neighbor: we are W, no relay hop.
                        direct_seconds.append((v, sender, None))
                    else:
                        relay_requests.setdefault(w, []).append(
                            (v, sender)
                        )

        # -- round 8: Z answers checks; X relays ≤1 forward per edge -
        outbox = {}
        for asker, color in checks:
            conflict = False
            if self.color == color and sim.is_h(asker, ctx.node):
                conflict = True
            if not conflict:
                for t, t_color in self.nbr_colors.items():
                    if t_color == color and sim.is_h(asker, t):
                        conflict = True
                        break
            _add(outbox, asker, (_TAG_CHECK_REPLY, conflict))
        for w, waiting in relay_requests.items():
            v, u_origin = waiting[rng.randrange(len(waiting))]
            _add(outbox, w, (_TAG_FORWARD2, v, u_origin))
        inbox = yield outbox
        check_conflict = any(
            message[1]
            for payload in inbox.values()
            for message in iter_messages(payload)
            if message[0] == _TAG_CHECK_REPLY
        )
        # relay = None marks the adjacent (no-relay) route.
        second_queries: List[Tuple[int, int, Optional[int]]] = list(
            direct_seconds
        )
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_FORWARD2:
                    second_queries.append(
                        (message[1], message[2], sender)
                    )

        # -- round 9: W selects one, probes d2-membership of v -------
        w_selected: Optional[Tuple[int, int, int]] = (
            rng.choice(second_queries) if second_queries else None
        )
        if w_selected is not None:
            inbox = yield self.broadcast(
                (_TAG_MEMBER_PROBE, w_selected[0])
            )
        else:
            inbox = yield {}
        member_probes = [
            (sender, message[1])
            for sender, payload in inbox.items()
            for message in iter_messages(payload)
            if message[0] == _TAG_MEMBER_PROBE
        ]

        # -- round 10: Y answers ------------------------------------
        outbox = {}
        for asker, v in member_probes:
            _add(
                outbox,
                asker,
                (_TAG_MEMBER_REPLY, 1 if v in nbr_set else 0),
            )
        inbox = yield outbox
        any_common = any(
            message[1]
            for payload in inbox.values()
            for message in iter_messages(payload)
            if message[0] == _TAG_MEMBER_REPLY
        )

        # -- round 11: W returns its color if v is NOT a d2-neighbor -
        # Direct (adjacent) routes are delayed to round 12 so that U
        # receives all returned colors in the same round.
        outbox = {}
        pending_direct: Optional[Tuple[int, int, int]] = None
        if w_selected is not None and self.color is not None:
            v, u_origin, relay = w_selected
            is_d2 = (
                any_common or v in nbr_set or v == ctx.node
            )
            if not is_d2:
                if relay is None:
                    pending_direct = (u_origin, v, self.color)
                else:
                    _add(
                        outbox,
                        relay,
                        (_TAG_COLOR_BACK, v, u_origin, self.color),
                    )
        inbox = yield outbox
        color_backs = []
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == _TAG_COLOR_BACK:
                    color_backs.append(
                        (message[1], message[2], message[3])
                    )

        # -- round 12: X relays the color back to U ------------------
        outbox = {}
        for v, u_origin, color in color_backs:
            _add(outbox, u_origin, (_TAG_COLOR_BACK2, v, color))
        if pending_direct is not None:
            u_origin, v, color = pending_direct
            _add(outbox, u_origin, (_TAG_COLOR_BACK2, v, color))
        inbox = yield outbox
        returned_colors = [
            (message[1], message[2])
            for payload in inbox.values()
            for message in iter_messages(payload)
            if message[0] == _TAG_COLOR_BACK2
        ]

        # -- round 13: U sends proposals to M ------------------------
        outbox = {}
        if query_ok:
            v, via = selected
            proposals = []
            if check_color is not None and not check_conflict:
                proposals.append(check_color)
            for v_ret, color in returned_colors:
                if v_ret == v:
                    proposals.append(color)
            if proposals:
                stats.proposals_made += len(proposals)
                _add(
                    outbox,
                    via,
                    (_TAG_PROPOSE, v) + tuple(proposals),
                )
        inbox = yield outbox
        to_relay: Dict[int, List[int]] = {}
        for payload in inbox.values():
            for message in iter_messages(payload):
                if message[0] == _TAG_PROPOSE:
                    to_relay.setdefault(message[1], []).extend(
                        message[2:]
                    )

        # -- round 14: M relays proposals to V (packed, capped) ------
        outbox = {}
        for v, colors in to_relay.items():
            if v not in nbr_set:
                continue
            if len(colors) > _PROPOSAL_CAP:
                colors = rng.sample(colors, _PROPOSAL_CAP)
            _add(outbox, v, (_TAG_PROPOSALS,) + tuple(colors))
        inbox = yield outbox
        my_proposals = [
            color
            for payload in inbox.values()
            for message in iter_messages(payload)
            if message[0] == _TAG_PROPOSALS
            for color in message[1:]
        ]
        stats.proposals_received += len(my_proposals)

        # -- rounds 15-17: V tries a random proposal -----------------
        candidate = None
        if active and self.live and my_proposals:
            candidate = rng.choice(my_proposals)
        adopted = yield from self.try_phase(candidate)
        if adopted:
            stats.colored_in_reduce += 1
        return adopted
