"""The "try a color" primitive and 1-hop color tracking (Sec. 2.2).

    "Recall that a node v trying a color means that it sends the color
    to all its immediate neighbors, who then report back if they or
    any of their neighbors were using (or proposing) that color.  If
    all answers are negative, then v adopts the color."

Every node maintains the colors of its *immediate* neighbors (that is
the only color knowledge CONGEST bandwidth affords, which is the whole
difficulty of d2-coloring).  A try is then a 3-round exchange:

  round A  live nodes broadcast ``("try", c)``;
  round B  each neighbor w answers ``("verdict", ok)`` per trier,
           where ok means: w does not use c, no neighbor of w uses c,
           and no *other* neighbor of w tried c this round (nor w
           itself);
  round C  successful triers adopt and broadcast ``("adopt", c)``;
           neighbors update their color tables.

Correctness does not depend on which subset of live nodes tries in a
phase, so all protocols in this package reuse ``TryPhaseMixin``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.congest.node import NodeProgram

TAG_TRY = "T"
TAG_VERDICT = "V"
TAG_ADOPT = "A"


class ColorTracker:
    """State shared by all coloring protocols: own color plus the
    latest known colors of immediate neighbors."""

    color: Optional[int]
    nbr_colors: Dict[int, int]

    def init_tracker(self, initial: Optional[int] = None) -> None:
        self.color = initial
        self.nbr_colors = {}

    @property
    def live(self) -> bool:
        return self.color is None

    def record_adopts(self, inbox: Dict[int, tuple]) -> None:
        """Update neighbor colors from ``("adopt", c)`` messages."""
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == TAG_ADOPT:
                    self.nbr_colors[sender] = message[1]


def iter_messages(payload):
    """Yield the logical messages inside a payload.

    A payload is either a single tagged tuple ``(tag, ...)`` or a
    multiplexed ``("*", msg, msg, ...)`` combining several logical
    messages on one edge (CONGEST permits one physical message per
    edge per round, so concurrent sub-protocols share it).
    """
    if not isinstance(payload, tuple) or not payload:
        return
    if payload[0] == "*":
        for message in payload[1:]:
            yield message
    else:
        yield payload


def multiplex(*messages) -> tuple:
    """Combine logical messages into one payload (inverse of
    :func:`iter_messages`)."""
    real = [m for m in messages if m is not None]
    if len(real) == 1:
        return real[0]
    return ("*",) + tuple(real)


class TryPhaseMixin(ColorTracker):
    """Reusable 3-round try phase for :class:`NodeProgram` subclasses.

    Subclasses drive it with ``yield from self.try_phase(c)`` where
    ``c`` is the color to try this phase (or None to sit the phase
    out while still serving verdicts for neighbors).  Returns True if
    the node adopted ``c``.
    """

    ctx = None  # provided by NodeProgram

    def try_phase(self, candidate: Optional[int]):
        # --- round A: broadcast the try --------------------------------
        if candidate is not None:
            inbox = yield {
                v: (TAG_TRY, candidate) for v in self.ctx.neighbors
            }
        else:
            inbox = yield {}
        self.record_adopts(inbox)

        # --- round B: serve verdicts ------------------------------------
        tries_here: Dict[int, int] = {}
        for sender, payload in inbox.items():
            for message in iter_messages(payload):
                if message[0] == TAG_TRY:
                    tries_here[sender] = message[1]
        used_colors = set(self.nbr_colors.values())
        if self.color is not None:
            used_colors.add(self.color)
        outbox = {}
        for trier, color in tries_here.items():
            conflict = color in used_colors
            if not conflict and candidate is not None and color == candidate:
                conflict = True
            if not conflict:
                conflict = any(
                    other_color == color
                    for other, other_color in tries_here.items()
                    if other != trier
                )
            outbox[trier] = (TAG_VERDICT, not conflict)
        inbox = yield outbox
        self.record_adopts(inbox)

        # --- round C: adopt on all-clear ---------------------------------
        adopted = False
        if candidate is not None:
            verdicts = [
                message[1]
                for payload in inbox.values()
                for message in iter_messages(payload)
                if message[0] == TAG_VERDICT
            ]
            # Self-check: the trier's own view of neighbor colors is
            # free information; it makes the primitive safe even when
            # a neighbor halted and cannot serve a verdict.
            known_conflict = candidate in set(
                self.nbr_colors.values()
            )
            if all(verdicts) and not known_conflict:
                self.color = candidate
                adopted = True
        if adopted:
            inbox = yield {
                v: (TAG_ADOPT, self.color) for v in self.ctx.neighbors
            }
        else:
            inbox = yield {}
        self.record_adopts(inbox)
        return adopted


def coloring_from_programs(programs: Dict[int, NodeProgram]) -> Dict[int, Optional[int]]:
    """Collect ``program.color`` from every node program."""
    return {node: program.color for node, program in programs.items()}


def all_colored(network, _round_index: int) -> bool:
    """``stop_when`` monitor: every node has adopted a color.

    Simulation-level early stop only; see Network docs.
    """
    return all(
        program.color is not None
        for program in network.programs.values()
    )
