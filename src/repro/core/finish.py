"""FinishColoring (Sec. 2.6, Lemma 2.14).

Once a live node knows its remaining palette, the end-game is the
classic randomized coloring loop: flip a coin to be quiet or try a
uniformly random color from the remaining palette; with half the
d2-competitors quiet, at least half the palette is uncontested and the
try succeeds with constant probability — O(log n) phases w.h.p.

Color updates must travel two hops to keep remaining palettes current.
Each phase therefore appends a *forwarding round*: every node relays
the colors newly adopted by its neighbors (one message per edge per
round, queue + Busy back-pressure exactly as in the paper: a node with
a backlog broadcasts Busy, and live nodes with a Busy neighbor stay
quiet until the backlog clears).

Robustness note: tries remain verdict-checked (the shared 3-round
primitive), so validity never depends on palette exactness — a stale
palette only costs wasted tries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.congest.pipelining import items_per_message
from repro.core.trying import TryPhaseMixin, iter_messages

_TAG_FORWARD = "fw"
_TAG_BUSY = "by"

#: Rounds per finishing phase (3-round try + 1 forwarding round).
FINISH_PHASE_ROUNDS = 4


class FinishMixin(TryPhaseMixin):
    """Sub-protocol ``finish_coloring``: runs until externally stopped
    (the simulation monitor ends the run once everyone is colored)."""

    def finish_coloring(
        self,
        free_colors: Optional[Set[int]],
        palette: int,
        forward_per_round: int,
    ):
        ctx = self.ctx
        rng = ctx.rng
        remaining: Optional[Set[int]] = (
            set(free_colors) if free_colors is not None else None
        )
        forward_queue: List[int] = []
        busy_neighbor = False
        self.finish_phases = 0

        while True:
            self.finish_phases += 1
            candidate = None
            if self.live and not busy_neighbor and rng.random() < 0.5:
                pool = remaining
                if not pool:
                    pool = {
                        c
                        for c in range(palette)
                        if c not in set(self.nbr_colors.values())
                    }
                if pool:
                    candidate = rng.choice(sorted(pool))

            before = dict(self.nbr_colors)
            yield from self.try_phase(candidate)
            newly_adopted = [
                color
                for nbr, color in self.nbr_colors.items()
                if before.get(nbr) != color
            ]
            forward_queue.extend(newly_adopted)
            if remaining is not None:
                remaining.difference_update(newly_adopted)
                if self.color is not None:
                    remaining = None

            # Forwarding round: relay adopted colors 1 more hop, with
            # Busy back-pressure while the queue is non-empty.
            batch = tuple(forward_queue[:forward_per_round])
            forward_queue = forward_queue[forward_per_round:]
            payload = (_TAG_FORWARD, bool(forward_queue)) + batch
            inbox = yield self.broadcast(payload)
            busy_neighbor = False
            for sender, incoming in inbox.items():
                for message in iter_messages(incoming):
                    if message[0] == _TAG_FORWARD:
                        if message[1]:
                            busy_neighbor = True
                        if remaining is not None:
                            remaining.difference_update(message[2:])


def forward_batch_size(n: int, palette: int, budget_bits: int) -> int:
    """Colors forwardable per round within the bit budget."""
    color_bits = max(1, (palette - 1).bit_length())
    return max(1, items_per_message(color_bits, budget_bits) - 1)
