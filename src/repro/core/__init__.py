"""The paper's randomized contribution (Sec. 2).

Top-level entry points:

- :func:`repro.core.d2color.basic_d2_color` — Algorithm ``d2-Color``
  (Corollary 2.1, O(log³ n) rounds),
- :func:`repro.core.d2color.improved_d2_color` —
  ``Improved-d2-Color`` (Theorem 1.1, O(log Δ log n) rounds).
"""

from repro.core.constants import Constants

__all__ = ["Constants"]
