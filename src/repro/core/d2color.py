"""The top-level randomized algorithms.

- :func:`basic_d2_color` — Algorithm ``d2-Color`` (Sec. 2.2):
  similarity graphs, c0·log n random trials, the Reduce ladder, and a
  final Reduce(c2·log n, 1).  Corollary 2.1: O(log³ n) rounds.
- :func:`improved_d2_color` — ``Improved-d2-Color`` (Sec. 2.6):
  random trials, similarity graphs, the Reduce ladder, then
  LearnPalette + FinishColoring.  Theorem 1.1: O(log Δ·log n) rounds.

Both fall back to the deterministic algorithm when Δ² < c2·log n
(Step 0 of the paper), and both always produce a *valid* coloring
with Δ²+1 colors: every adoption, in every phase, goes through the
verdict-checked try primitive.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.congest.network import Network
from repro.congest.policy import BandwidthPolicy
from repro.congest.node import NodeContext, NodeProgram
from repro.core.constants import Constants
from repro.core.finish import FinishMixin, forward_batch_size
from repro.core.learn_palette import (
    LearnPaletteConfig,
    LearnPaletteMixin,
)
from repro.core.reduce import ReduceMixin, ReduceStats
from repro.core.sampling import filter_width
from repro.core.similarity import SimilarityConfig, SimilarityMixin
from repro.core.trying import all_colored
from repro.results import ColoringResult, PhaseResult


class RandomizedD2Program(
    SimilarityMixin,
    ReduceMixin,
    LearnPaletteMixin,
    FinishMixin,
    NodeProgram,
):
    """One node of d2-Color / Improved-d2-Color."""

    #: Set by the vectorized backend's hybrid kernel after it has run
    #: the random-trials section as array work: ``(rounds, adopts)``
    #: where ``rounds`` is the section's round count for the phase log
    #: and ``adopts`` the final-round adopt messages this node would
    #: have recorded.  ``run`` then skips the generator-executed
    #: trials and replays those observable effects instead.
    _kernel_prefix = None

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        data = ctx.data
        self.constants: Constants = data["constants"]
        self.palette: int = data["palette"]
        self.variant: str = data["variant"]
        self.sim_config: SimilarityConfig = data["sim_config"]
        self.ladder = data["ladder"]
        self.initial_trials: int = data["initial_trials"]
        self.lottery_filter_bits: int = data["lottery_filter_bits"]
        self.learn_config: Optional[LearnPaletteConfig] = data.get(
            "learn_config"
        )
        self.forward_per_round: int = data.get("forward_per_round", 1)
        self.init_tracker()
        self.reduce_stats = ReduceStats()
        self.similarity = None
        self.free_colors = None
        self.phase_log = []

    # ------------------------------------------------------------------

    def _tracked(self, name: str, sub):
        """Delegate to a sub-protocol while counting its rounds."""
        rounds = 0
        try:
            outbox = sub.send(None)
            while True:
                rounds += 1
                inbox = yield outbox
                outbox = sub.send(inbox)
        except StopIteration as stop:
            self.phase_log.append((name, rounds))
            return stop.value

    def _random_trials(self):
        for _ in range(self.initial_trials):
            candidate = None
            if self.live:
                candidate = self.ctx.rng.randrange(self.palette)
            yield from self.try_phase(candidate)

    def _ladder(self):
        for phi, tau in self.ladder:
            yield from self.reduce(phi, tau)

    def _final_reduce_forever(self):
        floor = max(1.0, self.constants.tau_floor(self.ctx.n))
        while True:
            yield from self.reduce(floor, 1.0)

    def _trials_or_prefix(self):
        """The random-trials section, or its kernel-computed replay.

        When the hybrid kernel already executed the trials as array
        work it leaves ``_kernel_prefix`` behind; the generator then
        reproduces the section's observable footprint — the phase-log
        entry and the final-round adopt records — without yielding.
        """
        prefix = self._kernel_prefix
        if prefix is not None:
            self._kernel_prefix = None
            rounds, adopts = prefix
            self.phase_log.append(("trials", rounds))
            self.nbr_colors.update(adopts)
            return
        yield from self._tracked("trials", self._random_trials())

    # ------------------------------------------------------------------

    def run(self):
        if self.variant == "improved":
            # Improved-d2-Color: trials, then similarity graphs.
            yield from self._trials_or_prefix()
            self.similarity = yield from self._tracked(
                "similarity", self.build_similarity(self.sim_config)
            )
            yield from self._tracked("reduce-ladder", self._ladder())
            self.free_colors = yield from self._tracked(
                "learn-palette", self.learn_palette(self.learn_config)
            )
            yield from self.finish_coloring(
                self.free_colors, self.palette, self.forward_per_round
            )
        else:
            # Basic d2-Color: similarity graphs first, then trials.
            self.similarity = yield from self._tracked(
                "similarity", self.build_similarity(self.sim_config)
            )
            yield from self._trials_or_prefix()
            yield from self._tracked("reduce-ladder", self._ladder())
            yield from self._final_reduce_forever()


def _run_randomized(
    graph: nx.Graph,
    variant: str,
    seed: int,
    constants: Optional[Constants],
    policy: Optional[BandwidthPolicy],
    delta: Optional[int],
    max_rounds: int,
    force_exact_similarity: Optional[bool],
    allow_deterministic_fallback: bool,
    force_learn_handlers: Optional[bool] = None,
) -> ColoringResult:
    constants = constants or Constants.practical()
    policy = policy or BandwidthPolicy()
    if delta is None:
        delta = max((d for _, d in graph.degree), default=0)
    n = graph.number_of_nodes()
    palette = delta * delta + 1

    # Step 0: low-degree graphs go to the deterministic algorithm.
    if (
        allow_deterministic_fallback
        and delta * delta < constants.small_graph_threshold(n)
    ):
        from repro.det.det_d2color import deterministic_d2_color

        result = deterministic_d2_color(
            graph, delta=delta, policy=policy
        )
        result.algorithm = f"{variant}-d2color(det-fallback)"
        result.params["deterministic_fallback"] = True
        return result

    budget = policy.budget_bits(n)
    sim_config = SimilarityConfig.derive(
        n, delta, budget, constants, force_exact_similarity
    )
    data = {
        "constants": constants,
        "palette": palette,
        "variant": variant,
        "sim_config": sim_config,
        "ladder": constants.ladder(n, delta),
        "initial_trials": constants.initial_trials(n),
        "lottery_filter_bits": filter_width(delta, n, constants.c11),
        "forward_per_round": forward_batch_size(n, palette, budget),
    }
    if variant == "improved":
        force_small = (
            None
            if force_learn_handlers is None
            else not force_learn_handlers
        )
        data["learn_config"] = LearnPaletteConfig.derive(
            n, delta, budget, constants, force_small=force_small
        )
    inputs = {v: data for v in graph.nodes}

    network = Network(
        graph,
        RandomizedD2Program,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    run = network.run(
        max_rounds=max_rounds,
        stop_when=all_colored,
        raise_on_timeout=False,
    )
    coloring = network.node_colors()
    result = ColoringResult(
        algorithm=f"{variant}-d2color",
        coloring=coloring,
        palette_size=palette,
        rounds=run.metrics.rounds,
        metrics=run.metrics,
        params={
            "seed": seed,
            "constants": constants.name,
            "ladder": data["ladder"],
            "initial_trials": data["initial_trials"],
            "similarity_exact": sim_config.exact,
        },
    )
    # Per-phase rounds (identical schedule at every node up to the
    # open-ended final phase, whose cost is the remainder).
    sample_program = network.programs[next(iter(network.programs))]
    logged = 0
    for name, rounds in sample_program.phase_log:
        result.phases.append(PhaseResult(name, rounds))
        logged += rounds
    final_name = (
        "finish" if variant == "improved" else "final-reduce"
    )
    result.phases.append(
        PhaseResult(final_name, max(0, run.metrics.rounds - logged))
    )
    return result


def improved_d2_color(
    graph: nx.Graph,
    seed: int = 0,
    constants: Optional[Constants] = None,
    policy: Optional[BandwidthPolicy] = None,
    delta: Optional[int] = None,
    max_rounds: int = 500_000,
    force_exact_similarity: Optional[bool] = None,
    allow_deterministic_fallback: bool = True,
    force_learn_handlers: Optional[bool] = None,
) -> ColoringResult:
    """Improved-d2-Color (Theorem 1.1): Δ²+1 colors, O(logΔ·log n)."""
    return _run_randomized(
        graph,
        "improved",
        seed,
        constants,
        policy,
        delta,
        max_rounds,
        force_exact_similarity,
        allow_deterministic_fallback,
        force_learn_handlers,
    )


def basic_d2_color(
    graph: nx.Graph,
    seed: int = 0,
    constants: Optional[Constants] = None,
    policy: Optional[BandwidthPolicy] = None,
    delta: Optional[int] = None,
    max_rounds: int = 500_000,
    force_exact_similarity: Optional[bool] = None,
    allow_deterministic_fallback: bool = True,
) -> ColoringResult:
    """Algorithm d2-Color (Corollary 2.1): Δ²+1 colors, O(log³ n)."""
    return _run_randomized(
        graph,
        "basic",
        seed,
        constants,
        policy,
        delta,
        max_rounds,
        force_exact_similarity,
        allow_deterministic_fallback,
    )
