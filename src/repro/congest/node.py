"""Node programs: per-node protocol logic as Python generators.

A node program's :meth:`NodeProgram.run` is a generator.  Each
``yield outbox`` ends the node's current round; the value the ``yield``
expression evaluates to is the node's inbox for the next round::

    class Example(NodeProgram):
        def run(self):
            inbox = yield {v: ("hello", self.ctx.node)
                           for v in self.ctx.neighbors}
            ...
            return my_output          # halts the node

The outbox is either a dict ``{neighbor: payload}`` (omitted neighbors
receive nothing) or :class:`~repro.congest.message.Broadcast`.
Returning from the generator halts the node; the returned value is the
node's output collected by the network.

Multi-round sub-protocols compose with ``yield from``: a helper
generator that yields outboxes and finally returns a value can be
embedded in a larger protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.congest.message import Broadcast


@dataclass
class NodeContext:
    """Everything a node is allowed to know at the start of a protocol.

    Matches the paper's model assumptions: a node knows its own
    O(log n)-bit ID, its immediate neighbors' IDs (learnable in one
    round), and the global parameters ``n`` and ``delta`` (the paper
    assumes Delta is known, Sec. 2.6).
    """

    node: int
    neighbors: Tuple[int, ...]
    n: int
    delta: int
    rng: random.Random
    #: Per-node protocol input (e.g. an initial coloring); never shared.
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class NodeProgram:
    """Base class for per-node protocols.

    Subclasses implement :meth:`run` as a generator.  Instances are
    single-use: one instance drives one node for one network execution.
    """

    def __init__(self, ctx: NodeContext):
        self.ctx = ctx

    def run(self):
        """Generator body of the protocol (must be overridden)."""
        raise NotImplementedError

    # -- small conveniences shared by all protocols -------------------

    def broadcast(self, payload: Any) -> Broadcast:
        """Outbox value sending ``payload`` to every neighbor."""
        return Broadcast(payload)

    def idle(self, rounds: int = 1):
        """Sub-protocol: stay silent for ``rounds`` rounds.

        Returns the last inbox received (useful when a node waits for
        a scheduled phase boundary).
        """
        inbox = {}
        for _ in range(rounds):
            inbox = yield {}
        return inbox


class FunctionProgram(NodeProgram):
    """Adapter turning a generator function into a node program.

    ``Network(graph, FunctionProgram.factory(fn))`` runs ``fn(ctx)``
    at every node; handy for tests and one-off protocols.
    """

    def __init__(self, ctx: NodeContext, fn):
        super().__init__(ctx)
        self._fn = fn

    def run(self):
        return (yield from self._fn(self.ctx))

    @staticmethod
    def factory(fn):
        def make(ctx: NodeContext) -> "FunctionProgram":
            return FunctionProgram(ctx, fn)

        return make
