"""Run metrics: rounds, message counts, bit counts, violations."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RoundMetrics:
    """Traffic observed in a single synchronous round."""

    round_index: int
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0


@dataclass
class RunMetrics:
    """Aggregate traffic for one :meth:`Network.run` execution."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    budget_bits: int = 0
    violations: int = 0
    worst_violation_bits: int = 0
    per_round: list = field(default_factory=list)

    def observe(self, bits: int) -> None:
        self.total_messages += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits

    def observe_violation(self, bits: int) -> None:
        self.violations += 1
        if bits > self.worst_violation_bits:
            self.worst_violation_bits = bits

    @property
    def compliant(self) -> bool:
        """True when no message exceeded the bandwidth budget."""
        return self.violations == 0

    def merge(self, other: "RunMetrics") -> "RunMetrics":
        """Combine metrics of sequential phases (rounds add up)."""
        merged = RunMetrics(
            rounds=self.rounds + other.rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(
                self.max_message_bits, other.max_message_bits
            ),
            budget_bits=max(self.budget_bits, other.budget_bits),
            violations=self.violations + other.violations,
            worst_violation_bits=max(
                self.worst_violation_bits, other.worst_violation_bits
            ),
        )
        return merged

    def summary(self) -> str:
        return (
            f"rounds={self.rounds} messages={self.total_messages} "
            f"max_msg_bits={self.max_message_bits}/{self.budget_bits} "
            f"violations={self.violations}"
        )

    def publish(self, target=None, prefix: str = "run") -> None:
        """Add this run's totals into a metrics registry (the process
        global by default) under ``<prefix>.*`` names.  Purely
        additive: publishing twice counts the run twice, so callers
        aggregating repeatedly should publish each run exactly once.
        """
        from repro.obs.metrics import registry

        reg = target if target is not None else registry()
        reg.counter(f"{prefix}.runs").inc()
        reg.counter(f"{prefix}.rounds").inc(self.rounds)
        reg.counter(f"{prefix}.messages").inc(self.total_messages)
        reg.counter(f"{prefix}.bits").inc(self.total_bits)
        reg.counter(f"{prefix}.violations").inc(self.violations)
        reg.gauge(f"{prefix}.max_message_bits").set_max(
            self.max_message_bits
        )
