"""Message payloads and bit-size accounting.

CONGEST allows each message to carry O(log n) bits.  To make that a
*measured* property rather than an assumption, every payload sent
through :class:`~repro.congest.network.Network` is sized by
:func:`bit_size` and checked against the active
:class:`~repro.congest.policy.BandwidthPolicy`.

Payload conventions used throughout this repository:

- payloads are (nested) tuples of small non-negative integers, strings
  acting as short tags, booleans, or ``None``;
- node identifiers and colors are plain ints, so their size is their
  binary length;
- a short string tag models a constant-size message-type field.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Framing overhead charged per composite element (length prefix etc.).
_ELEMENT_OVERHEAD_BITS = 2

#: Flat size charged for a tag string character (6 bits covers a
#: protocol alphabet; tags model constant-size message-type fields).
_CHAR_BITS = 6


def int_bits(value: int) -> int:
    """Number of bits to encode ``value`` (sign-and-magnitude).

    ``0`` costs one bit; negative values cost one extra sign bit.
    """
    magnitude = abs(value)
    base = max(1, magnitude.bit_length())
    return base + (1 if value < 0 else 0)


def bit_size(payload: Any) -> int:
    """Return the encoded size of ``payload`` in bits.

    The encoding is a simple self-delimiting scheme: atoms cost their
    binary length, composites cost the sum of their parts plus
    ``_ELEMENT_OVERHEAD_BITS`` per element.  The absolute constants do
    not matter for the O(log n) compliance checks; only the scaling
    does.
    """
    if payload is None:
        return 1
    if payload is True or payload is False:
        return 1
    if isinstance(payload, int):
        return int_bits(payload)
    if isinstance(payload, str):
        return max(1, _CHAR_BITS * len(payload))
    if isinstance(payload, (tuple, list, frozenset, set)):
        total = _ELEMENT_OVERHEAD_BITS
        for element in payload:
            total += _ELEMENT_OVERHEAD_BITS + bit_size(element)
        return total
    raise TypeError(
        f"unsupported payload type {type(payload).__name__!r}; "
        "use tuples of ints, short strings, bools or None"
    )


class Broadcast:
    """Outbox sentinel: send the same ``payload`` to every neighbor.

    Yielding ``Broadcast(p)`` is equivalent to yielding
    ``{v: p for v in neighbors}`` but avoids building the dict.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Any):
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Broadcast({self.payload!r})"


def merged(*payloads: Any) -> tuple:
    """Pack several payloads into one message tuple.

    A convenience for protocols that multiplex logically distinct
    fields into a single per-edge message (CONGEST allows one message
    per edge per round, so concurrent sub-protocols must share it).
    """
    return tuple(payloads)


def total_bits(payloads: Iterable[Any]) -> int:
    """Sum of :func:`bit_size` over ``payloads``."""
    return sum(bit_size(p) for p in payloads)
