"""Synchronous CONGEST-model simulator.

The CONGEST model (Peleg 2000) is a synchronous message-passing model:
the input graph is also the communication network, every node has a
unique O(log n)-bit identifier, and in each round every node may send a
(possibly different) message of at most O(log n) bits to each neighbor.

This package provides:

- :class:`~repro.congest.network.Network` -- the synchronous round
  executor,
- :class:`~repro.congest.node.NodeProgram` -- the base class for
  per-node protocols written as Python generators,
- :class:`~repro.congest.policy.BandwidthPolicy` -- O(log n)-bit
  bandwidth accounting and enforcement,
- :mod:`~repro.congest.pipelining` -- helpers for the "pipelining"
  steps used throughout the paper (multi-round transfers of item lists
  with bit-budget-aware packing).
"""

from repro.congest.errors import (
    BandwidthExceededError,
    CongestError,
    ProtocolViolationError,
)
from repro.congest.message import Broadcast, bit_size
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network, RunResult
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthMode, BandwidthPolicy

__all__ = [
    "BandwidthExceededError",
    "BandwidthMode",
    "BandwidthPolicy",
    "Broadcast",
    "CongestError",
    "Network",
    "NodeContext",
    "NodeProgram",
    "ProtocolViolationError",
    "RoundMetrics",
    "RunMetrics",
    "RunResult",
    "bit_size",
]
