"""Bandwidth policies: how strictly the O(log n)-bit limit is enforced."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class BandwidthMode(enum.Enum):
    """What to do when a message exceeds the per-message bit budget."""

    #: Raise :class:`~repro.congest.errors.BandwidthExceededError`.
    STRICT = "strict"
    #: Record the violation in the run metrics and deliver anyway.
    TRACK = "track"
    #: No budget at all (LOCAL-model behaviour); sizes still measured.
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class BandwidthPolicy:
    """Per-message budget of ``max(min_bits, beta * ceil(log2 n))`` bits.

    ``beta`` is the constant hidden in the paper's "O(log n) bits";
    protocols in this repository fit comfortably in ``beta = 32``
    (a message carries a constant number of IDs/colors, each of
    O(log n) bits).  ``min_bits`` keeps budgets sane on tiny test
    graphs where ``log2 n`` is only a few bits.
    """

    mode: BandwidthMode = BandwidthMode.TRACK
    beta: int = 32
    min_bits: int = 96

    def budget_bits(self, n: int) -> int:
        """Bit budget for a single message on an ``n``-node network."""
        if n <= 1:
            log_n = 1
        else:
            log_n = math.ceil(math.log2(n))
        return max(self.min_bits, self.beta * log_n)

    @staticmethod
    def strict(beta: int = 32, min_bits: int = 96) -> "BandwidthPolicy":
        return BandwidthPolicy(BandwidthMode.STRICT, beta, min_bits)

    @staticmethod
    def track(beta: int = 32, min_bits: int = 96) -> "BandwidthPolicy":
        return BandwidthPolicy(BandwidthMode.TRACK, beta, min_bits)

    @staticmethod
    def unbounded() -> "BandwidthPolicy":
        return BandwidthPolicy(BandwidthMode.UNBOUNDED)
