"""Exception hierarchy for the CONGEST simulator."""


class CongestError(Exception):
    """Base class for all simulator errors."""


class ProtocolViolationError(CongestError):
    """A node program violated the model contract.

    Examples: sending to a non-neighbor, sending two messages over the
    same edge in one round, yielding a non-dict outbox.
    """


class BandwidthExceededError(CongestError):
    """A message exceeded the bandwidth budget under a STRICT policy."""

    def __init__(self, sender, receiver, bits, budget):
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        super().__init__(
            f"message {sender}->{receiver} is {bits} bits; "
            f"budget is {budget} bits"
        )


class NonterminationError(CongestError):
    """The network reached ``max_rounds`` before all programs halted."""

    def __init__(self, max_rounds, still_running):
        self.max_rounds = max_rounds
        self.still_running = still_running
        super().__init__(
            f"{len(still_running)} node(s) still running after "
            f"{max_rounds} rounds (e.g. {sorted(still_running)[:5]})"
        )
