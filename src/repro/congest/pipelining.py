"""Pipelining helpers.

Several steps of the paper "pipeline" a list of items (IDs, colors)
over an edge: one O(log n)-bit message per round until the list is
through.  Theorem B.1 additionally relies on *packing*: when items are
small (e.g. colors from an O(log log n)-size space), many fit into a
single message.  These helpers compute bit-budget-aware chunkings so
protocols stay CONGEST-compliant by construction.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from repro.congest.message import bit_size

#: Bits reserved in each chunk for the protocol tag and sequencing.
_CHUNK_HEADER_BITS = 24


def items_per_message(item_bits: int, budget_bits: int) -> int:
    """How many ``item_bits``-sized items fit into one message.

    Always at least 1: a single item per message is the vanilla
    pipelining the paper uses when items are Θ(log n) bits.
    """
    if item_bits <= 0:
        raise ValueError("item_bits must be positive")
    usable = budget_bits - _CHUNK_HEADER_BITS
    # +2 matches the per-element framing overhead of message.bit_size.
    return max(1, usable // (item_bits + 2))


def plan_chunks(
    items: Sequence[Any], item_bits: int, budget_bits: int
) -> List[Tuple[Any, ...]]:
    """Split ``items`` into message-sized tuples.

    The caller sends one chunk per round; ``len(result)`` is the number
    of rounds the transfer occupies on that edge.
    """
    per_message = items_per_message(item_bits, budget_bits)
    return [
        tuple(items[i : i + per_message])
        for i in range(0, len(items), per_message)
    ]


def rounds_needed(
    num_items: int, item_bits: int, budget_bits: int
) -> int:
    """Rounds to pipeline ``num_items`` items over one edge."""
    if num_items == 0:
        return 0
    per_message = items_per_message(item_bits, budget_bits)
    return -(-num_items // per_message)


def max_item_bits(items: Iterable[Any]) -> int:
    """Size of the largest item, for sizing a chunk plan."""
    sizes = [bit_size(item) for item in items]
    return max(sizes) if sizes else 1


def exchange_lists(ctx, per_neighbor_items, item_bits, budget_bits, tag):
    """Sub-protocol: pipeline a (possibly different) list to each
    neighbor while collecting the lists the neighbors pipeline back.

    ``per_neighbor_items`` maps neighbor -> sequence of items.  All
    nodes must enter this sub-protocol in the same round and it runs
    for a globally agreed number of rounds, which is why the caller
    passes ``budget_bits`` explicitly: every node derives the same
    chunking geometry from the same global parameters.

    Returns ``{neighbor: [items received]}``.  The number of rounds
    consumed is ``rounds_needed(max_len, item_bits, budget_bits)``
    where ``max_len`` is the globally agreed maximum list length,
    taken here as ``ctx.data['pipeline_rounds']`` if present or
    computed from the local maximum otherwise (callers that need exact
    lockstep pass the global bound).
    """
    plans = {
        neighbor: plan_chunks(list(items), item_bits, budget_bits)
        for neighbor, items in per_neighbor_items.items()
    }
    local_rounds = max((len(p) for p in plans.values()), default=0)
    total_rounds = ctx.data.get("pipeline_rounds", local_rounds)
    total_rounds = max(total_rounds, local_rounds)

    received = {neighbor: [] for neighbor in ctx.neighbors}
    for round_i in range(total_rounds):
        outbox = {}
        for neighbor, plan in plans.items():
            if round_i < len(plan):
                outbox[neighbor] = (tag,) + plan[round_i]
        inbox = yield outbox
        for sender, payload in inbox.items():
            if (
                isinstance(payload, tuple)
                and payload
                and payload[0] == tag
            ):
                received[sender].extend(payload[1:])
    return received
