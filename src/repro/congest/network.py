"""The synchronous CONGEST network executor.

:class:`Network` drives one :class:`~repro.congest.node.NodeProgram`
per graph node in lockstep rounds:

1. every running program is resumed with its inbox and yields an
   outbox (``{neighbor: payload}`` or ``Broadcast``),
2. the network validates each message (receiver must be a neighbor)
   and meters its bit size against the bandwidth policy,
3. messages are delivered simultaneously; the next round begins.

A program halts by returning; its return value becomes the node's
output.  The run ends when every program has halted, when the optional
``stop_when`` monitor fires, or after ``max_rounds``.

The round loop itself is pluggable: :meth:`Network.run` delegates to
an execution backend from :mod:`repro.exec` (``reference`` by
default; ``fastpath`` strips metering overhead on large instances).
Backends differ only in mechanics — the delivered messages, outputs
and round counts are identical.

``stop_when`` is a *simulation-level* convenience (it peeks at global
state, which no CONGEST node could): it only stops the simulation
early, e.g. once every node is colored, and is reported as such.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import networkx as nx

from repro.congest.errors import (
    BandwidthExceededError,
    ProtocolViolationError,
)
from repro.congest.message import Broadcast, bit_size
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthMode, BandwidthPolicy
from repro.congest.rng import derive_rng


@dataclass
class RunResult:
    """Outcome of one :meth:`Network.run` execution."""

    outputs: Dict[int, Any]
    metrics: RunMetrics
    halted: bool
    stopped_early: bool = False
    #: Node -> program instance, for post-hoc state inspection in tests.
    programs: Dict[int, NodeProgram] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


class Network:
    """Synchronous CONGEST executor over a networkx graph.

    Parameters
    ----------
    graph:
        The communication graph; node labels must be integers
        (they double as the O(log n)-bit identifiers).
    program_factory:
        Callable ``(NodeContext) -> NodeProgram``.
    seed:
        Root seed; per-node RNGs are derived deterministically.
    policy:
        Bandwidth policy; defaults to TRACK (measure, never fail).
    delta:
        Maximum degree communicated to nodes; defaults to the true
        maximum degree of ``graph``.
    inputs:
        Optional ``{node: dict}`` of per-node protocol inputs.
    """

    def __init__(
        self,
        graph: nx.Graph,
        program_factory: Callable[[NodeContext], NodeProgram],
        seed: Any = 0,
        policy: Optional[BandwidthPolicy] = None,
        delta: Optional[int] = None,
        inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot build a network on an empty graph")
        for node in graph.nodes:
            if not isinstance(node, int):
                raise TypeError(
                    "node labels must be ints (they are the O(log n)-bit "
                    f"identifiers); got {node!r}"
                )
        self.graph = graph
        self.policy = policy or BandwidthPolicy()
        self.n = graph.number_of_nodes()
        self.delta = (
            delta
            if delta is not None
            else max((d for _, d in graph.degree), default=0)
        )
        self._budget = self.policy.budget_bits(self.n)
        inputs = inputs or {}

        self.contexts: Dict[int, NodeContext] = {}
        self.programs: Dict[int, NodeProgram] = {}
        self._generators: Dict[int, Any] = {}
        for node in graph.nodes:
            ctx = NodeContext(
                node=node,
                neighbors=tuple(sorted(graph.neighbors(node))),
                n=self.n,
                delta=self.delta,
                rng=derive_rng(seed, "node", node),
                data=dict(inputs.get(node, {})),
            )
            self.contexts[node] = ctx
            program = program_factory(ctx)
            self.programs[node] = program
            self._generators[node] = program.run()

        self._neighbor_sets = {
            node: frozenset(ctx.neighbors)
            for node, ctx in self.contexts.items()
        }
        self.outputs: Dict[int, Any] = {}
        self._started = False

    # ------------------------------------------------------------------

    def run(
        self,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable[["Network", int], bool]] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
        backend: Any = None,
    ) -> RunResult:
        """Execute rounds until all programs halt (or stop/timeout).

        The round loop is driven by an execution backend from
        :mod:`repro.exec`: ``backend`` may be a name ("reference",
        "fastpath", ...) or an
        :class:`~repro.exec.base.ExecutionBackend` instance; ``None``
        selects the ambient backend installed by
        :func:`repro.exec.use_backend` (default: ``reference``).  All
        backends execute identical CONGEST semantics.

        ``stop_when`` is consulted before the ``max_rounds`` guard, so
        a monitor firing on the exact final admissible round reports
        ``stopped_early`` instead of a timeout.
        """
        from repro.exec import get_backend

        return get_backend(backend).execute(
            self,
            max_rounds=max_rounds,
            stop_when=stop_when,
            raise_on_timeout=raise_on_timeout,
            record_rounds=record_rounds,
        )

    # ------------------------------------------------------------------

    def _deliver(
        self,
        sender: int,
        outbox: Any,
        next_inboxes: Dict[int, Dict[int, Any]],
        metrics: RunMetrics,
        round_metrics: RoundMetrics,
    ) -> None:
        if outbox is None:
            return
        if isinstance(outbox, Broadcast):
            payload = outbox.payload
            bits = bit_size(payload)
            self._meter(sender, "<all>", bits, metrics, round_metrics)
            for receiver in self.contexts[sender].neighbors:
                next_inboxes.setdefault(receiver, {})[sender] = payload
            round_metrics.messages += len(self.contexts[sender].neighbors)
            return
        if not isinstance(outbox, dict):
            raise ProtocolViolationError(
                f"node {sender} yielded {type(outbox).__name__}; "
                "expected dict or Broadcast"
            )
        if not outbox:
            return
        allowed = self._neighbor_sets[sender]
        for receiver, payload in outbox.items():
            if receiver not in allowed:
                raise ProtocolViolationError(
                    f"node {sender} sent to non-neighbor {receiver}"
                )
            bits = bit_size(payload)
            self._meter(sender, receiver, bits, metrics, round_metrics)
            next_inboxes.setdefault(receiver, {})[sender] = payload
            round_metrics.messages += 1

    def _meter(
        self,
        sender: int,
        receiver: Any,
        bits: int,
        metrics: RunMetrics,
        round_metrics: RoundMetrics,
    ) -> None:
        metrics.observe(bits)
        round_metrics.bits += bits
        if bits > round_metrics.max_message_bits:
            round_metrics.max_message_bits = bits
        if bits <= self._budget:
            return
        if self.policy.mode is BandwidthMode.STRICT:
            raise BandwidthExceededError(sender, receiver, bits, self._budget)
        if self.policy.mode is BandwidthMode.TRACK:
            metrics.observe_violation(bits)
        # UNBOUNDED: measured but never flagged.


def run_protocol(
    graph: nx.Graph,
    program_factory: Callable[[NodeContext], NodeProgram],
    seed: Any = 0,
    policy: Optional[BandwidthPolicy] = None,
    delta: Optional[int] = None,
    inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    max_rounds: int = 1_000_000,
    stop_when: Optional[Callable[[Network, int], bool]] = None,
    backend: Any = None,
) -> RunResult:
    """One-shot convenience: build a :class:`Network` and run it."""
    network = Network(
        graph,
        program_factory,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    return network.run(
        max_rounds=max_rounds,
        stop_when=stop_when,
        raise_on_timeout=stop_when is None,
        backend=backend,
    )


def log2_ceil(n: int) -> int:
    """``ceil(log2 n)`` with ``log2_ceil(1) == 1`` (id width floor)."""
    if n <= 2:
        return 1
    return math.ceil(math.log2(n))
