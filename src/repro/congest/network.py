"""The synchronous CONGEST network executor.

:class:`Network` drives one :class:`~repro.congest.node.NodeProgram`
per graph node in lockstep rounds:

1. every running program is resumed with its inbox and yields an
   outbox (``{neighbor: payload}`` or ``Broadcast``),
2. the network validates each message (receiver must be a neighbor)
   and meters its bit size against the bandwidth policy,
3. messages are delivered simultaneously; the next round begins.

A program halts by returning; its return value becomes the node's
output.  The run ends when every program has halted, when the optional
``stop_when`` monitor fires, or after ``max_rounds``.

The round loop itself is pluggable: :meth:`Network.run` delegates to
an execution backend from :mod:`repro.exec` (``reference`` by
default; ``fastpath`` strips metering overhead on large instances).
Backends differ only in mechanics — the delivered messages, outputs
and round counts are identical.

Node materialization is *lazy*: building n ``NodeProgram`` objects, n
``random.Random`` streams and n generator frames is pure overhead for
a run the vectorized backend executes entirely in arrays, so
``__init__`` only validates and records the recipe.  The Python nodes
are built on first access of :attr:`contexts`/:attr:`programs` (or
explicitly via :meth:`materialize`); per-node RNG streams come from
one bulk :func:`~repro.congest.rng.derive_ints` pass, bit-identical to
the per-node derivation.  Kernels that never materialize publish
observable end-state through :meth:`node_colors`/:meth:`node_table`
and leave a deferred write-back that runs if nodes are built later.
One consequence: program-constructor errors (e.g. a missing input key)
surface at first materialization — usually :meth:`run` — rather than
at ``Network(...)`` construction.

``stop_when`` is a *simulation-level* convenience (it peeks at global
state, which no CONGEST node could): it only stops the simulation
early, e.g. once every node is colored, and is reported as such.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
)

import networkx as nx

from repro.congest.errors import (
    BandwidthExceededError,
    ProtocolViolationError,
)
from repro.congest.message import Broadcast, bit_size
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthMode, BandwidthPolicy
from repro.congest.rng import derive_ints
from repro.obs import trace as obs_trace

_EMPTY_INPUT: Dict[str, Any] = {}


class UniformInputs(Mapping):
    """``{node: payload}`` with one shared payload for every node.

    Protocols whose per-node inputs are identical (the trial and
    naive baselines ship the same palette dict to all n nodes) pass
    this instead of a dict-of-dicts: O(1) memory instead of one dict
    per node — at n = 2²⁰ that alone is ~150 MB.  Materialization
    copies the payload per node (``NodeContext`` owns its data), so
    sharing is safe.
    """

    __slots__ = ("_nodes", "_payload")

    def __init__(self, nodes, payload: Dict[str, Any]):
        self._nodes = nodes
        self._payload = payload

    def __getitem__(self, node) -> Dict[str, Any]:
        if node in self._nodes:
            return self._payload
        raise KeyError(node)

    def get(self, node, default=None):
        return self._payload if node in self._nodes else default

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class LazyDraws:
    """Per-node ``randrange`` streams without n live RNG objects.

    ``plan.rngs()`` keeps one ``random.Random`` per node (~2.5 KB
    each — gigabytes at n = 2²⁰) even though a kernel run draws from
    most nodes exactly once.  This draws on-stream at O(1) retained
    state per *re-drawing* node: the first draw of a node creates its
    ``Random``, draws, and discards it; a second draw recreates the
    stream, replays the recorded first draw, and keeps the object
    (few nodes ever reach a second draw at corpus densities).

    Replay is exact for arbitrary per-draw bounds: only the first
    draw is ever replayed, and its bound is recorded.
    """

    __slots__ = ("_seeds", "_counts", "_bounds", "_kept")

    def __init__(self, seeds: List[int]):
        self._seeds = seeds
        self._counts: Dict[int, int] = {}
        self._bounds: Dict[int, int] = {}
        self._kept: Dict[int, random.Random] = {}

    def randrange(self, i: int, bound: int) -> int:
        """The next ``randrange(bound)`` of node index ``i`` —
        bit-identical to ``plan.rngs()[i].randrange(bound)``."""
        rng = self._kept.get(i)
        if rng is None:
            rng = random.Random(self._seeds[i])
            count = self._counts.get(i, 0)
            if count:
                rng.randrange(self._bounds[i])
                self._kept[i] = rng
            else:
                self._bounds[i] = bound
            self._counts[i] = count + 1
            return rng.randrange(bound)
        self._counts[i] += 1
        return rng.randrange(bound)

    def rng(self, i: int) -> random.Random:
        """The advanced stream of node index ``i`` (reconstructed and
        retained if its only draws were discarded)."""
        rng = self._kept.get(i)
        if rng is None:
            rng = random.Random(self._seeds[i])
            if self._counts.get(i, 0):
                rng.randrange(self._bounds[i])
            self._kept[i] = rng
        return rng


@dataclass
class RunResult:
    """Outcome of one :meth:`Network.run` execution."""

    outputs: Dict[int, Any]
    metrics: RunMetrics
    halted: bool
    stopped_early: bool = False
    #: Node -> program instance, for post-hoc state inspection in
    #: tests.  May be a lazy mapping that materializes the Python
    #: nodes on first item access (kernel-executed runs).
    programs: Mapping[int, NodeProgram] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


class _LazyPrograms(Mapping):
    """Read-only ``{node: program}`` view that defers materialization.

    Iteration and ``len`` come from the graph; the Python node objects
    are only built when a program is actually subscripted.
    """

    __slots__ = ("_network",)

    def __init__(self, network: "Network"):
        self._network = network

    def __getitem__(self, node: int) -> NodeProgram:
        return self._network.programs[node]

    def __iter__(self) -> Iterator[int]:
        return iter(self._network.graph.nodes)

    def __len__(self) -> int:
        return self._network.n


class NetworkPlan:
    """Array-level view of a network for vectorized kernels.

    Everything a kernel needs without touching Python node objects:
    the CSR G/G² adjacency (shared with :meth:`Instance.csr`), the
    dense node order, per-node input dicts, and the per-node RNG
    streams — derived in one bulk hashing pass and *shared* with any
    later materialization, so array draws and generator draws always
    advance the same ``random.Random`` objects.
    """

    __slots__ = ("network", "csr", "_seeds", "_rngs", "_lazy")

    def __init__(self, network: "Network", csr):
        self.network = network
        self.csr = csr
        self._seeds: Optional[List[int]] = None
        self._rngs: Optional[List[random.Random]] = None
        self._lazy: Optional[LazyDraws] = None

    @property
    def order(self):
        """Dense node order (sorted labels) shared with the CSR."""
        return self.csr.order

    def rng_seeds(self) -> List[int]:
        """Per-node 64-bit RNG seeds, aligned with :attr:`order`."""
        if self._seeds is None:
            rec = obs_trace.recorder()
            trace_t0 = rec.clock() if rec is not None else 0.0
            self._seeds = derive_ints(
                self.network._seed, "node", self.order
            )
            if rec is not None:
                rec.complete(
                    "plan.bulk_rng",
                    trace_t0,
                    {"n": len(self._seeds)},
                )
        return self._seeds

    def rngs(self) -> List[random.Random]:
        """Per-node RNG streams, aligned with :attr:`order`.

        The same objects end up in ``contexts[v].rng`` if the network
        materializes later, so kernel draws stay on-stream — draws
        consumed through :meth:`lazy_draws` included (the lazy
        scheme reconstructs each advanced stream exactly).
        """
        if self._rngs is None:
            if self._lazy is not None:
                self._rngs = [
                    self._lazy.rng(i) for i in range(self.csr.n)
                ]
            else:
                self._rngs = [
                    random.Random(s) for s in self.rng_seeds()
                ]
        return self._rngs

    def lazy_draws(self) -> LazyDraws:
        """O(1)-retained-state per-node draw streams (see
        :class:`LazyDraws`) — what kernels use instead of
        :meth:`rngs` so an unmaterialized million-node run never
        holds a million ``random.Random`` objects."""
        if self._rngs is not None:
            # Streams already exist: lazy draws must advance them.
            lazy = LazyDraws(self.rng_seeds())
            lazy._kept = dict(enumerate(self._rngs))
            return lazy
        if self._lazy is None:
            self._lazy = LazyDraws(self.rng_seeds())
        return self._lazy

    def input_for(self, node: int) -> Dict[str, Any]:
        """The (unmaterialized) input dict of ``node``; never copied,
        callers must not mutate it."""
        return self.network._inputs.get(node, _EMPTY_INPUT)


class Network:
    """Synchronous CONGEST executor over a networkx graph.

    Parameters
    ----------
    graph:
        The communication graph; node labels must be integers
        (they double as the O(log n)-bit identifiers).
    program_factory:
        Callable ``(NodeContext) -> NodeProgram``.
    seed:
        Root seed; per-node RNGs are derived deterministically.
    policy:
        Bandwidth policy; defaults to TRACK (measure, never fail).
    delta:
        Maximum degree communicated to nodes; defaults to the true
        maximum degree of ``graph``.
    inputs:
        Optional ``{node: dict}`` of per-node protocol inputs.  Read
        at materialization time (copied per node then); mutating it
        between construction and the first run is unsupported.
    """

    def __init__(
        self,
        graph: nx.Graph,
        program_factory: Callable[[NodeContext], NodeProgram],
        seed: Any = 0,
        policy: Optional[BandwidthPolicy] = None,
        delta: Optional[int] = None,
        inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot build a network on an empty graph")
        for node in graph.nodes:
            if not isinstance(node, int):
                raise TypeError(
                    "node labels must be ints (they are the O(log n)-bit "
                    f"identifiers); got {node!r}"
                )
        self.graph = graph
        self.policy = policy or BandwidthPolicy()
        self.n = graph.number_of_nodes()
        self.delta = (
            delta
            if delta is not None
            else max((d for _, d in graph.degree), default=0)
        )
        self._budget = self.policy.budget_bits(self.n)
        self._seed = seed
        self.program_factory = program_factory
        self._inputs: Dict[int, Dict[str, Any]] = inputs or {}

        self._contexts: Optional[Dict[int, NodeContext]] = None
        self._programs: Optional[Dict[int, NodeProgram]] = None
        self._gens: Optional[Dict[int, Any]] = None
        self._nbr_sets: Optional[Dict[int, frozenset]] = None
        self._plan: Optional[NetworkPlan] = None
        #: Kernel-recorded end-state: callables applied to the freshly
        #: built programs if/when the network materializes.
        self._deferred_state: List[Callable[[Dict[int, NodeProgram]], None]] = []
        #: Kernel-published observable tables ({name: () -> dict}).
        self._vector_tables: Dict[str, Callable[[], Dict[int, Any]]] = {}
        self.outputs: Dict[int, Any] = {}
        self._started = False

    # -- lazy materialization ------------------------------------------

    @property
    def materialized(self) -> bool:
        """Whether the Python node objects have been built."""
        return self._programs is not None

    def materialize(self) -> Dict[int, NodeProgram]:
        """Build contexts/programs/generators (idempotent)."""
        if self._programs is None:
            self._build_nodes()
        return self._programs

    def _build_nodes(self) -> None:
        graph = self.graph
        inputs = self._inputs
        if self._plan is not None:
            # Reuse the plan's RNG objects: kernel draws already
            # advanced them, so generator draws continue on-stream.
            rng_of = dict(zip(self._plan.order, self._plan.rngs()))
        else:
            nodes = list(graph.nodes)
            rng_of = dict(
                zip(
                    nodes,
                    (
                        random.Random(s)
                        for s in derive_ints(self._seed, "node", nodes)
                    ),
                )
            )
        contexts: Dict[int, NodeContext] = {}
        programs: Dict[int, NodeProgram] = {}
        gens: Dict[int, Any] = {}
        factory = self.program_factory
        n, delta = self.n, self.delta
        for node in graph.nodes:
            ctx = NodeContext(
                node=node,
                neighbors=tuple(sorted(graph.neighbors(node))),
                n=n,
                delta=delta,
                rng=rng_of[node],
                data=dict(inputs.get(node, _EMPTY_INPUT)),
            )
            contexts[node] = ctx
            program = factory(ctx)
            programs[node] = program
            gens[node] = program.run()
        self._contexts = contexts
        self._programs = programs
        self._gens = gens
        self._nbr_sets = {
            node: frozenset(ctx.neighbors)
            for node, ctx in contexts.items()
        }
        deferred, self._deferred_state = self._deferred_state, []
        for apply_state in deferred:
            apply_state(programs)

    @property
    def contexts(self) -> Dict[int, NodeContext]:
        self.materialize()
        return self._contexts

    @property
    def programs(self) -> Dict[int, NodeProgram]:
        self.materialize()
        return self._programs

    @property
    def _generators(self) -> Dict[int, Any]:
        self.materialize()
        return self._gens

    @property
    def _neighbor_sets(self) -> Dict[int, frozenset]:
        self.materialize()
        return self._nbr_sets

    def plan(self) -> NetworkPlan:
        """The array-level :class:`NetworkPlan` (built on first use)."""
        if self._plan is None:
            from repro.exec import arrays

            rec = obs_trace.recorder()
            trace_t0 = rec.clock() if rec is not None else 0.0
            self._plan = NetworkPlan(
                self, arrays.csr_for_graph(self.graph)
            )
            if rec is not None:
                rec.complete(
                    "plan.build", trace_t0, {"n": self._plan.csr.n}
                )
        return self._plan

    # -- observable end-state without materialization ------------------

    def node_colors(self) -> Dict[int, Optional[int]]:
        """``{node: color}`` after a run.

        Served from a kernel-published array table when the run never
        built Python nodes; otherwise read from the programs.
        """
        table = self._vector_tables.get("color")
        if table is not None and not self.materialized:
            return table()
        return {
            node: program.color
            for node, program in self.programs.items()
        }

    def node_table(self, attr: str) -> Dict[int, Any]:
        """``{node: getattr(program, attr)}`` after a run, served from
        a kernel-published array table when one exists."""
        table = self._vector_tables.get(attr)
        if table is not None and not self.materialized:
            return table()
        return {
            node: getattr(program, attr)
            for node, program in self.programs.items()
        }

    def result_programs(self) -> Mapping[int, NodeProgram]:
        """Programs mapping for a :class:`RunResult` — the real dict
        when built, else a lazy view."""
        if self.materialized:
            return self._programs
        return _LazyPrograms(self)

    # ------------------------------------------------------------------

    def run(
        self,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable[["Network", int], bool]] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
        backend: Any = None,
    ) -> RunResult:
        """Execute rounds until all programs halt (or stop/timeout).

        The round loop is driven by an execution backend from
        :mod:`repro.exec`: ``backend`` may be a name ("reference",
        "fastpath", ...) or an
        :class:`~repro.exec.base.ExecutionBackend` instance; ``None``
        selects the ambient backend installed by
        :func:`repro.exec.use_backend` (default: ``reference``).  All
        backends execute identical CONGEST semantics.

        ``stop_when`` is consulted before the ``max_rounds`` guard, so
        a monitor firing on the exact final admissible round reports
        ``stopped_early`` instead of a timeout.
        """
        from repro.exec import get_backend

        return get_backend(backend).execute(
            self,
            max_rounds=max_rounds,
            stop_when=stop_when,
            raise_on_timeout=raise_on_timeout,
            record_rounds=record_rounds,
        )

    # ------------------------------------------------------------------

    def _deliver(
        self,
        sender: int,
        outbox: Any,
        next_inboxes: Dict[int, Dict[int, Any]],
        metrics: RunMetrics,
        round_metrics: RoundMetrics,
    ) -> None:
        if outbox is None:
            return
        if isinstance(outbox, Broadcast):
            payload = outbox.payload
            bits = bit_size(payload)
            self._meter(sender, "<all>", bits, metrics, round_metrics)
            for receiver in self.contexts[sender].neighbors:
                next_inboxes.setdefault(receiver, {})[sender] = payload
            round_metrics.messages += len(self.contexts[sender].neighbors)
            return
        if not isinstance(outbox, dict):
            raise ProtocolViolationError(
                f"node {sender} yielded {type(outbox).__name__}; "
                "expected dict or Broadcast"
            )
        if not outbox:
            return
        allowed = self._neighbor_sets[sender]
        for receiver, payload in outbox.items():
            if receiver not in allowed:
                raise ProtocolViolationError(
                    f"node {sender} sent to non-neighbor {receiver}"
                )
            bits = bit_size(payload)
            self._meter(sender, receiver, bits, metrics, round_metrics)
            next_inboxes.setdefault(receiver, {})[sender] = payload
            round_metrics.messages += 1

    def _meter(
        self,
        sender: int,
        receiver: Any,
        bits: int,
        metrics: RunMetrics,
        round_metrics: RoundMetrics,
    ) -> None:
        metrics.observe(bits)
        round_metrics.bits += bits
        if bits > round_metrics.max_message_bits:
            round_metrics.max_message_bits = bits
        if bits <= self._budget:
            return
        if self.policy.mode is BandwidthMode.STRICT:
            raise BandwidthExceededError(sender, receiver, bits, self._budget)
        if self.policy.mode is BandwidthMode.TRACK:
            metrics.observe_violation(bits)
        # UNBOUNDED: measured but never flagged.


def run_protocol(
    graph: nx.Graph,
    program_factory: Callable[[NodeContext], NodeProgram],
    seed: Any = 0,
    policy: Optional[BandwidthPolicy] = None,
    delta: Optional[int] = None,
    inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    max_rounds: int = 1_000_000,
    stop_when: Optional[Callable[[Network, int], bool]] = None,
    backend: Any = None,
) -> RunResult:
    """One-shot convenience: build a :class:`Network` and run it."""
    network = Network(
        graph,
        program_factory,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )
    return network.run(
        max_rounds=max_rounds,
        stop_when=stop_when,
        raise_on_timeout=stop_when is None,
        backend=backend,
    )


def log2_ceil(n: int) -> int:
    """``ceil(log2 n)`` with ``log2_ceil(1) == 1`` (id width floor)."""
    if n <= 2:
        return 1
    return math.ceil(math.log2(n))
