"""Deterministic per-node randomness.

Every randomized algorithm in this repository takes a single root seed.
Each node (and each named random stream within a node) derives an
independent :class:`random.Random` by hashing ``(seed, labels...)``.
Same root seed => byte-identical run transcript, which the test suite
asserts.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def derive_int(seed: Any, *labels: Any) -> int:
    """Derive a 64-bit integer from ``seed`` and ``labels`` by hashing."""
    material = repr((seed,) + labels).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: Any, *labels: Any) -> random.Random:
    """Derive an independent RNG stream from ``seed`` and ``labels``."""
    return random.Random(derive_int(seed, *labels))
