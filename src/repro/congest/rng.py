"""Deterministic per-node randomness.

Every randomized algorithm in this repository takes a single root seed.
Each node (and each named random stream within a node) derives an
independent :class:`random.Random` by hashing ``(seed, labels...)``.
Same root seed => byte-identical run transcript, which the test suite
asserts.

:func:`derive_ints` is the bulk form: deriving one stream per node for
an n-node network is a hot path (``Network`` construction and every
vectorized kernel pay it), and hashing n independent ``repr`` strings
through one shared prefix digest is several times faster than n calls
of :func:`derive_int`.  The two are bit-identical by construction —
``repr((seed, label, item))`` is exactly
``"(" + repr(seed) + ", " + repr(label) + ", " + repr(item) + ")"``
for a 3-tuple — and the equivalence is pinned by a hypothesis property
test.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Iterable, List, Union


def derive_int(seed: Any, *labels: Any) -> int:
    """Derive a 64-bit integer from ``seed`` and ``labels`` by hashing."""
    material = repr((seed,) + labels).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: Any, *labels: Any) -> random.Random:
    """Derive an independent RNG stream from ``seed`` and ``labels``."""
    return random.Random(derive_int(seed, *labels))


def derive_ints(
    seed: Any, label: Any, items: Union[int, Iterable[Any]]
) -> List[int]:
    """Bulk :func:`derive_int`: one 64-bit value per item.

    ``items`` is either a count n (equivalent to ``range(n)``) or an
    iterable of per-item labels.  Bit-identical to
    ``[derive_int(seed, label, item) for item in items]``.
    """
    if isinstance(items, int):
        items = range(items)
    prefix = hashlib.sha256(
        f"({seed!r}, {label!r}, ".encode("utf-8")
    )
    out: List[int] = []
    append = out.append
    copy = prefix.copy
    from_bytes = int.from_bytes
    for item in items:
        h = copy()
        h.update(f"{item!r})".encode("utf-8"))
        append(from_bytes(h.digest()[:8], "big"))
    return out


def derive_uniforms(seed: Any, label: Any, items: Union[int, Iterable[Any]]):
    """Bulk uniform floats in [0, 1): ``derive_ints`` scaled by 2⁻⁶⁴.

    Returns a numpy float64 array when numpy is importable, else a
    plain list — callers in the array engine always have numpy.
    """
    ints = derive_ints(seed, label, items)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - container always has numpy
        return [i / 2.0**64 for i in ints]
    return np.asarray(ints, dtype=np.float64) / np.float64(2.0**64)
