"""The trace layer: nested spans and point events to append-only JSONL.

One process-local :class:`TraceRecorder` (installed with
:func:`enable` / :func:`use_recorder`) receives every span and event
emitted through the module-level :func:`span` / :func:`event`
helpers.  The default is *no recorder at all*: both helpers check one
module global and return immediately, so instrumented hot paths pay a
single ``is None`` test when tracing is off.  Tracing is strictly
observational — it reads the monotonic clock and appends to a file,
never touches RNG streams, dict iteration order, or any value that
feeds a fingerprint or digest (pinned by the determinism guard in
``tests/test_obs.py``).

Record kinds (one JSON object per line; schema
:data:`TRACE_SCHEMA_VERSION`)::

    {"kind": "meta",  "schema": 1, "pid": ..., "worker": ..., "t": ...}
    {"kind": "span",  "phase": "B", "id": 7, "parent": 3,
     "name": "sweep.cell", "t": ..., "attrs": {...}}
    {"kind": "span",  "phase": "E", "id": 7, "name": "sweep.cell",
     "t": ..., "dur": ..., "attrs": {...}}
    {"kind": "span",  "phase": "X", "id": 9, "parent": 3,
     "name": "kernel.try_phases", "t": ..., "dur": ..., "attrs": {...}}
    {"kind": "event", "name": "fleet.claim", "t": ..., "attrs": {...}}
    {"kind": "metrics", "t": ..., "data": {...}}

``B``/``E`` bracket a nested span; ``X`` is a *complete* span written
in one record at exit (used by instrumentation sites that cannot wrap
their body in a ``with`` block).  ``t`` is seconds on the process's
``time.perf_counter`` clock — meaningful for durations and ordering
within one trace file, not across hosts.

Readers must tolerate torn trailing lines (a killed worker mid-write)
— :func:`read_trace` reuses the keep-valid-lines repair idiom of
:func:`repro.exec.shards._read_checkpoint` — and a *trace directory*
holding one file per worker process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

TRACE_SCHEMA_VERSION = 1

#: Record kinds a valid trace may contain.
RECORD_KINDS = ("meta", "span", "event", "metrics")

#: Span phases: begin, end, complete (single-record span).
SPAN_PHASES = ("B", "E", "X")


class Span:
    """One live span; a context manager that writes B at entry and E
    at exit.  :meth:`annotate` adds attrs that land on the E record
    (measured results: rounds, status, counts)."""

    __slots__ = ("_recorder", "name", "span_id", "parent", "_attrs",
                 "_exit_attrs", "_t0")

    def __init__(self, recorder, name, span_id, parent, attrs):
        self._recorder = recorder
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self._attrs = attrs
        self._exit_attrs: Dict[str, Any] = {}
        self._t0 = 0.0

    def annotate(self, **attrs) -> "Span":
        self._exit_attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._t0 = self._recorder._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._exit_attrs.setdefault("error", exc_type.__name__)
        self._recorder._exit(self)


class _NullSpan:
    """The span of the no-recorder default: every operation is a
    no-op.  A single shared instance is returned by :func:`span`
    when tracing is off, so the off path allocates nothing."""

    __slots__ = ()

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullRecorder:
    """An explicitly-installed recorder that drops everything.

    Distinct from the *no recorder* default so tests can pin that the
    instrumented paths behave identically whether tracing is absent,
    explicitly nulled, or live.
    """

    def span(self, name: str, attrs: Optional[Dict] = None) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, attrs: Optional[Dict] = None) -> None:
        return None

    def complete(self, name, t0, attrs=None) -> None:
        return None

    def metrics(self, data: Dict) -> None:
        return None

    def clock(self) -> float:
        return time.perf_counter()

    def close(self) -> None:
        return None


class TraceRecorder:
    """Appends trace records to one JSONL file (thread-safe).

    The recorder is *process-local*: sweep/fleet workers in other
    processes do not inherit it (their cells simply go untraced, or
    they install their own recorder into the shared trace directory —
    see :func:`trace_file_path`).  Writes are line-buffered appends;
    a kill mid-write tears at most the final line, which
    :func:`read_trace` repairs by dropping it.
    """

    def __init__(self, path: str, worker: Optional[str] = None):
        self.path = path
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._handle = open(path, "a", encoding="utf-8")
        self._clock = time.perf_counter
        self._write(
            {
                "kind": "meta",
                "schema": TRACE_SCHEMA_VERSION,
                "pid": os.getpid(),
                "worker": worker,
                "t": self._clock(),
            }
        )

    # -- low-level record IO --------------------------------------------

    def clock(self) -> float:
        return self._clock()

    def _write(self, record: Dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _alloc_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    # -- spans and events ------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict] = None) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        return Span(self, name, self._alloc_id(), parent, attrs or {})

    def _enter(self, span: Span) -> float:
        t0 = self._clock()
        record = {
            "kind": "span",
            "phase": "B",
            "id": span.span_id,
            "name": span.name,
            "t": t0,
        }
        if span.parent is not None:
            record["parent"] = span.parent
        if span._attrs:
            record["attrs"] = span._attrs
        self._write(record)
        self._stack().append(span.span_id)
        return t0

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        t1 = self._clock()
        record = {
            "kind": "span",
            "phase": "E",
            "id": span.span_id,
            "name": span.name,
            "t": t1,
            "dur": t1 - span._t0,
        }
        if span._exit_attrs:
            record["attrs"] = span._exit_attrs
        self._write(record)

    def complete(
        self, name: str, t0: float, attrs: Optional[Dict] = None
    ) -> None:
        """A whole span in one record ("X" phase): entered at ``t0``
        (a value previously read from :meth:`clock`), exited now.
        The instrumentation form for sites that cannot restructure
        their body into a ``with`` block."""
        stack = self._stack()
        t1 = self._clock()
        record = {
            "kind": "span",
            "phase": "X",
            "id": self._alloc_id(),
            "name": name,
            "t": t0,
            "dur": t1 - t0,
        }
        if stack:
            record["parent"] = stack[-1]
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def event(self, name: str, attrs: Optional[Dict] = None) -> None:
        record = {
            "kind": "event",
            "name": name,
            "t": self._clock(),
        }
        stack = self._stack()
        if stack:
            record["parent"] = stack[-1]
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def metrics(self, data: Dict) -> None:
        """Embed a metrics-registry snapshot into the trace."""
        self._write(
            {"kind": "metrics", "t": self._clock(), "data": data}
        )

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


# ----------------------------------------------------------------------
# the process-local active recorder

RecorderLike = Union[TraceRecorder, NullRecorder]

#: The active recorder; ``None`` (the default) means tracing is off
#: and the module-level helpers are near-free.
_RECORDER: Optional[RecorderLike] = None


def recorder() -> Optional[RecorderLike]:
    """The active recorder, ``None`` when tracing is off."""
    return _RECORDER


def tracing_active() -> bool:
    """True when a *live* recorder is installed (a
    :class:`NullRecorder` counts as inactive: nothing is written)."""
    return isinstance(_RECORDER, TraceRecorder)


def trace_file_path(trace_dir: str, worker: Optional[str] = None) -> str:
    """The per-process trace file inside a shared trace directory
    (unique per pid + worker, so fleet workers never interleave
    writes into one file)."""
    os.makedirs(trace_dir, exist_ok=True)
    tag = f"-{worker}" if worker else ""
    safe = "".join(
        ch if (ch.isalnum() or ch in "-_.") else "_" for ch in tag
    )
    return os.path.join(trace_dir, f"trace-{os.getpid()}{safe}.jsonl")


def enable(
    path: str, worker: Optional[str] = None
) -> TraceRecorder:
    """Install a :class:`TraceRecorder` writing to ``path`` (a file,
    or a directory — then a per-process file inside it) as this
    process's active recorder.  Returns it; :func:`disable` (or
    installing another) detaches it."""
    global _RECORDER
    path = os.fspath(path)
    if os.path.isdir(path) or path.endswith(os.sep):
        path = trace_file_path(path, worker=worker)
    rec = TraceRecorder(path, worker=worker)
    _RECORDER = rec
    return rec


def disable() -> None:
    """Detach (and close) the active recorder, restoring the
    zero-overhead default."""
    global _RECORDER
    rec = _RECORDER
    _RECORDER = None
    if rec is not None:
        rec.close()


class use_recorder:
    """Context manager installing ``rec`` for the block::

        with use_recorder(TraceRecorder(path)):
            ...

    Restores the previous recorder on exit (without closing either —
    ownership stays with the caller)."""

    def __init__(self, rec: Optional[RecorderLike]):
        self._rec = rec
        self._prev: Optional[RecorderLike] = None

    def __enter__(self) -> Optional[RecorderLike]:
        global _RECORDER
        self._prev = _RECORDER
        _RECORDER = self._rec
        return self._rec

    def __exit__(self, exc_type, exc, tb) -> None:
        global _RECORDER
        _RECORDER = self._prev


# -- the module-level emit helpers (the instrumentation surface) -------


def span(name: str, **attrs) -> Union[Span, _NullSpan]:
    """Open a (nested) span::

        with span("sweep.cell", workload=key, seed=seed) as sp:
            ...
            sp.annotate(rounds=result.rounds)

    With no recorder installed this returns the shared no-op span.
    """
    rec = _RECORDER
    if rec is None:
        return NULL_SPAN
    return rec.span(name, attrs)


def event(name: str, **attrs) -> None:
    """Emit a point event (no duration)."""
    rec = _RECORDER
    if rec is not None:
        rec.event(name, attrs)


# ----------------------------------------------------------------------
# reading and validating traces


def _trace_files(path: str) -> List[str]:
    if os.path.isdir(path):
        return sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".jsonl")
        )
    return [path]


def read_trace(
    path: str, strict: bool = False
) -> List[Dict[str, Any]]:
    """Every valid record of a trace file — or of every ``*.jsonl``
    file in a trace directory — in file order.

    Tolerates torn trailing lines and interleaved garbage exactly like
    the shard-checkpoint reader: invalid lines are dropped, valid ones
    kept.  ``strict=True`` raises :class:`ValueError` on the first
    damaged line instead (for tests that assert a clean write path).
    """
    records: List[Dict[str, Any]] = []
    for file_path in _trace_files(path):
        with open(file_path, "r", encoding="utf-8") as handle:
            content = handle.read()
        lines = content.splitlines()
        torn_tail = bool(content) and not content.endswith("\n")
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError:
                if strict and not (
                    torn_tail and index == len(lines) - 1
                ):
                    raise ValueError(
                        f"damaged trace line {index + 1} in "
                        f"{file_path}"
                    ) from None
                continue
            records.append(record)
    return records


def validate_trace(
    records: List[Dict[str, Any]]
) -> List[str]:
    """Schema problems of an already-read trace (empty = valid).

    Checked per record: a known ``kind``; spans carry ``phase``/
    ``id``/``name``/``t`` (plus ``dur`` on E/X); events carry
    ``name``/``t``; metrics carry ``data``; meta carries a supported
    ``schema``.  Cross-record: every E closes a B of the same id, and
    no B is left unclosed (per source pid, since files interleave).
    """
    problems: List[str] = []
    open_spans: Dict[Tuple, str] = {}

    def check(cond: bool, message: str) -> None:
        if not cond:
            problems.append(message)

    for i, record in enumerate(records):
        where = f"record {i}"
        kind = record.get("kind")
        if kind not in RECORD_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind == "meta":
            check(
                record.get("schema") == TRACE_SCHEMA_VERSION,
                f"{where}: unsupported schema "
                f"{record.get('schema')!r}",
            )
            continue
        if kind == "metrics":
            check(
                isinstance(record.get("data"), dict),
                f"{where}: metrics without a data object",
            )
            continue
        check(
            isinstance(record.get("name"), str),
            f"{where}: {kind} without a name",
        )
        check(
            isinstance(record.get("t"), (int, float)),
            f"{where}: {kind} without a timestamp",
        )
        if kind == "event":
            continue
        phase = record.get("phase")
        if phase not in SPAN_PHASES:
            problems.append(f"{where}: bad span phase {phase!r}")
            continue
        check(
            isinstance(record.get("id"), int),
            f"{where}: span without an id",
        )
        if phase in ("E", "X"):
            check(
                isinstance(record.get("dur"), (int, float)),
                f"{where}: {phase} span without dur",
            )
        key = (record.get("pid"), record.get("id"))
        if phase == "B":
            open_spans[key] = record.get("name", "?")
        elif phase == "E":
            if open_spans.pop(key, None) is None:
                problems.append(
                    f"{where}: E for span {record.get('id')} "
                    "without a matching B"
                )
    for (_, span_id), name in open_spans.items():
        problems.append(
            f"span {span_id} ({name!r}) opened but never closed"
        )
    return problems


def iter_spans(
    records: List[Dict[str, Any]]
) -> Iterator[Dict[str, Any]]:
    """Completed spans (E and X records) of a read trace."""
    for record in records:
        if record.get("kind") == "span" and record.get("phase") in (
            "E",
            "X",
        ):
            yield record
