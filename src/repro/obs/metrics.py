"""The metrics registry: typed counters, gauges, and timers.

One process-global :class:`MetricsRegistry` (:func:`registry`) that
every instrumented subsystem publishes into under a dotted-name
convention::

    cache.hits, cache.misses, cache.csr_builds, cache.square_builds
    shard.cells_executed, shard.cells_resumed, shard.repairs
    fleet.claims, fleet.reclaims, fleet.heartbeats, fleet.releases
    run.rounds, run.messages, run.bits
    process.peak_rss_mb (gauge)

Unlike tracing, the registry is always on — counters are plain int
adds behind one lock, far off any per-round hot path (publishers are
per-run / per-cell / per-lease-event).  Snapshots are plain dicts,
embeddable in a trace (``TraceRecorder.metrics``) and in benchstore
entries (``append_entry(..., obs=...)``).

Merging (:meth:`MetricsRegistry.merge_snapshot`) combines snapshots
from multiple workers or shards: counters add, gauges keep the
maximum (their publishers record high-water marks, e.g. peak RSS),
timers combine count/total/max.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, Optional

try:  # POSIX-only; RSS sampling degrades to 0.0 elsewhere
    import resource
except ImportError:  # pragma: no cover - linux container has it
    resource = None


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-set float; merged across workers by maximum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (peak-RSS style gauges)."""
        value = float(value)
        if value > self.value:
            self.value = value


class Timer:
    """Accumulated wall-clock observations (count/total/max)."""

    __slots__ = ("name", "count", "total", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def time(self) -> "_Timing":
        return _Timing(self)


class _Timing:
    """``with timer.time(): ...`` context manager."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_Timing":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Thread-safe named instrument store.

    Instruments are created on first access and live for the
    registry's lifetime; a name is one kind only (asking for a
    counter named like an existing gauge raises).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("timer", self._timers),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, "counter")
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unique(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        with self._lock:
            instrument = self._timers.get(name)
            if instrument is None:
                self._check_unique(name, "timer")
                instrument = self._timers[name] = Timer(name)
        return instrument

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    # -- snapshots and merging -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view: ``{"counters": {...}, "gauges": {...},
        "timers": {name: {count, total, max}}}`` — JSON-ready."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value
                    for name, g in sorted(self._gauges.items())
                },
                "timers": {
                    name: {
                        "count": t.count,
                        "total": t.total,
                        "max": t.max,
                    }
                    for name, t in sorted(self._timers.items())
                },
            }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one
        (counters add, gauges max, timers combine) — how per-worker
        registries aggregate into one report."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set_max(float(value))
        for name, stats in (snapshot.get("timers") or {}).items():
            timer = self.timer(name)
            timer.count += int(stats.get("count", 0))
            timer.total += float(stats.get("total", 0.0))
            timer.max = max(timer.max, float(stats.get("max", 0.0)))

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._timers)
            )


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Pure-function form of snapshot merging (used by the report
    layer over per-worker ``metrics`` trace records)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


# ----------------------------------------------------------------------
# the process-global registry

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every subsystem publishes into."""
    return _REGISTRY


def peak_rss_mb() -> float:
    """Process-wide peak resident set size in MiB (0.0 if unknown).
    A monotone high-water mark — sample *before* a heavier phase if
    you want the lean phase's own peak."""
    if resource is None:
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    return peak / divisor


def sample_peak_rss(
    target: Optional[MetricsRegistry] = None,
    name: str = "process.peak_rss_mb",
) -> float:
    """Record the current peak RSS into ``target`` (the global
    registry by default) as a max-keeping gauge; returns the MiB
    figure."""
    value = peak_rss_mb()
    reg = target if target is not None else _REGISTRY
    reg.gauge(name).set_max(value)
    return value
