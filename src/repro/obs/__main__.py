"""``python -m repro.obs`` — render a trace file or directory.

Subcommands::

    summary  <trace>   span/event/metrics rollup
    phases   <trace>   per-phase wall/rounds/messages/bits table
    cache    <trace>   cache hit/miss breakdown
    fleet    <trace>   per-shard lease activity
    validate <trace>   schema check (exit 5 on problems)

``--json`` on the view subcommands emits the underlying aggregate
instead of the ascii table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs import report
from repro.obs.trace import read_trace, validate_trace


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="render repro trace files",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("summary", "phases", "cache", "fleet", "validate"):
        cmd = sub.add_parser(name)
        cmd.add_argument("trace", help="trace file or directory")
        if name != "validate":
            cmd.add_argument(
                "--json",
                action="store_true",
                help="emit the aggregate as JSON instead of a table",
            )
    ns = parser.parse_args(argv)

    try:
        records = read_trace(ns.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2

    if ns.command == "validate":
        problems = validate_trace(records)
        if problems:
            for problem in problems:
                print(problem)
            return 5
        print(f"trace ok ({len(records)} records)")
        return 0

    if ns.command == "summary":
        if ns.json:
            print(
                json.dumps(
                    {
                        "spans": report.span_rollup(records),
                        "events": report.event_rollup(records),
                        "metrics": report.merged_metrics(records),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(report.render_summary(records))
    elif ns.command == "phases":
        if ns.json:
            print(
                json.dumps(
                    report.span_rollup(records),
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(report.render_phases(records))
    elif ns.command == "cache":
        if ns.json:
            print(
                json.dumps(
                    report.cache_breakdown(records) or {},
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(report.render_cache(records))
    elif ns.command == "fleet":
        if ns.json:
            print(
                json.dumps(
                    {
                        str(shard): entry
                        for shard, entry in report.fleet_rollup(
                            records
                        )
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(report.render_fleet(records))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
