"""Render read traces into the summary tables the CLI prints.

Pure functions over the record lists produced by
:func:`repro.obs.trace.read_trace`: aggregation here never re-opens
files, so the same helpers serve the CLI, tests, and any later
results-platform consumer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import merge_snapshots
from repro.obs.trace import iter_spans
from repro.util.tables import ascii_table


def merged_metrics(records: List[Dict]) -> Dict[str, Any]:
    """All ``metrics`` records of a trace folded into one snapshot
    (counters add, gauges max, timers combine)."""
    return merge_snapshots(
        *(
            r.get("data", {})
            for r in records
            if r.get("kind") == "metrics"
        )
    )


def span_rollup(records: List[Dict]) -> Dict[str, Dict[str, Any]]:
    """Per-span-name aggregates over completed spans: count, total /
    max wall seconds, and the sums of the numeric result attrs the
    instrumentation annotates (``rounds``, ``messages``, ``bits``,
    ``cells``, ``errors``)."""
    rollup: Dict[str, Dict[str, Any]] = {}
    for record in iter_spans(records):
        name = record.get("name", "?")
        entry = rollup.setdefault(
            name,
            {
                "count": 0,
                "wall": 0.0,
                "max_wall": 0.0,
                "rounds": 0,
                "messages": 0,
                "bits": 0,
                "errors": 0,
            },
        )
        entry["count"] += 1
        dur = float(record.get("dur", 0.0))
        entry["wall"] += dur
        if dur > entry["max_wall"]:
            entry["max_wall"] = dur
        attrs = record.get("attrs") or {}
        for key in ("rounds", "messages", "bits"):
            value = attrs.get(key)
            if isinstance(value, (int, float)):
                entry[key] += int(value)
        if "error" in attrs:
            entry["errors"] += 1
    return rollup


def event_rollup(records: List[Dict]) -> Dict[str, int]:
    """``{event name: count}`` over the trace."""
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event":
            name = record.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
    return counts


def render_summary(records: List[Dict]) -> str:
    """The ``summary`` view: span rollup + event counts + merged
    registry counters."""
    out: List[str] = []
    rollup = span_rollup(records)
    if rollup:
        out.append("spans:")
        out.append(
            ascii_table(
                ["span", "count", "wall_s", "max_s", "errors"],
                [
                    [
                        name,
                        entry["count"],
                        round(entry["wall"], 4),
                        round(entry["max_wall"], 4),
                        entry["errors"],
                    ]
                    for name, entry in sorted(rollup.items())
                ],
            )
        )
    events = event_rollup(records)
    if events:
        out.append("events:")
        out.append(
            ascii_table(
                ["event", "count"],
                [[name, n] for name, n in sorted(events.items())],
            )
        )
    snapshot = merged_metrics(records)
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        out.append("metrics:")
        rows = [[name, value] for name, value in counters.items()]
        rows += [
            [name, round(value, 2)] for name, value in gauges.items()
        ]
        out.append(ascii_table(["metric", "value"], rows))
    if not out:
        return "empty trace"
    return "\n".join(out)


def render_phases(records: List[Dict]) -> str:
    """The ``phases`` view: per-span-name wall / rounds / messages /
    bits — the comparable round/bandwidth accounting per phase."""
    rollup = span_rollup(records)
    if not rollup:
        return "no spans in trace"
    return ascii_table(
        ["phase", "count", "wall_s", "rounds", "messages", "bits"],
        [
            [
                name,
                entry["count"],
                round(entry["wall"], 4),
                entry["rounds"],
                entry["messages"],
                entry["bits"],
            ]
            for name, entry in sorted(rollup.items())
        ],
    )


def cache_breakdown(
    records: List[Dict],
) -> Optional[Dict[str, Any]]:
    """The ``cache.*`` counters of the merged snapshot plus a derived
    hit rate, or ``None`` when the trace recorded no cache metrics."""
    counters = merged_metrics(records).get("counters", {})
    cache = {
        name.split(".", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("cache.")
    }
    if not cache:
        return None
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    lookups = hits + misses
    cache["hit_rate"] = (
        round(hits / lookups, 4) if lookups else 0.0
    )
    return cache


def render_cache(records: List[Dict]) -> str:
    cache = cache_breakdown(records)
    if cache is None:
        return "no cache metrics in trace"
    return ascii_table(
        ["cache metric", "value"],
        [[name, value] for name, value in sorted(cache.items())],
    )


def fleet_rollup(
    records: List[Dict],
) -> List[Tuple[Any, Dict[str, int]]]:
    """Per-shard fleet lease activity from ``fleet.*`` events:
    claims, reclaims, heartbeats, releases, losses."""
    shards: Dict[Any, Dict[str, int]] = {}
    for record in records:
        if record.get("kind") != "event":
            continue
        name = record.get("name", "")
        if not name.startswith("fleet."):
            continue
        attrs = record.get("attrs") or {}
        shard = attrs.get("shard", "?")
        entry = shards.setdefault(
            shard,
            {
                "claims": 0,
                "reclaims": 0,
                "heartbeats": 0,
                "releases": 0,
                "lost": 0,
            },
        )
        key = {
            "fleet.claim": "claims",
            "fleet.reclaim": "reclaims",
            "fleet.heartbeat": "heartbeats",
            "fleet.release": "releases",
            "fleet.lease_lost": "lost",
        }.get(name)
        if key is not None:
            entry[key] += 1
    return sorted(
        shards.items(), key=lambda item: (str(item[0]), item[0] is None)
    )


def render_fleet(records: List[Dict]) -> str:
    rollup = fleet_rollup(records)
    if not rollup:
        return "no fleet events in trace"
    return ascii_table(
        [
            "shard",
            "claims",
            "reclaims",
            "heartbeats",
            "releases",
            "lost",
        ],
        [
            [
                shard,
                entry["claims"],
                entry["reclaims"],
                entry["heartbeats"],
                entry["releases"],
                entry["lost"],
            ]
            for shard, entry in rollup
        ],
    )
