"""repro.obs — unified tracing, metrics, and profiling hooks.

Three layers (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.trace` — nested spans and point events to
  append-only JSONL, zero-overhead when no recorder is installed;
- :mod:`repro.obs.metrics` — the process-global registry of typed
  counters/gauges/timers every subsystem publishes into;
- :mod:`repro.obs.report` — aggregation of read traces into the
  tables ``python -m repro.obs`` renders.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    merge_snapshots,
    peak_rss_mb,
    registry,
    sample_peak_rss,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullRecorder,
    Span,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    disable,
    enable,
    event,
    iter_spans,
    read_trace,
    recorder,
    span,
    trace_file_path,
    tracing_active,
    use_recorder,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullRecorder",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "TraceRecorder",
    "disable",
    "enable",
    "event",
    "iter_spans",
    "merge_snapshots",
    "peak_rss_mb",
    "read_trace",
    "recorder",
    "registry",
    "sample_peak_rss",
    "span",
    "trace_file_path",
    "tracing_active",
    "use_recorder",
    "validate_trace",
]
