"""Independent d2-coloring validity checker.

By default this deliberately does **not** reuse
:mod:`repro.graphs.square`: distance-2 adjacency is recomputed here
with a plain per-node BFS so that a bug in the shared square-graph
code cannot mask itself in the tests
(``tests/test_checker_properties.py`` pins the two against each
other).  Hot paths that check many colorings of the *same* instance —
the conformance sweep, the shard workers — may pass a precomputed
``adjacency`` (the cached G² adjacency from
:meth:`repro.workloads.Instance.d2_adjacency`) to skip the per-call
BFS; the independence guarantee then rests on the property test
rather than on every call.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

try:  # numpy is a required dep, but degrade gracefully without
    import numpy as np
except ImportError:  # pragma: no cover - container always has numpy
    np = None

#: Color values outside this magnitude decline the array fast path
#: (int64 comparisons would be inexact).
_INT64_SAFE = 2**62


@dataclass
class CheckReport:
    """Outcome of a coloring check."""

    valid: bool
    conflicts: List[Tuple[int, int]] = field(default_factory=list)
    uncolored: List[int] = field(default_factory=list)
    out_of_palette: List[int] = field(default_factory=list)
    colors_used: int = 0
    palette_size: Optional[int] = None

    def explain(self) -> str:
        if self.valid:
            return (
                f"valid: {self.colors_used} colors"
                + (
                    f" (palette {self.palette_size})"
                    if self.palette_size is not None
                    else ""
                )
            )
        parts = []
        if self.uncolored:
            parts.append(f"{len(self.uncolored)} uncolored node(s)")
        if self.conflicts:
            parts.append(
                f"{len(self.conflicts)} conflicting pair(s), e.g. "
                f"{self.conflicts[:3]}"
            )
        if self.out_of_palette:
            parts.append(
                f"{len(self.out_of_palette)} node(s) colored outside "
                "the palette"
            )
        return "invalid: " + "; ".join(parts)


def _nodes_within(graph: nx.Graph, source, k: int) -> List:
    """Nodes at distance 1..k from ``source`` via BFS."""
    seen = {source: 0}
    queue = deque([source])
    out = []
    while queue:
        node = queue.popleft()
        depth = seen[node]
        if depth == k:
            continue
        for nbr in graph.neighbors(node):
            if nbr not in seen:
                seen[nbr] = depth + 1
                out.append(nbr)
                queue.append(nbr)
    return out


def _check_csr(csr, coloring, k, palette_size) -> Optional[CheckReport]:
    """Array fast path over CSR rows; ``None`` declines the check
    (self-loops, unsupported ``k``, or colors int64 can't compare
    exactly), in which case the caller falls back to BFS."""
    if np is None or csr.has_selfloops:
        return None
    if k == 1:
        indptr, indices = csr.g_indptr, csr.g_indices
    elif k == 2:
        indptr, indices = csr.g2_indptr, csr.g2_indices
    else:
        return None
    n = csr.n
    order = csr.order
    vals = [coloring.get(v) for v in order]
    for c in vals:
        if c is not None and not (
            isinstance(c, int) and -_INT64_SAFE < c < _INT64_SAFE
        ):
            return None
    colored = np.fromiter(
        (c is not None for c in vals), dtype=bool, count=n
    )
    colors = np.fromiter(
        (0 if c is None else c for c in vals),
        dtype=np.int64,
        count=n,
    )
    uncolored = [v for v, c in zip(order, vals) if c is None]
    out_of_palette: List[int] = []
    if palette_size is not None:
        bad = colored & (
            (colors < 0) | (colors >= palette_size)
        )
        out_of_palette = [
            order[i] for i in np.flatnonzero(bad).tolist()
        ]
    row_of = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(indptr)
    )
    clash = (
        (indices > row_of)
        & colored[row_of]
        & colored[indices]
        & (colors[row_of] == colors[indices])
    )
    conflicts = [
        (order[i], order[j])
        for i, j in zip(
            row_of[clash].tolist(), indices[clash].tolist()
        )
    ]
    colors_used = len(
        {c for c in coloring.values() if c is not None}
    )
    valid = not (uncolored or conflicts or out_of_palette)
    return CheckReport(
        valid=valid,
        conflicts=conflicts,
        uncolored=uncolored,
        out_of_palette=out_of_palette,
        colors_used=colors_used,
        palette_size=palette_size,
    )


def check_distance_k_coloring(
    graph: nx.Graph,
    coloring: Dict[int, Optional[int]],
    k: int,
    palette_size: Optional[int] = None,
    adjacency: Optional[Any] = None,
) -> CheckReport:
    """Check that nodes within distance ``k`` have distinct colors.

    ``adjacency``, when given, is either a precomputed ``{node:
    distance-<=k neighbors}`` map (e.g. the cached G² adjacency for
    ``k == 2``) used instead of the per-node BFS, or a
    :class:`~repro.exec.arrays.CSRAdjacency` of G — the array fast
    path then checks every pair with a handful of vectorized passes
    over the CSR rows (``k`` 1 and 2; anything it cannot replay
    exactly falls back to BFS).  Same verdicts either way; conflict
    pairs from the CSR path come out lexicographically sorted.
    """
    if adjacency is not None and hasattr(adjacency, "g_indptr"):
        report = _check_csr(adjacency, coloring, k, palette_size)
        if report is not None:
            return report
        adjacency = None
    uncolored = [
        v for v in graph.nodes if coloring.get(v) is None
    ]
    out_of_palette = []
    if palette_size is not None:
        out_of_palette = [
            v
            for v in graph.nodes
            if coloring.get(v) is not None
            and not 0 <= coloring[v] < palette_size
        ]
    conflicts: List[Tuple[int, int]] = []
    for v in graph.nodes:
        cv = coloring.get(v)
        if cv is None:
            continue
        within = (
            adjacency[v] if adjacency is not None
            else _nodes_within(graph, v, k)
        )
        for u in within:
            if u <= v:
                continue
            if coloring.get(u) == cv:
                conflicts.append((v, u))
    colors_used = len(
        {c for c in coloring.values() if c is not None}
    )
    valid = not (uncolored or conflicts or out_of_palette)
    return CheckReport(
        valid=valid,
        conflicts=conflicts,
        uncolored=uncolored,
        out_of_palette=out_of_palette,
        colors_used=colors_used,
        palette_size=palette_size,
    )


def check_d2_coloring(
    graph: nx.Graph,
    coloring: Dict[int, Optional[int]],
    palette_size: Optional[int] = None,
    adjacency: Optional[Mapping[int, Iterable[int]]] = None,
) -> CheckReport:
    """Check a distance-2 coloring (the paper's main object)."""
    return check_distance_k_coloring(
        graph, coloring, 2, palette_size, adjacency=adjacency
    )


def check_coloring(
    graph: nx.Graph,
    coloring: Dict[int, Optional[int]],
    palette_size: Optional[int] = None,
) -> CheckReport:
    """Check an ordinary (distance-1) vertex coloring."""
    return check_distance_k_coloring(graph, coloring, 1, palette_size)
