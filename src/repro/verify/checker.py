"""Independent d2-coloring validity checker.

By default this deliberately does **not** reuse
:mod:`repro.graphs.square`: distance-2 adjacency is recomputed here
with a plain per-node BFS so that a bug in the shared square-graph
code cannot mask itself in the tests
(``tests/test_checker_properties.py`` pins the two against each
other).  Hot paths that check many colorings of the *same* instance —
the conformance sweep, the shard workers — may pass a precomputed
``adjacency`` (the cached G² adjacency from
:meth:`repro.workloads.Instance.d2_adjacency`) to skip the per-call
BFS; the independence guarantee then rests on the property test
rather than on every call.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx


@dataclass
class CheckReport:
    """Outcome of a coloring check."""

    valid: bool
    conflicts: List[Tuple[int, int]] = field(default_factory=list)
    uncolored: List[int] = field(default_factory=list)
    out_of_palette: List[int] = field(default_factory=list)
    colors_used: int = 0
    palette_size: Optional[int] = None

    def explain(self) -> str:
        if self.valid:
            return (
                f"valid: {self.colors_used} colors"
                + (
                    f" (palette {self.palette_size})"
                    if self.palette_size is not None
                    else ""
                )
            )
        parts = []
        if self.uncolored:
            parts.append(f"{len(self.uncolored)} uncolored node(s)")
        if self.conflicts:
            parts.append(
                f"{len(self.conflicts)} conflicting pair(s), e.g. "
                f"{self.conflicts[:3]}"
            )
        if self.out_of_palette:
            parts.append(
                f"{len(self.out_of_palette)} node(s) colored outside "
                "the palette"
            )
        return "invalid: " + "; ".join(parts)


def _nodes_within(graph: nx.Graph, source, k: int) -> List:
    """Nodes at distance 1..k from ``source`` via BFS."""
    seen = {source: 0}
    queue = deque([source])
    out = []
    while queue:
        node = queue.popleft()
        depth = seen[node]
        if depth == k:
            continue
        for nbr in graph.neighbors(node):
            if nbr not in seen:
                seen[nbr] = depth + 1
                out.append(nbr)
                queue.append(nbr)
    return out


def check_distance_k_coloring(
    graph: nx.Graph,
    coloring: Dict[int, Optional[int]],
    k: int,
    palette_size: Optional[int] = None,
    adjacency: Optional[Mapping[int, Iterable[int]]] = None,
) -> CheckReport:
    """Check that nodes within distance ``k`` have distinct colors.

    ``adjacency``, when given, is a precomputed ``{node: distance-<=k
    neighbors}`` map (e.g. the cached G² adjacency for ``k == 2``)
    used instead of the per-node BFS — same verdicts, one traversal
    of the instance instead of one per call.
    """
    uncolored = [
        v for v in graph.nodes if coloring.get(v) is None
    ]
    out_of_palette = []
    if palette_size is not None:
        out_of_palette = [
            v
            for v in graph.nodes
            if coloring.get(v) is not None
            and not 0 <= coloring[v] < palette_size
        ]
    conflicts: List[Tuple[int, int]] = []
    for v in graph.nodes:
        cv = coloring.get(v)
        if cv is None:
            continue
        within = (
            adjacency[v] if adjacency is not None
            else _nodes_within(graph, v, k)
        )
        for u in within:
            if u <= v:
                continue
            if coloring.get(u) == cv:
                conflicts.append((v, u))
    colors_used = len(
        {c for c in coloring.values() if c is not None}
    )
    valid = not (uncolored or conflicts or out_of_palette)
    return CheckReport(
        valid=valid,
        conflicts=conflicts,
        uncolored=uncolored,
        out_of_palette=out_of_palette,
        colors_used=colors_used,
        palette_size=palette_size,
    )


def check_d2_coloring(
    graph: nx.Graph,
    coloring: Dict[int, Optional[int]],
    palette_size: Optional[int] = None,
    adjacency: Optional[Mapping[int, Iterable[int]]] = None,
) -> CheckReport:
    """Check a distance-2 coloring (the paper's main object)."""
    return check_distance_k_coloring(
        graph, coloring, 2, palette_size, adjacency=adjacency
    )


def check_coloring(
    graph: nx.Graph,
    coloring: Dict[int, Optional[int]],
    palette_size: Optional[int] = None,
) -> CheckReport:
    """Check an ordinary (distance-1) vertex coloring."""
    return check_distance_k_coloring(graph, coloring, 1, palette_size)
