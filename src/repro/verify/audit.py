"""Bandwidth audit: is an algorithm's traffic CONGEST-compliant?

Experiment E15 runs every algorithm with a TRACK policy and inspects
the resulting metrics through this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.congest.metrics import RunMetrics


@dataclass
class BandwidthReport:
    algorithm: str
    budget_bits: int
    max_message_bits: int
    violations: int
    total_messages: int

    @property
    def compliant(self) -> bool:
        return self.violations == 0

    @property
    def headroom(self) -> float:
        """Fraction of the budget used by the largest message."""
        if self.budget_bits == 0:
            return float("inf")
        return self.max_message_bits / self.budget_bits

    def row(self) -> tuple:
        return (
            self.algorithm,
            self.budget_bits,
            self.max_message_bits,
            f"{self.headroom:.2f}",
            self.violations,
            "yes" if self.compliant else "NO",
        )


def audit_bandwidth(algorithm: str, metrics: RunMetrics) -> BandwidthReport:
    """Summarize one run's bandwidth behaviour."""
    return BandwidthReport(
        algorithm=algorithm,
        budget_bits=metrics.budget_bits,
        max_message_bits=metrics.max_message_bits,
        violations=metrics.violations,
        total_messages=metrics.total_messages,
    )


def audit_many(
    reports: Iterable[BandwidthReport],
) -> List[tuple]:
    """Table rows for a suite of audits (see util.tables)."""
    return [report.row() for report in reports]
