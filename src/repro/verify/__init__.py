"""Independent validity checking and bandwidth auditing."""

from repro.verify.checker import (
    CheckReport,
    check_coloring,
    check_d2_coloring,
    check_distance_k_coloring,
)
from repro.verify.audit import BandwidthReport, audit_bandwidth

__all__ = [
    "BandwidthReport",
    "CheckReport",
    "audit_bandwidth",
    "check_coloring",
    "check_d2_coloring",
    "check_distance_k_coloring",
]
