"""The algorithm registry: one contract for every d2-coloring solver.

The paper's pitch is that wildly different algorithms — the improved
and basic randomized pipelines (Thm 1.1 / Cor 2.1), the deterministic
chain (Thm 1.2), the (1+ε)Δ² splitting pipeline (Thm 1.3), and the
baselines it argues against — all solve the *same* problem: produce a
valid distance-2 coloring under CONGEST bandwidth limits.  This module
states that contract once, as :class:`AlgorithmSpec`, and registers
every entry point behind a normalized ``run(graph, seed, policy)``
signature.

Everything that enumerates algorithms (the conformance harness in
:mod:`repro.conformance`, experiments E15/E18/E20, the benches, the
comparison example) iterates :data:`ALGORITHMS` instead of keeping its
own import list, so registering a new algorithm here automatically
adds it to conformance, experiments, and benchmarks.

Registering a new algorithm (see also docs/CONFORMANCE.md)::

    from repro.registry import AlgorithmSpec, register

    register(AlgorithmSpec(
        name="my-d2color",
        kind="randomized",
        entry_point=lambda graph, seed, policy: my_d2color(
            graph, seed=seed, policy=policy
        ),
        palette_bound=lambda delta: delta * delta + 1,
    ))
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import networkx as nx

from repro.congest.policy import BandwidthPolicy
from repro.results import ColoringResult

#: The admissible values of :attr:`AlgorithmSpec.kind`.
KINDS = ("randomized", "deterministic", "baseline")


def _always(graph: nx.Graph) -> bool:
    return True


def graph_delta(graph: nx.Graph) -> int:
    """Maximum degree of ``graph`` (0 for edgeless graphs)."""
    return max((d for _, d in graph.degree), default=0)


@dataclass(frozen=True)
class AlgorithmSpec:
    """The contract one d2-coloring algorithm promises to satisfy.

    Attributes
    ----------
    name:
        Stable registry key (also used in reports and bench labels).
    kind:
        ``"randomized"`` / ``"deterministic"`` (the paper's
        algorithms) or ``"baseline"`` (oracles and strawmen).
    entry_point:
        Normalized runner ``(graph, seed, policy) -> ColoringResult``.
        Centralized oracles may ignore ``seed`` and ``policy``.
    palette_bound:
        ``delta -> int``: the number of colors the algorithm is
        allowed on a graph of maximum degree ``delta`` (e.g. Δ²+1).
        Conformance asserts ``colors_used <= palette_bound(Δ)``.
    distributed:
        True when the algorithm runs on the CONGEST simulator, so its
        :class:`~repro.congest.metrics.RunMetrics` are metered and the
        bandwidth expectations below apply.
    expects_compliant:
        For distributed specs: no message may exceed the policy's
        per-message bit budget (``metrics.compliant``).
    seed_sensitive:
        True when different seeds may legitimately produce different
        colorings.  Every spec — seeded or not — must be *repeatable*:
        the same seed always yields the identical coloring.
    supports:
        Predicate ``graph -> bool`` restricting the spec to the
        instances it is defined on (default: everything).
    tags:
        Free-form labels sweeps may filter on.  ``"heavy"`` marks
        specs whose round complexity makes them wall-clock-expensive
        on dense instances (E15 skips them; the conformance corpus,
        being tiny, still runs everything).
    description:
        One line for tables and docs.
    """

    name: str
    kind: str
    entry_point: Callable[[nx.Graph, int, Optional[BandwidthPolicy]], ColoringResult]
    palette_bound: Callable[[int], int]
    distributed: bool = True
    expects_compliant: bool = True
    seed_sensitive: bool = True
    supports: Callable[[nx.Graph], bool] = _always
    tags: frozenset = frozenset()
    description: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"kind must be one of {KINDS}; got {self.kind!r}"
            )

    # ------------------------------------------------------------------

    def run(
        self,
        graph: nx.Graph,
        seed: int = 0,
        policy: Optional[BandwidthPolicy] = None,
        backend: Any = None,
    ) -> ColoringResult:
        """Run the algorithm with the normalized signature.

        ``backend`` selects the execution engine (a name or an
        :class:`~repro.exec.base.ExecutionBackend`) for every CONGEST
        simulation inside the algorithm, installed ambiently via
        :func:`repro.exec.use_backend` so multi-phase pipelines switch
        engines without any per-phase plumbing.  ``None`` keeps the
        caller's ambient backend (default: ``reference``).
        """
        if backend is None:
            return self.entry_point(graph, seed, policy)
        from repro.exec import use_backend

        with use_backend(backend):
            return self.entry_point(graph, seed, policy)

    def run_on(
        self,
        instance,
        seed: int = 0,
        policy: Optional[BandwidthPolicy] = None,
        backend: Any = None,
    ) -> ColoringResult:
        """Run on a cached workload :class:`~repro.workloads.Instance`.

        Sweeps and examples that already hold an instance (graph built
        once, Δ / G² memoized) use this instead of re-deriving the
        graph per spec — see :mod:`repro.workloads`.  CSR-born
        instances run on their array-backed view; the nx graph is
        never materialized on this path.
        """
        return self.run(
            instance.graphlike(),
            seed=seed,
            policy=policy,
            backend=backend,
        )

    def applicable(self, graph: nx.Graph) -> bool:
        """True when the spec supports ``graph``."""
        return self.supports(graph)

    def bound_for(
        self, graph: nx.Graph, delta: Optional[int] = None
    ) -> int:
        """Palette bound instantiated for ``graph`` (pass ``delta``
        when it is already known, e.g. from a cached instance)."""
        if delta is None:
            delta = graph_delta(graph)
        return self.palette_bound(delta)


# ----------------------------------------------------------------------
# registration machinery

_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add ``spec`` to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a spec by name (KeyError lists the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def algorithms(
    kind: Optional[str] = None,
    distributed: Optional[bool] = None,
) -> Tuple[AlgorithmSpec, ...]:
    """Registered specs, optionally filtered by kind / distributedness."""
    out = []
    for spec in _REGISTRY.values():
        if kind is not None and spec.kind != kind:
            continue
        if distributed is not None and spec.distributed != distributed:
            continue
        out.append(spec)
    return tuple(out)


# ----------------------------------------------------------------------
# the built-in algorithms.  Entry points import lazily so that
# ``import repro.registry`` stays cheap and dependency cycles are
# impossible (the algorithm modules never import the registry).


def _run_improved(graph, seed, policy):
    from repro.core.d2color import improved_d2_color

    return improved_d2_color(graph, seed=seed, policy=policy)


def _run_basic(graph, seed, policy):
    from repro.core.d2color import basic_d2_color

    return basic_d2_color(graph, seed=seed, policy=policy)


def _run_deterministic(graph, seed, policy):
    from repro.det.det_d2color import deterministic_d2_color

    return deterministic_d2_color(graph, policy=policy)


def _run_eps_d2(graph, seed, policy):
    from repro.det.eps_d2coloring import eps_d2_color

    return eps_d2_color(graph, eps=0.5, policy=policy)


def _run_trial(graph, seed, policy):
    from repro.baselines.trial import trial_d2_color

    return trial_d2_color(graph, seed=seed, policy=policy)


def _run_trial_slack(graph, seed, policy):
    from repro.baselines.trial import trial_d2_color

    return trial_d2_color(graph, seed=seed, eps=1.0, policy=policy)


def _run_naive(graph, seed, policy):
    from repro.baselines.naive import naive_congest_d2_color

    return naive_congest_d2_color(graph, seed=seed, policy=policy)


def _run_greedy(graph, seed, policy):
    from repro.baselines.greedy import greedy_d2_coloring

    return greedy_d2_coloring(graph)


def _run_dsatur(graph, seed, policy):
    from repro.baselines.greedy import dsatur_d2_coloring

    return dsatur_d2_coloring(graph)


def _delta_sq_plus_1(delta: int) -> int:
    return delta * delta + 1


def _eps_sq_bound(eps: float) -> Callable[[int], int]:
    def bound(delta: int) -> int:
        return math.floor((1.0 + eps) * delta * delta) + 1

    return bound


register(
    AlgorithmSpec(
        name="improved-d2color",
        kind="randomized",
        entry_point=_run_improved,
        palette_bound=_delta_sq_plus_1,
        description="Improved-d2-Color (Thm 1.1): O(logΔ·log n) rounds",
    )
)
register(
    AlgorithmSpec(
        name="basic-d2color",
        kind="randomized",
        entry_point=_run_basic,
        palette_bound=_delta_sq_plus_1,
        tags=frozenset({"heavy"}),
        description="d2-Color (Cor 2.1): O(log³ n) rounds",
    )
)
register(
    AlgorithmSpec(
        name="deterministic-d2",
        kind="deterministic",
        entry_point=_run_deterministic,
        palette_bound=_delta_sq_plus_1,
        seed_sensitive=False,
        description="Deterministic chain (Thm 1.2): O(Δ²+log* n)",
    )
)
register(
    AlgorithmSpec(
        name="eps-d2-coloring",
        kind="deterministic",
        entry_point=_run_eps_d2,
        palette_bound=_eps_sq_bound(0.5),
        seed_sensitive=False,
        description="(1+ε)Δ² splitting pipeline (Thm 1.3), ε=0.5",
    )
)
register(
    AlgorithmSpec(
        name="trial",
        kind="baseline",
        entry_point=_run_trial,
        palette_bound=_delta_sq_plus_1,
        description="Random-trial strawman (Sec. 2.1), Δ²+1 palette",
    )
)
register(
    AlgorithmSpec(
        name="trial-slack",
        kind="baseline",
        entry_point=_run_trial_slack,
        palette_bound=_eps_sq_bound(1.0),
        description="Random trials with a slack 2Δ² palette (E16)",
    )
)
register(
    AlgorithmSpec(
        name="naive-g2",
        kind="baseline",
        entry_point=_run_naive,
        palette_bound=_delta_sq_plus_1,
        description="Naive G² simulation paying Θ(Δ)/round (Sec. 1)",
    )
)
register(
    AlgorithmSpec(
        name="greedy-oracle",
        kind="baseline",
        entry_point=_run_greedy,
        palette_bound=_delta_sq_plus_1,
        distributed=False,
        expects_compliant=False,
        seed_sensitive=False,
        description="Centralized first-fit oracle (ground truth)",
    )
)
register(
    AlgorithmSpec(
        name="dsatur-oracle",
        kind="baseline",
        entry_point=_run_dsatur,
        palette_bound=_delta_sq_plus_1,
        distributed=False,
        expects_compliant=False,
        seed_sensitive=False,
        description="Centralized DSATUR-on-G² oracle",
    )
)

def __getattr__(name):
    # ALGORITHMS is computed on access so that specs registered after
    # import (e.g. a new algorithm under test) are included too.
    if name == "ALGORITHMS":
        return tuple(_REGISTRY.values())
    raise AttributeError(
        f"module 'repro.registry' has no attribute {name!r}"
    )


#: Every registered spec, in registration order (live view).
ALGORITHMS: Tuple[AlgorithmSpec, ...]
