"""The built-in workload corpus, registered declaratively.

Three slices, selected by tag:

``"corpus"``
    The standard conformance corpus — the paper's regimes (regular,
    G(n,p), dense clique clusters, Moore graphs where Δ²+1 is tight)
    plus degenerate and adversarial shapes, plus the related-work
    families: power-law and weighted G(n,p), color-sampling instances
    (Halldórsson & Nolin 2021), and congested-relay /
    virtualized-clique instances (Flin, Halldórsson & Nolin 2023).
    Everything is small enough that the full registry × corpus product
    runs in seconds.
``"large"``
    Scale-ups to n in the hundreds/thousands — the ``slow`` tier,
    swept weekly in CI through shard manifests.
``"huge"``
    Opt-in only (never part of a default corpus): G(n, p) at n in the
    several-thousands for throughput work.

Plus ``"named"`` — the extremal instances that used to live as an
ad-hoc table in ``repro.graphs.instances.named_instance`` — and
``"showcase"`` — the head-to-head set ``examples/compare_algorithms``
runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graphs.generators import (
    bipartite_double,
    clique_clusters,
    congested_relay,
    disconnected_mix,
    double_star,
    gnp,
    gnp_fast,
    grid,
    high_girth,
    multileaf,
    power_law,
    random_regular,
    sampling_palette_graph,
    virtualized_clique,
    weighted_gnp,
    with_max_degree,
)
from repro.graphs.instances import (
    cycle5,
    hoffman_singleton,
    petersen,
    projective_plane_incidence,
)
from repro.workloads.spec import (
    WorkloadSpec,
    register_workload,
    workload,
    workloads,
)


def _w(*args, **kwargs) -> WorkloadSpec:
    return register_workload(workload(*args, **kwargs))


# -- degenerate shapes --------------------------------------------------

import networkx as nx  # noqa: E402 - used only by the tiny builders below

_w(
    "path16", "path", lambda seed, n: nx.path_graph(n), {"n": 16},
    "corpus", "degenerate", "sparse", n_bound=16, delta_bound=2,
)
_w(
    "star13", "star", lambda seed, leaves: nx.star_graph(leaves),
    {"leaves": 12},
    "corpus", "degenerate", "tree", n_bound=13, delta_bound=12,
)
_w(
    "singleton", "empty", lambda seed, n: nx.empty_graph(n), {"n": 1},
    "corpus", "degenerate", n_bound=1, delta_bound=0,
)
_w(
    "edgeless8", "empty", lambda seed, n: nx.empty_graph(n), {"n": 8},
    "corpus", "degenerate", "disconnected", n_bound=8, delta_bound=0,
)
_w(
    "double-star6", "double-star",
    lambda seed, leaves: double_star(leaves), {"leaves": 6},
    "corpus", "degenerate", "tree", n_bound=14, delta_bound=7,
)

# -- the paper's core regimes -------------------------------------------

_w(
    "cycle5", "moore", lambda seed: cycle5(), (),
    "corpus", "moore", "tight", "named", "showcase",
    n_bound=5, delta_bound=2,
    description="C5: the Δ=2 Moore graph; G² complete",
)
_w(
    "petersen", "moore", lambda seed: petersen(), (),
    "corpus", "moore", "tight", "named", "showcase",
    n_bound=10, delta_bound=3,
    description="Petersen: the Δ=3 Moore graph; G² complete",
)
_w(
    "rr4_24", "regular",
    lambda seed, degree, n: random_regular(degree, n, seed=seed),
    {"degree": 4, "n": 24},
    "corpus", "regular", n_bound=24, delta_bound=4,
)
_w(
    "gnp24", "gnp", lambda seed, n, p: gnp(n, p, seed=seed),
    {"n": 24, "p": 0.18},
    "corpus", "random", n_bound=24,
)
_w(
    "cliques3x4", "cliques",
    lambda seed, cliques, size: clique_clusters(cliques, size, seed=seed),
    {"cliques": 3, "size": 4},
    "corpus", "dense", n_bound=12, delta_bound=5,
)
_w(
    "grid4x5", "grid", lambda seed, rows, cols: grid(rows, cols),
    {"rows": 4, "cols": 5},
    "corpus", "planar", n_bound=20, delta_bound=4,
)

# -- adversarial shapes -------------------------------------------------

_w(
    "bipartite-double-petersen", "bipartite-double",
    lambda seed: bipartite_double(petersen()), (),
    "corpus", "adversarial", "bipartite", n_bound=20, delta_bound=3,
)
_w(
    "high-girth3_24", "high-girth",
    lambda seed, degree, n, girth: high_girth(
        degree, n, girth=girth, seed=seed
    ),
    {"degree": 3, "n": 24, "girth": 6},
    "corpus", "adversarial", "sparse", n_bound=24, delta_bound=3,
)
_w(
    "disconnected-mix", "disconnected",
    lambda seed: disconnected_mix(seed=seed), (),
    "corpus", "adversarial", "disconnected", n_bound=25, delta_bound=6,
)
_w(
    "multileaf4x5", "multileaf",
    lambda seed, hubs, leaves: multileaf(hubs, leaves),
    {"hubs": 4, "leaves": 5},
    "corpus", "adversarial", "tree", n_bound=24, delta_bound=7,
)

# -- related-work families (2021 color sampling, 2023 relays) -----------

_w(
    "powerlaw24", "powerlaw",
    lambda seed, n, attach: power_law(n, attach=attach, seed=seed),
    {"n": 24, "attach": 2},
    "corpus", "powerlaw", "skewed", n_bound=24,
    description="Holme–Kim power-law: hub-skewed d2-degrees",
)
_w(
    "weighted-gnp24", "weighted-gnp",
    lambda seed, n, p, max_weight: weighted_gnp(
        n, p, seed=seed, max_weight=max_weight
    ),
    {"n": 24, "p": 0.15, "max_weight": 16},
    "corpus", "random", "weighted", n_bound=24,
    description="G(n,p) with seed-deterministic edge weights",
)
_w(
    "relay3x4", "relay",
    lambda seed, cliques, size, relays: congested_relay(
        cliques, size, relays=relays, seed=seed
    ),
    {"cliques": 3, "size": 4, "relays": 2},
    "corpus", "relay", "dense", n_bound=14, delta_bound=5,
    description="Congested relays (FHN 2023): cliques joined only "
    "through relay nodes",
)
_w(
    "virtual-clique5x3", "virtual-clique",
    lambda seed, virtual, parts: virtualized_clique(
        virtual, parts=parts, seed=seed
    ),
    {"virtual": 5, "parts": 3},
    "corpus", "relay", "virtual", n_bound=15, delta_bound=6,
    description="K5 virtualized over 3-node paths (FHN 2023)",
)
_w(
    "sampling-slack24", "sampling",
    lambda seed, n, degree, chords, palette_slack: sampling_palette_graph(
        n, degree=degree, chords=chords, seed=seed
    ),
    {"n": 24, "degree": 4, "chords": 8, "palette_slack": 2.0},
    "corpus", "sampling", "sparse", n_bound=24, delta_bound=12,
    description="Color-sampling regime (HN 2021): d2-degree far "
    "below the Δ²+1 palette",
)

# -- the large (slow) tier ----------------------------------------------

_w(
    "rr4-2048", "regular",
    lambda seed, degree, n: random_regular(degree, n, seed=seed),
    {"degree": 4, "n": 2048},
    "large", "regular", n_bound=2048, delta_bound=4,
)
_w(
    "gnp1500-sparse", "gnp",
    lambda seed, n, p: gnp(n, p, seed=seed),
    {"n": 1500, "p": 2.5 / 1500},
    "large", "random", "sparse", n_bound=1500,
)
_w(
    "grid40x50", "grid", lambda seed, rows, cols: grid(rows, cols),
    {"rows": 40, "cols": 50},
    "large", "planar", n_bound=2000, delta_bound=4,
)
_w(
    "cliques64x6", "cliques",
    lambda seed, cliques, size: clique_clusters(cliques, size, seed=seed),
    {"cliques": 64, "size": 6},
    "large", "dense", n_bound=384, delta_bound=7,
)
_w(
    "multileaf48x40", "multileaf",
    lambda seed, hubs, leaves: multileaf(hubs, leaves),
    {"hubs": 48, "leaves": 40},
    "large", "adversarial", "tree", n_bound=1968, delta_bound=42,
)
_w(
    "powerlaw-600", "powerlaw",
    lambda seed, n, attach, delta_cap: with_max_degree(
        power_law(n, attach=attach, seed=seed), delta_cap, seed=seed
    ),
    {"n": 600, "attach": 3, "delta_cap": 48},
    "large", "powerlaw", "skewed", n_bound=600, delta_bound=48,
)
_w(
    "relay40x8", "relay",
    lambda seed, cliques, size, relays: congested_relay(
        cliques, size, relays=relays, seed=seed
    ),
    {"cliques": 40, "size": 8, "relays": 4},
    "large", "relay", "dense", n_bound=324, delta_bound=40,
)
_w(
    "weighted-gnp800", "weighted-gnp",
    lambda seed, n, p, max_weight: weighted_gnp(
        n, p, seed=seed, max_weight=max_weight
    ),
    {"n": 800, "p": 3.0 / 800, "max_weight": 16},
    "large", "random", "weighted", n_bound=800,
)

# -- huge tier: opt-in only (never in a default corpus) -----------------

_w(
    "gnp-huge-4096", "gnp",
    lambda seed, n, p: gnp(n, p, seed=seed),
    {"n": 4096, "p": 2.5 / 4096},
    "huge", "random", "sparse", n_bound=4096,
    description="Huge sparse G(n,p) for throughput work (opt-in)",
)
_w(
    "gnp-huge-16384", "gnp",
    lambda seed, n, p: gnp_fast(n, p, seed=seed),
    {"n": 16384, "p": 2.5 / 16384},
    "huge", "random", "sparse", n_bound=16384,
    description="Huge sparse G(n,p), n=2^14 — the vectorized engine's "
    "home regime (opt-in)",
)
_w(
    "rr4-huge-16384", "regular",
    lambda seed, degree, n: random_regular(degree, n, seed=seed),
    {"degree": 4, "n": 16384},
    "huge", "regular", n_bound=16384, delta_bound=4,
    description="Huge 4-regular graph for vectorized throughput work "
    "(opt-in)",
)
_w(
    "gnp-huge-65536", "gnp",
    lambda seed, n, p: gnp_fast(n, p, seed=seed),
    {"n": 65536, "p": 2.0 / 65536},
    "huge", "random", "sparse", n_bound=65536,
    description="Huge sparse G(n,p), n=2^16 — pushes toward the "
    "related-work n≈10⁵ regime (opt-in)",
)
_w(
    "gnp-huge-262144", "gnp",
    lambda seed, n, p: gnp_fast(n, p, seed=seed),
    {"n": 262144, "p": 2.0 / 262144},
    "huge", "random", "sparse", n_bound=262144,
    description="Huge sparse G(n,p), n=2^18 — kernel-only territory: "
    "plan-driven runs never build Python nodes (opt-in)",
)
_w(
    "gnp-huge-1048576", "gnp",
    lambda seed, n, p: gnp_fast(n, p, seed=seed),
    {"n": 1048576, "p": 2.0 / 1048576},
    "huge", "random", "sparse", n_bound=1048576,
    description="Huge sparse G(n,p), n=2^20 — the 10⁶-node scaling "
    "target; only sweepable through the vectorized kernels (opt-in)",
)

# -- named extremal instances (ex graphs.instances.named_instance) ------

_w(
    "hoffman-singleton", "moore",
    lambda seed: hoffman_singleton(), (),
    "named", "moore", "tight", "showcase", n_bound=50, delta_bound=7,
    description="Hoffman–Singleton: the Δ=7 Moore graph",
)
_w(
    "pg2_2", "projective",
    lambda seed, q: projective_plane_incidence(q), {"q": 2},
    "named", "girth6", n_bound=14, delta_bound=3,
)
_w(
    "pg2_3", "projective",
    lambda seed, q: projective_plane_incidence(q), {"q": 3},
    "named", "girth6", n_bound=26, delta_bound=4,
)
_w(
    "pg2_5", "projective",
    lambda seed, q: projective_plane_incidence(q), {"q": 5},
    "named", "girth6", n_bound=62, delta_bound=6,
)
_w(
    "rr8-64", "regular",
    lambda seed, degree, n: random_regular(degree, n, seed=seed),
    {"degree": 8, "n": 64},
    "showcase", "regular", n_bound=64, delta_bound=8,
)


# ----------------------------------------------------------------------
# corpus views (the API the conformance shim re-exports)


def build_corpus(
    extra: Sequence[WorkloadSpec] = (),
) -> List[WorkloadSpec]:
    """The standard conformance corpus (the ``"corpus"`` tag slice),
    optionally extended with ``extra`` ad-hoc specs."""
    return list(workloads("corpus")) + list(extra)


def build_large_corpus(
    extra: Sequence[WorkloadSpec] = (),
) -> List[WorkloadSpec]:
    """The ``slow``-tier corpus (the ``"large"`` tag slice)."""
    return list(workloads("large")) + list(extra)


def corpus_names(
    corpus: Optional[Sequence[WorkloadSpec]] = None,
) -> List[str]:
    """Names in corpus order (stable pytest parametrization ids)."""
    return [s.name for s in (corpus or build_corpus())]
