"""Unified workload subsystem: declarative corpus + cached instances.

``repro.workloads`` is the single place the repository's graph
workloads live:

- :mod:`repro.workloads.spec` — the declarative :class:`WorkloadSpec`
  registry (name, family, tags, frozen parameter point, seedable lazy
  builder);
- :mod:`repro.workloads.corpus` — the built-in corpus: the paper's
  regimes, the degenerate/adversarial shapes, the large tier, and the
  related-work families (color sampling 2021, congested relays 2023);
- :mod:`repro.workloads.cache` — the content-addressed
  :class:`InstanceCache` memoizing built graphs and their expensive
  derived artifacts (G² adjacency, Δ, d2-degree tables) so they are
  computed once and shared across every spec × backend × seed cell.

``repro.conformance.scenarios`` is a thin compatibility shim over
this package.  See ``docs/WORKLOADS.md``.
"""

from repro.workloads.cache import (
    CacheStats,
    Instance,
    InstanceCache,
    canonical_nodes_edges,
    install_prebuilt,
    instance_cache,
)
from repro.workloads.spec import (
    WorkloadSpec,
    adhoc,
    get_workload,
    has_workload,
    is_registered_spec,
    params_key,
    register_workload,
    workload,
    workload_names,
    workloads,
)

# Importing the corpus registers the built-in workloads.
from repro.workloads.corpus import (  # noqa: E402
    build_corpus,
    build_large_corpus,
    corpus_names,
)

__all__ = [
    "CacheStats",
    "Instance",
    "InstanceCache",
    "WorkloadSpec",
    "adhoc",
    "build_corpus",
    "build_large_corpus",
    "canonical_nodes_edges",
    "corpus_names",
    "get_workload",
    "has_workload",
    "install_prebuilt",
    "instance_cache",
    "is_registered_spec",
    "params_key",
    "register_workload",
    "workload",
    "workload_names",
    "workloads",
]


def __getattr__(name):
    if name == "WORKLOADS":
        from repro.workloads import spec as _spec

        return _spec.WORKLOADS
    raise AttributeError(
        f"module 'repro.workloads' has no attribute {name!r}"
    )
