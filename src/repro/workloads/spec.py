"""The declarative workload registry.

A :class:`WorkloadSpec` names one graph family instance — a seedable,
lazy builder plus its frozen parameter point — and the registry makes
it addressable everywhere by name: conformance corpora, sweep grids,
shard manifests, benches, and examples all reference workloads by key
instead of embedding graphs.

This supersedes ``repro.conformance.scenarios.Scenario`` (kept as a
thin compatibility shim over this registry) and the ad-hoc instance
lists that used to live in ``repro.graphs.instances``.

Registering a workload (see also docs/WORKLOADS.md)::

    from repro.workloads import WorkloadSpec, register_workload

    register_workload(WorkloadSpec(
        name="gnp64-dense",
        family="gnp",
        builder=lambda seed, n, p: gnp(n, p, seed=seed),
        params=(("n", 64), ("p", 0.3)),
        tags=frozenset({"random", "dense"}),
        n_bound=64,
    ))

Builders must be *deterministic in the seed*: the same ``(name,
params, seed)`` triple always yields the identical graph.  That
contract is what lets :class:`~repro.workloads.cache.InstanceCache`
content-address built instances and lets shard manifests reference
workloads by key while still merging byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

import networkx as nx

#: Canonical frozen form of a parameter point: sorted (key, value)
#: pairs.  Hashable, so it can be part of cache keys.
ParamsKey = Tuple[Tuple[str, Any], ...]


def params_key(params: Any = ()) -> ParamsKey:
    """Canonicalize a params mapping / pair sequence to sorted pairs."""
    if isinstance(params, dict):
        items = params.items()
    else:
        items = tuple(params)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class WorkloadSpec:
    """One named, seedable workload: a graph family at a parameter point.

    Attributes
    ----------
    name:
        Stable registry key (also the scenario label in sweeps/reports).
    family:
        The generator family this instance belongs to ("gnp",
        "moore", "relay", ...) — sweeps group and filter on it.
    builder:
        ``(seed, **params) -> nx.Graph``, deterministic in ``seed``.
    params:
        The frozen parameter point, as canonical sorted pairs (use
        :func:`params_key` or pass a dict to :func:`workload`).
    tags:
        Free-form labels ("corpus", "large", "adversarial", ...).
        The standard conformance corpus is the ``"corpus"``-tagged
        slice, the slow tier the ``"large"``-tagged one.
    n_bound / delta_bound:
        Declared upper bounds on node count / max degree that every
        built graph promises to respect (``None``: no promise).
        Property-tested in ``tests/test_workloads.py``.
    description:
        One line for tables and docs.
    """

    name: str
    family: str
    builder: Callable[..., nx.Graph]
    params: ParamsKey = ()
    tags: FrozenSet[str] = frozenset()
    n_bound: Optional[int] = None
    delta_bound: Optional[int] = None
    description: str = ""

    def param_dict(self) -> Dict[str, Any]:
        """The parameter point as a plain dict."""
        return dict(self.params)

    def graph(self, seed: int = 0) -> nx.Graph:
        """Build the instance for ``seed`` (deterministic)."""
        return self.builder(seed, **self.param_dict())

    # ``Scenario.build`` compatibility: the old dataclass exposed a
    # ``seed -> graph`` callable field of this name.
    def build(self, seed: int = 0) -> nx.Graph:
        return self.graph(seed)

    def with_tags(self, *tags: str) -> "WorkloadSpec":
        """A copy of the spec with ``tags`` added."""
        return replace(self, tags=self.tags | frozenset(tags))

    def cache_key(self, seed: int) -> Tuple[str, ParamsKey, int]:
        """The (family+name, params, seed) identity the cache keys on."""
        return (self.name, self.params, seed)


def workload(
    name: str,
    family: str,
    builder: Callable[..., nx.Graph],
    params: Any = (),
    *tags: str,
    n_bound: Optional[int] = None,
    delta_bound: Optional[int] = None,
    description: str = "",
) -> WorkloadSpec:
    """Convenience constructor: dict params, varargs tags."""
    return WorkloadSpec(
        name=name,
        family=family,
        builder=builder,
        params=params_key(params),
        tags=frozenset(tags),
        n_bound=n_bound,
        delta_bound=delta_bound,
        description=description,
    )


def adhoc(
    name: str,
    build: Callable[[int], nx.Graph],
    tags: Any = frozenset(),
    family: str = "adhoc",
) -> WorkloadSpec:
    """Wrap a bare ``seed -> graph`` callable as an (unregistered)
    spec — the old ``Scenario`` constructor shape."""
    return WorkloadSpec(
        name=name,
        family=family,
        builder=lambda seed: build(seed),
        tags=frozenset(tags),
    )


# ----------------------------------------------------------------------
# registration machinery

_REGISTRY: Dict[str, WorkloadSpec] = {}


def register_workload(
    spec: WorkloadSpec, replace_existing: bool = False
) -> WorkloadSpec:
    """Add ``spec`` to the registry (name must be unused)."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(f"workload {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a spec by name (KeyError lists the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def has_workload(name: str) -> bool:
    return name in _REGISTRY


def is_registered_spec(scenario: Any) -> bool:
    """True when ``scenario`` *is* the registered workload of its
    name (not merely a namesake ad-hoc scenario or a modified copy).

    This single definition decides everywhere — the conformance
    runner, ``grid_cells`` — whether a scenario travels as a workload
    key (cache-shared) or as an embedded node/edge payload.
    """
    name = getattr(scenario, "name", None)
    return name in _REGISTRY and _REGISTRY[name] is scenario


def workloads(*tags: str, family: Optional[str] = None) -> Tuple[WorkloadSpec, ...]:
    """Registered specs carrying *all* of ``tags``, in registration
    order, optionally restricted to one ``family``."""
    want = frozenset(tags)
    out: List[WorkloadSpec] = []
    for spec in _REGISTRY.values():
        if family is not None and spec.family != family:
            continue
        if want <= spec.tags:
            out.append(spec)
    return tuple(out)


def workload_names(*tags: str) -> List[str]:
    """Names of :func:`workloads`, in registration order."""
    return [spec.name for spec in workloads(*tags)]


def __getattr__(name):
    # WORKLOADS is computed on access so that specs registered after
    # import are included too (same idiom as repro.registry).
    if name == "WORKLOADS":
        return tuple(_REGISTRY.values())
    raise AttributeError(
        f"module 'repro.workloads.spec' has no attribute {name!r}"
    )


#: Every registered spec, in registration order (live view).
WORKLOADS: Tuple[WorkloadSpec, ...]
