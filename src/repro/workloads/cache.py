"""Content-addressed instance cache with memoized derived artifacts.

Building a workload graph is cheap; the *derived* artifacts — the G²
adjacency, Δ, and the d2-degree table — are the dominant cost of a
sweep cell now that the round loop is fast.  An :class:`Instance`
bundles a built graph with those artifacts, computed lazily and
exactly once; an :class:`InstanceCache` content-addresses instances by
``(workload, params, seed)`` so every spec × backend × seed cell of a
grid shares the same artifact instead of rebuilding it.

Process-pool workers receive the *prebuilt* artifact, not a rebuild
recipe: :meth:`SweepBackend.map <repro.exec.sweep.SweepBackend.map>`
ships prewarmed instances through the pool initializer
(:func:`install_prebuilt`), and pickling an :class:`Instance`
preserves whatever derived artifacts were already computed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

import networkx as nx

from repro.exec.arrays import (
    CSRAdjacency,
    build_csr_from_payload,
    csr_upper_edges,
    register_csr,
)
from repro.graphs.csrgraph import CSRGraphView
from repro.graphs.square import max_d2_degree as graph_max_d2_degree
from repro.workloads.spec import ParamsKey, get_workload

#: str-chunk size for the streaming digest / payload materialization.
_CHUNK = 65536


def _stream_csr_digest(csr: CSRAdjacency) -> str:
    """sha256 of ``repr((nodes, edges, ((), ())))`` computed straight
    from the CSR arrays, byte-identical to the tuple-repr digest an
    nx-built twin produces — without materializing the tuples.

    Only valid for attribute-free identity-labeled instances (what
    the CSR-direct generators emit); the equivalence is pinned by the
    digest-stability regression test.
    """
    h = hashlib.sha256()
    n = csr.n
    # repr of the node tuple (0, 1, ..., n-1)
    if n == 0:
        h.update(b"((), ")
    elif n == 1:
        h.update(b"((0,), ")
    else:
        h.update(b"((")
        for lo in range(0, n, _CHUNK):
            hi = min(lo + _CHUNK, n)
            tail = ", " if hi < n else "), "
            h.update(
                (", ".join(map(str, range(lo, hi))) + tail)
                .encode("utf-8")
            )
    # repr of the sorted edge tuple ((u0, v0), (u1, v1), ...)
    us, vs = csr_upper_edges(csr)
    m = us.size
    if m == 0:
        h.update(b"(), ")
    elif m == 1:
        h.update(f"(({us[0]}, {vs[0]}),), ".encode("utf-8"))
    else:
        h.update(b"(")
        for lo in range(0, m, _CHUNK):
            hi = min(lo + _CHUNK, m)
            chunk = ", ".join(
                f"({u}, {v})"
                for u, v in zip(
                    us[lo:hi].tolist(), vs[lo:hi].tolist()
                )
            )
            tail = ", " if hi < m else "), "
            h.update((chunk + tail).encode("utf-8"))
    # repr of the empty attrs pair, closing the outer tuple
    h.update(b"((), ()))")
    return h.hexdigest()


def canonical_nodes_edges(
    graph: nx.Graph,
) -> Tuple[Tuple[Any, ...], Tuple[Tuple[Any, Any], ...]]:
    """The canonical picklable payload of a graph: sorted nodes and
    sorted normalized edges (the same form :class:`SweepCell` ships)."""
    nodes = tuple(sorted(graph.nodes))
    edges = tuple(sorted(tuple(sorted(e)) for e in graph.edges))
    return nodes, edges


def canonical_payload(
    nodes: Iterable[Any], edges: Iterable[Tuple[Any, Any]]
) -> Tuple[Tuple[Any, ...], Tuple[Tuple[Any, Any], ...]]:
    """Normalize a caller-supplied payload to the canonical form:
    sorted unique nodes (endpoints included), sorted deduplicated
    undirected edges, self-loops dropped.  Without this, duplicate or
    reversed edges inflate :attr:`Instance.delta` (degree is summed
    over the raw edge list) and the same graph gets two different
    content digests."""
    node_set = set(nodes)
    edge_set = set()
    for u, v in edges:
        if u == v:
            continue
        if v < u:
            u, v = v, u
        edge_set.add((u, v))
        node_set.add(u)
        node_set.add(v)
    return tuple(sorted(node_set)), tuple(sorted(edge_set))


def extract_attrs(
    graph: nx.Graph,
) -> Tuple[Dict[Any, Dict], Dict[Tuple, Dict]]:
    """Node/edge attribute dicts in the separately-carried form
    :class:`Instance` reapplies after a process or shard boundary."""
    node_attrs = {
        v: dict(data) for v, data in graph.nodes(data=True) if data
    }
    edge_attrs = {
        tuple(sorted((u, v))): dict(data)
        for u, v, data in graph.edges(data=True)
        if data
    }
    return node_attrs, edge_attrs


class Instance:
    """One built workload instance plus its memoized derived artifacts.

    Node/edge payloads are canonical (sorted, attribute-free) — the
    same normal form sweep cells have always shipped — so the content
    digest, and therefore every run fingerprint, is independent of
    builder-side dict ordering and of graph attributes.  Attributes
    (edge weights, node positions) are carried *separately* and
    reapplied when the graph is rebuilt after a process or shard
    boundary, so attribute-consuming policies see the same graph on
    every execution path.

    CSR-born instances (built by the CSR-direct generators, arriving
    as a :class:`CSRGraphView`) keep the arrays as the *primary*
    artifact: the node/edge tuples, the content digest, Δ, and the
    d2-degree table all come straight from the CSR, and the nx graph
    is materialized only if a fallback/reference path asks for it.

    The graph returned by :meth:`graph` is the shared cached object —
    callers must not mutate it (copy first; ``named_instance`` does).
    """

    __slots__ = (
        "workload",
        "params",
        "seed",
        "_nodes",
        "_edges",
        "registered",
        "_node_attrs",
        "_edge_attrs",
        "_graph",
        "_graphlike",
        "_csr_born",
        "_delta",
        "_d2_adjacency",
        "_d2_degrees",
        "_square",
        "_csr",
        "_digest",
        "_stats",
    )

    def __init__(
        self,
        workload: str,
        seed: int,
        nodes: Optional[Tuple[Any, ...]],
        edges: Optional[Tuple[Tuple[Any, Any], ...]],
        params: ParamsKey = (),
        graph: Optional[nx.Graph] = None,
        registered: bool = False,
        node_attrs: Optional[Dict[Any, Dict]] = None,
        edge_attrs: Optional[Dict[Tuple, Dict]] = None,
        csr: Optional[CSRAdjacency] = None,
        graphlike: Optional[nx.Graph] = None,
    ):
        if nodes is None and csr is None:
            raise ValueError(
                "an Instance needs a payload or a CSR artifact"
            )
        self.workload = workload
        self.seed = seed
        self._nodes = nodes
        self._edges = edges
        self.params = params
        #: True when built from a *registered* workload spec — the
        #: only instances a worker may resolve by bare (name, seed).
        self.registered = registered
        self._node_attrs = node_attrs or {}
        self._edge_attrs = edge_attrs or {}
        self._graph = graph
        #: The compatibility view a CSR-born instance was built from
        #: (not pickled — rebuilt from the CSR after a boundary).
        self._graphlike = graphlike
        self._csr_born = csr is not None and nodes is None
        self._delta: Optional[int] = None
        self._d2_adjacency: Optional[Dict[Any, frozenset]] = None
        self._d2_degrees: Optional[Dict[Any, int]] = None
        self._square: Optional[nx.Graph] = None
        self._csr = csr
        self._digest: Optional[str] = None
        #: Stats of the owning cache (bound on get/intern/install) so
        #: derivation counters land where the instance lives.
        self._stats: Optional["CacheStats"] = None

    @classmethod
    def from_graph(
        cls,
        workload: str,
        seed: int,
        graph: nx.Graph,
        params: ParamsKey = (),
        registered: bool = False,
    ) -> "Instance":
        born = getattr(graph, "csr_adjacency", None)
        if (
            isinstance(graph, CSRGraphView)
            and born is not None
            and not born.has_selfloops
        ):
            # CSR-born: the arrays ARE the payload (identity labels,
            # no attributes) — nothing tuple-shaped gets built here.
            return cls(
                workload,
                seed,
                None,
                None,
                params,
                registered=registered,
                csr=born,
                graphlike=graph,
            )
        nodes, edges = canonical_nodes_edges(graph)
        node_attrs, edge_attrs = extract_attrs(graph)
        return cls(
            workload,
            seed,
            nodes,
            edges,
            params,
            graph,
            registered=registered,
            node_attrs=node_attrs,
            edge_attrs=edge_attrs,
        )

    # -- the canonical payload (lazy for CSR-born instances) -------------

    @property
    def nodes(self) -> Tuple[Any, ...]:
        if self._nodes is None:
            self._nodes = tuple(range(self._csr.n))
        return self._nodes

    @property
    def edges(self) -> Tuple[Tuple[Any, Any], ...]:
        if self._edges is None:
            us, vs = csr_upper_edges(self._csr)
            self._edges = tuple(zip(us.tolist(), vs.tolist()))
        return self._edges

    # -- identity --------------------------------------------------------

    @property
    def key(self) -> Tuple[str, ParamsKey, int]:
        return (self.workload, self.params, self.seed)

    def digest(self) -> str:
        """Content address: sha256 over the canonical payload plus
        the carried attributes (two topologically equal graphs with
        different edge weights are different content).  CSR-born
        instances stream the identical bytes from the arrays — the
        digest-stability regression test pins the equivalence."""
        if self._digest is None:
            if self._csr_born:
                self._digest = _stream_csr_digest(self._csr)
            else:
                attrs = (
                    tuple(sorted(
                        (v, tuple(sorted(data.items())))
                        for v, data in self._node_attrs.items()
                    )),
                    tuple(sorted(
                        (edge, tuple(sorted(data.items())))
                        for edge, data in self._edge_attrs.items()
                    )),
                )
                payload = repr(
                    (self.nodes, self.edges, attrs)
                ).encode("utf-8")
                self._digest = hashlib.sha256(payload).hexdigest()
        return self._digest

    # -- the graph and its derived artifacts -----------------------------

    def graph(self) -> nx.Graph:
        """A real ``nx.Graph`` for fallback/reference paths
        (memoized; rebuilt — attributes included — from the canonical
        payload after crossing a process boundary).  Hot paths should
        prefer :meth:`graphlike`, which keeps CSR-born instances on
        the array view.  Shared: do not mutate."""
        if self._graph is None:
            graph = nx.Graph()
            if self._csr_born:
                csr = self._csr
                graph.add_nodes_from(range(csr.n))
                us, vs = csr_upper_edges(csr)
                graph.add_edges_from(
                    zip(us.tolist(), vs.tolist())
                )
            else:
                graph.add_nodes_from(self.nodes)
                graph.add_edges_from(self.edges)
                for v, data in self._node_attrs.items():
                    graph.nodes[v].update(data)
                for (u, v), data in self._edge_attrs.items():
                    if graph.has_edge(u, v):
                        graph.edges[u, v].update(data)
            self._graph = graph
            if self._csr is not None:
                # A shipped CSR artifact must be reachable from the
                # rebuilt graph object, not just from the instance.
                register_csr(graph, self._csr)
        return self._graph

    def graphlike(self) -> nx.Graph:
        """The cheapest graph-shaped object for this instance: the
        :class:`CSRGraphView` for CSR-born instances (rebuilt from
        the arrays after a process boundary), the real graph
        otherwise.  Every read-only consumer should take this."""
        if self._csr_born:
            if self._graphlike is None:
                self._graphlike = CSRGraphView(self.csr())
            return self._graphlike
        return self.graph()

    @property
    def n(self) -> int:
        if self._nodes is None:
            return self._csr.n
        return len(self._nodes)

    @property
    def delta(self) -> int:
        """Maximum degree (memoized, computable without the graph)."""
        if self._delta is None:
            if self._csr is not None and not self._csr.has_selfloops:
                self._delta = int(
                    self._csr.degrees.max(initial=0)
                )
            else:
                # Legacy payload walk; counts a self-loop as +2 like
                # nx degree does (the CSR arrays drop self-loops, so
                # they cannot answer this case).
                degree: Dict[Any, int] = {}
                for u, v in self.edges:
                    degree[u] = degree.get(u, 0) + 1
                    degree[v] = degree.get(v, 0) + 1
                self._delta = max(degree.values(), default=0)
        return self._delta

    def square_csr(self) -> CSRAdjacency:
        """The CSR artifact with its G² rows forced, counting the
        derivation exactly once per instance.  Callers that need the
        distance-2 structure (checker fast path, conformance prewarm)
        should take this rather than touching ``csr().g2_indptr``
        directly, so ``stats.square_builds`` keeps meaning "G²
        derivations"."""
        csr = self.csr()
        if not csr.has_square and self._stats is not None:
            self._stats.square_builds += 1
        csr.g2_indptr  # noqa: B018 - forces the lazy derivation
        return csr

    def d2_adjacency(self) -> Dict[Any, frozenset]:
        """``{node: frozenset of d2-neighbors}`` — the G² adjacency
        in the set-of-sets form the conformance paths consume,
        computed once per instance *from the CSR arrays* (the
        set-based :func:`d2_neighborhoods` stays as the reference
        oracle; a parity suite pins the equivalence)."""
        if self._d2_adjacency is None:
            csr = self.square_csr()
            order = csr.order
            indptr = csr.g2_indptr
            indices = csr.g2_indices
            if isinstance(order, range):
                self._d2_adjacency = {
                    v: frozenset(
                        indices[indptr[v]:indptr[v + 1]].tolist()
                    )
                    for v in order
                }
            else:
                self._d2_adjacency = {
                    order[i]: frozenset(
                        order[j]
                        for j in indices[
                            indptr[i]:indptr[i + 1]
                        ].tolist()
                    )
                    for i in range(csr.n)
                }
        return self._d2_adjacency

    def square(self) -> nx.Graph:
        """G² as a graph object (memoized, built from the adjacency)."""
        if self._square is None:
            sq = nx.Graph()
            sq.add_nodes_from(self.nodes)
            for v, nbrs in self.d2_adjacency().items():
                for u in nbrs:
                    sq.add_edge(v, u)
            self._square = sq
        return self._square

    def d2_degrees(self) -> Dict[Any, int]:
        """Per-node d2-degree table (degree in G²)."""
        if self._d2_degrees is None:
            if self._d2_adjacency is not None:
                self._d2_degrees = {
                    v: len(nbrs)
                    for v, nbrs in self._d2_adjacency.items()
                }
            else:
                csr = self.square_csr()
                counts = csr.d2_degrees.tolist()
                self._d2_degrees = {
                    v: counts[i]
                    for i, v in enumerate(csr.order)
                }
        return self._d2_degrees

    def max_d2_degree(self) -> int:
        if self._d2_degrees is not None:
            return max(self._d2_degrees.values(), default=0)
        return graph_max_d2_degree(
            None, adjacency=self.square_csr()
        )

    def csr(self) -> CSRAdjacency:
        """The CSR-form G/G² adjacency arrays the ``vectorized``
        backend and the checker fast path execute over (see
        :mod:`repro.exec.arrays`) — the primary artifact, shipped
        prebuilt through pickling.  Never materializes the nx graph;
        if one already exists it is seeded into the per-graph-object
        registry so kernels running on :meth:`graph` find the same
        arrays."""
        if self._csr is None:
            if self._stats is not None:
                self._stats.csr_builds += 1
            self._csr = build_csr_from_payload(
                self.nodes, self.edges
            )
        if self._graph is not None:
            register_csr(self._graph, self._csr)
        return self._csr

    # -- pickling: ship computed artifacts, drop rebuildable objects -----

    def __getstate__(self):
        return {
            "workload": self.workload,
            "params": self.params,
            "seed": self.seed,
            "nodes": self._nodes,
            "edges": self._edges,
            "registered": self.registered,
            "node_attrs": self._node_attrs,
            "edge_attrs": self._edge_attrs,
            "csr_born": self._csr_born,
            "delta": self._delta,
            "d2_adjacency": self._d2_adjacency,
            "d2_degrees": self._d2_degrees,
            "csr": self._csr,
            "digest": self._digest,
        }

    def __setstate__(self, state):
        self.workload = state["workload"]
        self.params = state["params"]
        self.seed = state["seed"]
        self._nodes = state["nodes"]
        self._edges = state["edges"]
        self.registered = state["registered"]
        self._node_attrs = state["node_attrs"]
        self._edge_attrs = state["edge_attrs"]
        self._graph = None
        self._graphlike = None
        self._csr_born = state.get("csr_born", False)
        self._square = None
        self._delta = state["delta"]
        self._d2_adjacency = state["d2_adjacency"]
        self._d2_degrees = state["d2_degrees"]
        self._csr = state.get("csr")
        self._digest = state["digest"]
        self._stats = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        m = (
            self._csr.g_indices.size // 2
            if self._edges is None
            else len(self._edges)
        )
        return (
            f"<Instance {self.workload!r} seed={self.seed} "
            f"n={self.n} m={m}>"
        )


@dataclass
class CacheStats:
    """Counters exposed for tests and the bench assertions."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    square_builds: int = 0
    csr_builds: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "square_builds": self.square_builds,
            "csr_builds": self.csr_builds,
        }

    def delta(self, baseline: Dict[str, int]) -> "CacheStats":
        """The activity since ``baseline`` (a prior :meth:`snapshot`)
        as a fresh :class:`CacheStats` — what a sweep attributes to
        itself when the cache is shared across runs."""
        current = self.snapshot()
        return CacheStats(
            **{
                name: current[name] - baseline.get(name, 0)
                for name in current
            }
        )

    def add(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one (shard
        merge)."""
        self.hits += other.hits
        self.misses += other.misses
        self.builds += other.builds
        self.square_builds += other.square_builds
        self.csr_builds += other.csr_builds

    def publish(self, target=None, prefix: str = "cache") -> None:
        """Add the counters into a metrics registry (the process
        global by default) under ``<prefix>.<counter>`` names.  Like
        :meth:`RunMetrics.publish`, additive per call — publish deltas
        (:meth:`delta`) when sampling a long-lived cache repeatedly."""
        from repro.obs.metrics import registry

        reg = target if target is not None else registry()
        for name, value in self.snapshot().items():
            if value:
                reg.counter(f"{prefix}.{name}").inc(value)


class InstanceCache:
    """Memoizing store of built :class:`Instance` objects.

    Primary keys are ``(workload name, params, seed)`` — valid
    because the registry contract makes builders deterministic in the
    seed.  Ad-hoc graphs (never registered) are interned under their
    content digest instead, so two different ad-hoc instances can
    share a display name without colliding.  Installed (prebuilt)
    instances are additionally reachable by ``(name, seed)`` alone,
    so a pool worker resolves workload-keyed cells even when the
    workload was registered only in the parent process.

    ``max_instances`` bounds the store (least-recently-used instance
    evicted, with all its alias keys); the default keeps long-lived
    processes from accumulating every large-tier G² ever derived.
    """

    def __init__(self, max_instances: Optional[int] = 256):
        #: primary key -> instance, in LRU order.
        self._primary: "OrderedDict[Tuple, Instance]" = OrderedDict()
        #: alias key -> primary key.
        self._aliases: Dict[Tuple, Tuple] = {}
        #: primary key -> alias keys, for eviction.
        self._alias_index: Dict[Tuple, Tuple[Tuple, ...]] = {}
        #: advisory prewarm markers (see :meth:`mark_prewarmed`).
        self._prewarmed: set = set()
        self.max_instances = max_instances
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._primary)

    def clear(self) -> None:
        self._primary.clear()
        self._aliases.clear()
        self._alias_index.clear()
        self._prewarmed.clear()
        self.stats = CacheStats()

    # -- the keyed store -------------------------------------------------

    def _lookup(self, key: Tuple) -> Optional[Instance]:
        primary = self._aliases.get(key, key)
        hit = self._primary.get(primary)
        if hit is not None:
            self._primary.move_to_end(primary)
        return hit

    def _store(
        self,
        primary: Tuple,
        instance: Instance,
        aliases: Tuple[Tuple, ...] = (),
    ) -> Instance:
        instance._stats = self.stats
        # Re-storing a primary replaces its alias set: the previous
        # aliases would otherwise leak — surviving the primary's
        # eviction and resolving to a dead key forever.
        for stale in self._alias_index.pop(primary, ()):
            if self._aliases.get(stale) == primary:
                del self._aliases[stale]
        self._primary[primary] = instance
        self._primary.move_to_end(primary)
        self._alias_index[primary] = aliases
        for alias in aliases:
            self._aliases[alias] = primary
        while (
            self.max_instances is not None
            and len(self._primary) > self.max_instances
        ):
            evicted, _ = self._primary.popitem(last=False)
            for alias in self._alias_index.pop(evicted, ()):
                self._aliases.pop(alias, None)
        return instance

    # -- lookup / build --------------------------------------------------

    def get(self, workload, seed: int = 0) -> Instance:
        """The cached instance for a workload (building, once, on
        miss).  ``workload`` is a spec or a registry name.

        An unregistered *name* still resolves if a prebuilt
        registered instance was :meth:`install`-ed under it (the
        worker-pool path).  An unregistered *spec object* (e.g. a
        ``Scenario``-shim ad-hoc spec) is content-interned instead of
        keyed by name, so two ad-hoc specs sharing a name can never
        alias each other's graphs.
        """
        from repro.workloads.spec import is_registered_spec

        if isinstance(workload, str):
            try:
                spec = get_workload(workload)
            except KeyError:
                hit = self._lookup(("installed", workload, seed))
                if hit is not None:
                    self.stats.hits += 1
                    return hit
                raise
        else:
            spec = workload
        if not is_registered_spec(spec):
            return self.intern_graph(
                spec.name, seed, spec.graph(seed)
            )
        key = (spec.name, spec.params, seed)
        hit = self._lookup(key)
        if hit is not None:
            self.stats.hits += 1
            return hit
        self.stats.misses += 1
        self.stats.builds += 1
        instance = Instance.from_graph(
            spec.name, seed, spec.graph(seed), spec.params,
            registered=True,
        )
        return self._store(key, instance)

    def intern(
        self,
        name: str,
        seed: int,
        nodes: Tuple[Any, ...],
        edges: Tuple[Tuple[Any, Any], ...],
        node_attrs: Optional[Dict[Any, Dict]] = None,
        edge_attrs: Optional[Dict[Tuple, Dict]] = None,
    ) -> Instance:
        """The cached instance for an ad-hoc (unregistered) payload,
        content-addressed so equal payloads share artifacts.

        The payload is canonicalized first (duplicate/reversed edges
        and self-loops would otherwise inflate ``delta`` and split
        the content address), and node/edge attributes are carried on
        the instance so they survive pickling to workers and shards.
        """
        nodes, edges = canonical_payload(nodes, edges)
        node_attrs = {
            v: dict(data)
            for v, data in (node_attrs or {}).items()
            if data
        }
        edge_attrs = {
            tuple(sorted((u, v))): dict(data)
            for (u, v), data in (edge_attrs or {}).items()
            if data and u != v
        }
        probe = Instance(
            name,
            seed,
            nodes,
            edges,
            node_attrs=node_attrs,
            edge_attrs=edge_attrs,
        )
        key = ("adhoc", name, seed, probe.digest())
        hit = self._lookup(key)
        if hit is not None:
            self.stats.hits += 1
            return hit
        self.stats.misses += 1
        return self._store(key, probe)

    def intern_graph(
        self, name: str, seed: int, graph: nx.Graph
    ) -> Instance:
        nodes, edges = canonical_nodes_edges(graph)
        node_attrs, edge_attrs = extract_attrs(graph)
        instance = self.intern(
            name,
            seed,
            nodes,
            edges,
            node_attrs=node_attrs,
            edge_attrs=edge_attrs,
        )
        born = getattr(graph, "csr_adjacency", None)
        selfloop_free = (
            not born.has_selfloops
            if born is not None
            else nx.number_of_selfloops(graph) == 0
        )
        if instance._graph is None and selfloop_free:
            # Self-loop graphs were canonicalized away from the
            # caller's object — let graph() rebuild those instead.
            instance._graph = graph
            if instance._csr is None and born is not None:
                instance._csr = born
        return instance

    # -- prewarm bookkeeping ---------------------------------------------

    def mark_prewarmed(self, tag: Tuple) -> None:
        """Record that the work named by ``tag`` (e.g. "every
        instance of manifest X is built") has been done in this
        process, so repeat callers — a fleet worker claiming its
        second, third, ... shard of the same manifest — skip the
        prebuild scan.  Advisory only: eviction may still drop an
        instance, in which case the normal cache miss path rebuilds
        it (correctness is unaffected, the prewarm is purely warm-up).
        """
        self._prewarmed.add(tag)

    def was_prewarmed(self, tag: Tuple) -> bool:
        return tag in self._prewarmed

    # -- prebuilt installation (worker-side) -----------------------------

    def install(self, instances: Iterable[Instance]) -> int:
        """Adopt prebuilt instances (pool-initializer path).

        Instances built from a *registered* workload land under their
        registry key, an ad-hoc content alias, and an
        ``("installed", name, seed)`` alias, so a worker resolves
        workload-keyed cells even when the workload is registered
        only in the parent.  Ad-hoc instances live *only* in the
        ad-hoc content namespace — storing them under the bare
        ``(name, params, seed)`` registry key would collide with (and
        evict or shadow) a same-named registered workload with empty
        params, and a name collision must never let a workload-keyed
        cell resolve to an ad-hoc graph.
        """
        count = 0
        for instance in instances:
            content_key = (
                "adhoc",
                instance.workload,
                instance.seed,
                instance.digest(),
            )
            if instance.registered:
                aliases = (
                    content_key,
                    ("installed", instance.workload, instance.seed),
                )
                self._store(instance.key, instance, aliases)
            else:
                self._store(content_key, instance)
            count += 1
        return count


# ----------------------------------------------------------------------
# the process-global cache

_CACHE = InstanceCache()


def instance_cache() -> InstanceCache:
    """The process-global cache (each pool worker holds its own,
    seeded by :func:`install_prebuilt` for process executors)."""
    return _CACHE


def install_prebuilt(instances: Iterable[Instance]) -> None:
    """Pool-initializer target: adopt parent-prebuilt instances."""
    _CACHE.install(instances)
