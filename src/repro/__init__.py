"""repro: a reproduction of "Distance-2 Coloring in the CONGEST Model".

Halldórsson, Kuhn, Maus (PODC 2020, arXiv:2005.06528).

The package implements the paper's randomized and deterministic
distance-2 coloring algorithms on top of a from-scratch synchronous
CONGEST simulator, together with every substrate the paper relies on
(similarity graphs, Linial coloring, locally-iterative coloring, local
refinement splitting with derandomization, network decomposition) and
the baselines it argues against.

Quickstart::

    import networkx as nx
    from repro import improved_d2_color, check_d2_coloring

    graph = nx.random_regular_graph(6, 60, seed=1)
    graph = nx.convert_node_labels_to_integers(graph)
    result = improved_d2_color(graph, seed=42)
    assert check_d2_coloring(graph, result.coloring).valid
"""

from repro.results import ColoringResult, PhaseResult

__version__ = "1.0.0"

__all__ = [
    "ColoringResult",
    "PhaseResult",
    "__version__",
    # re-exported lazily below
    "improved_d2_color",
    "basic_d2_color",
    "deterministic_d2_color",
    "eps_d2_color",
    "check_d2_coloring",
    # the algorithm registry and its conformance harness
    "ALGORITHMS",
    "AlgorithmSpec",
    "get_algorithm",
    "run_conformance",
]


def __getattr__(name):
    """Lazily re-export the top-level API to keep import time low."""
    if name in ("improved_d2_color", "basic_d2_color"):
        from repro.core import d2color

        return getattr(d2color, name)
    if name == "deterministic_d2_color":
        from repro.det.det_d2color import deterministic_d2_color

        return deterministic_d2_color
    if name == "eps_d2_color":
        from repro.det.eps_d2coloring import eps_d2_color

        return eps_d2_color
    if name == "check_d2_coloring":
        from repro.verify.checker import check_d2_coloring

        return check_d2_coloring
    if name in ("ALGORITHMS", "AlgorithmSpec", "get_algorithm"):
        from repro import registry

        return getattr(registry, name)
    if name == "run_conformance":
        from repro.conformance import run_conformance

        return run_conformance
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
