"""The reference execution backend.

This is the original round-driven loop of
:class:`~repro.congest.network.Network`, moved behind the
:class:`~repro.exec.base.ExecutionBackend` protocol.  It is the
semantic ground truth: every message is validated and sized
individually through :meth:`Network._deliver`, per-round metrics
objects are materialized, and nothing is batched.  Other backends are
tested for equivalence against it.

Stopping order: the ``stop_when`` monitor is consulted *before* the
``max_rounds`` guard.  A protocol that reaches its stop condition on
the exact final admissible round is therefore reported as
``stopped_early`` rather than conflated with non-termination (the
monitor says the run *succeeded*; the timeout only catches runs that
genuinely never got there).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Callable, Dict, Optional

from repro.congest.errors import NonterminationError
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.exec.base import ExecutionBackend
from repro.obs import trace as obs_trace

_EMPTY_INBOX: Dict[int, Any] = MappingProxyType({})


class ReferenceBackend(ExecutionBackend):
    """Round-driven lockstep executor (the semantic ground truth)."""

    name = "reference"

    def execute(
        self,
        network,
        *,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
    ):
        from repro.congest.network import RunResult

        rec = obs_trace.recorder()
        trace_t0 = rec.clock() if rec is not None else 0.0

        metrics = RunMetrics(budget_bits=network._budget)
        running = dict(network._generators)
        inboxes: Dict[int, Dict[int, Any]] = {}
        stopped_early = False

        round_index = 0
        while running:
            # Monitor before timeout: firing on the exact final round
            # is a successful early stop, not non-termination.
            if stop_when is not None and stop_when(network, round_index):
                stopped_early = True
                break
            if round_index >= max_rounds:
                if raise_on_timeout:
                    raise NonterminationError(max_rounds, set(running))
                break

            round_metrics = RoundMetrics(round_index)
            next_inboxes: Dict[int, Dict[int, Any]] = {}
            halted_now = []

            for node, gen in running.items():
                inbox = inboxes.get(node, _EMPTY_INBOX)
                try:
                    if network._started or round_index > 0:
                        outbox = gen.send(inbox)
                    else:
                        outbox = gen.send(None)
                except StopIteration as stop:
                    network.outputs[node] = stop.value
                    halted_now.append(node)
                    continue
                network._deliver(
                    node, outbox, next_inboxes, metrics, round_metrics
                )

            # The first resume of each generator happens lazily above;
            # after one full pass every generator has been started.
            network._started = True

            for node in halted_now:
                del running[node]
            inboxes = next_inboxes
            # A trailing resume in which every remaining program halts
            # without sending is local computation, not a communication
            # round: a node that receives in round r and then returns
            # has round complexity r.  (This also makes genuinely
            # zero-round protocols report 0 rounds.)
            if running or round_metrics.messages > 0:
                metrics.rounds += 1
                if record_rounds:
                    metrics.per_round.append(round_metrics)
            round_index += 1

        if rec is not None:
            rec.complete(
                "exec.run",
                trace_t0,
                {
                    "backend": self.name,
                    "rounds": metrics.rounds,
                    "messages": metrics.total_messages,
                    "bits": metrics.total_bits,
                    "halted": not running,
                },
            )
        return RunResult(
            outputs=dict(network.outputs),
            metrics=metrics,
            halted=not running,
            stopped_early=stopped_early,
            programs=network.programs,
        )
