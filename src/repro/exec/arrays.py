"""CSR-form adjacency arrays: the vectorized backend's artifact.

A :class:`CSRAdjacency` is the struct-of-arrays view of one graph:
node labels flattened to dense indices ``0..n-1`` in sorted-label
order, with both the G adjacency and the exact-distance-≤2 (G²,
self-free) adjacency in compressed-sparse-row form.  It is derived
once per instance — :meth:`repro.workloads.cache.Instance.csr`
memoizes it next to ``d2_adjacency`` and ships it prebuilt through
pickling — and looked up per run through a weak per-graph registry so
repeated runs on the same graph object never rebuild it.

Everything here is plain numpy/scipy; the kernels in
:mod:`repro.exec.vectorized` are the only consumers.
"""

from __future__ import annotations

import weakref
from typing import Tuple

import networkx as nx
import numpy as np
from scipy import sparse


class CSRAdjacency:
    """Dense-indexed CSR adjacency of G and G² for one graph.

    ``order[i]`` is the node label of dense index ``i`` (sorted label
    order — the same order every canonical payload uses), ``index``
    the inverse map.  ``g_indptr``/``g_indices`` is the CSR adjacency
    of G with sorted rows; ``g2_indptr``/``g2_indices`` the CSR
    adjacency of G² (distance ≤ 2, diagonal removed).  ``degrees``
    and ``d2_degrees`` are the per-row counts.  ``has_selfloops``
    flags graphs the kernels refuse (they fall back to fastpath).
    """

    __slots__ = (
        "n",
        "order",
        "index",
        "g_indptr",
        "g_indices",
        "g2_indptr",
        "g2_indices",
        "degrees",
        "d2_degrees",
        "has_selfloops",
    )

    def __init__(
        self,
        n,
        order,
        index,
        g_indptr,
        g_indices,
        g2_indptr,
        g2_indices,
        degrees,
        d2_degrees,
        has_selfloops,
    ):
        self.n = n
        self.order = order
        self.index = index
        self.g_indptr = g_indptr
        self.g_indices = g_indices
        self.g2_indptr = g2_indptr
        self.g2_indices = g2_indices
        self.degrees = degrees
        self.d2_degrees = d2_degrees
        self.has_selfloops = has_selfloops

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CSRAdjacency n={self.n} m={self.g_indices.size // 2} "
            f"m2={self.g2_indices.size // 2}>"
        )


def build_csr(graph: nx.Graph) -> CSRAdjacency:
    """Build the CSR artifact for a graph (one sparse boolean square)."""
    order: Tuple = tuple(sorted(graph.nodes))
    n = len(order)
    index = {v: i for i, v in enumerate(order)}
    has_selfloops = nx.number_of_selfloops(graph) > 0

    rows = []
    cols = []
    for u, v in graph.edges:
        if u == v:
            continue
        iu, iv = index[u], index[v]
        rows.append(iu)
        cols.append(iv)
        rows.append(iv)
        cols.append(iu)
    data = np.ones(len(rows), dtype=np.int32)
    adj = sparse.csr_matrix(
        (data, (np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64))),
        shape=(n, n),
    )
    adj.sum_duplicates()
    adj.sort_indices()
    g_indptr = adj.indptr.astype(np.int64)
    g_indices = adj.indices.astype(np.int64)

    # Distance ≤ 2 adjacency: A + A², diagonal dropped.  Row-array
    # surgery instead of setdiag(0) keeps everything in CSR form.
    two = (adj + adj @ adj).tocsr()
    two.sum_duplicates()
    two.sort_indices()
    row_of = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(two.indptr)
    )
    keep = two.indices != row_of
    g2_indices = two.indices[keep].astype(np.int64)
    counts = np.bincount(row_of[keep], minlength=n)
    g2_indptr = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts))
    ).astype(np.int64)

    return CSRAdjacency(
        n=n,
        order=order,
        index=index,
        g_indptr=g_indptr,
        g_indices=g_indices,
        g2_indptr=g2_indptr,
        g2_indices=g2_indices,
        degrees=np.diff(g_indptr),
        d2_degrees=np.diff(g2_indptr),
        has_selfloops=has_selfloops,
    )


# ----------------------------------------------------------------------
# per-graph-object registry (weak: dies with the graph)

_GRAPH_CSR: "weakref.WeakKeyDictionary[nx.Graph, CSRAdjacency]" = (
    weakref.WeakKeyDictionary()
)


def csr_for_graph(graph: nx.Graph) -> CSRAdjacency:
    """The CSR artifact for a graph object, built at most once per
    object.  :meth:`Instance.csr` pre-seeds this registry, so cached
    workload instances never rebuild here."""
    cached = _GRAPH_CSR.get(graph)
    if cached is None:
        cached = build_csr(graph)
        _GRAPH_CSR[graph] = cached
    return cached


def register_csr(graph: nx.Graph, csr: CSRAdjacency) -> None:
    """Seed the per-graph registry with a prebuilt artifact."""
    _GRAPH_CSR[graph] = csr


# ----------------------------------------------------------------------
# segmented-row primitives (CSR rows of ragged length)

def row_any(flags: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row ``any`` over CSR-expanded boolean entries (empty rows
    are False)."""
    csum = np.concatenate(
        (np.zeros(1, dtype=np.int64),
         np.cumsum(flags, dtype=np.int64))
    )
    return (csum[indptr[1:]] - csum[indptr[:-1]]) > 0


def row_max(
    values: np.ndarray, indptr: np.ndarray, fill
) -> np.ndarray:
    """Per-row max over CSR-expanded entries; empty rows get ``fill``.

    ``np.maximum.reduceat`` treats ``starts[i] == starts[i+1]`` as a
    one-element segment, so it is only called on the strictly
    increasing starts of *non-empty* rows (a segment then ends exactly
    where the next non-empty row begins).
    """
    n = indptr.shape[0] - 1
    out = np.full(n, fill, dtype=values.dtype)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if nonempty.size:
        out[nonempty] = np.maximum.reduceat(
            values, indptr[nonempty]
        )
    return out


def int_bits_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.congest.message.int_bits`, exact for
    any int64 payload: ``max(1, bit_length(|v|)) + (1 if v < 0)``.

    ``frexp`` on a float64 is only exact below 2⁵³, so the magnitude
    is split into 32-bit halves first (each half is exact).
    """
    values = np.asarray(values, dtype=np.int64)
    mag = np.abs(values)
    high = mag >> np.int64(32)
    low = mag & np.int64(0xFFFFFFFF)
    high_bits = np.frexp(high.astype(np.float64))[1]
    low_bits = np.frexp(low.astype(np.float64))[1]
    bits = np.where(
        high > 0, high_bits + 32, np.maximum(low_bits, 1)
    )
    return (bits + (values < 0)).astype(np.int64)
