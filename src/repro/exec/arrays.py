"""CSR-form adjacency arrays: the primary instance representation.

A :class:`CSRAdjacency` is the struct-of-arrays form of one graph:
node labels flattened to dense indices ``0..n-1`` in sorted-label
order, with the G adjacency in compressed-sparse-row form and the
exact-distance-≤2 (G², self-free) adjacency derived lazily from it by
:func:`_square_rows` — a pure-numpy gather/sort/unique merge, no
Python sets and no scipy matmul.  Instances are *born* as CSR
(:mod:`repro.graphs.generators` emits them directly for the scalable
families), memoized per workload (:meth:`repro.workloads.cache.
Instance.csr` ships them prebuilt through pickling), and looked up
per graph object through a weak registry so repeated runs never
rebuild.

Everything here is plain numpy; the kernels in
:mod:`repro.exec.vectorized`, the checker fast path in
:mod:`repro.verify.checker`, and the instance cache are the
consumers.
"""

from __future__ import annotations

import weakref
from typing import Tuple

import networkx as nx
import numpy as np

_EMPTY_INDPTR = np.zeros(1, dtype=np.int64)
_EMPTY_INDICES = np.zeros(0, dtype=np.int64)


class _IdentityIndex:
    """The label→dense-index map of an identity-labeled graph.

    CSR-born instances label nodes ``0..n-1``, so their index map is
    the identity; this stand-in answers the same Mapping-style calls
    as the dict :func:`build_csr` builds, in O(1) memory (a dict of a
    million small ints costs ~90 MB).
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n

    def __getitem__(self, label):
        if not (0 <= label < self.n):
            raise KeyError(label)
        return label

    def get(self, label, default=None):
        return label if 0 <= label < self.n else default

    def __contains__(self, label):
        return isinstance(label, int) and 0 <= label < self.n

    def __len__(self):
        return self.n

    def __eq__(self, other):
        if isinstance(other, _IdentityIndex):
            return self.n == other.n
        if isinstance(other, dict):
            return other == {i: i for i in range(self.n)}
        return NotImplemented

    def __reduce__(self):
        return (_IdentityIndex, (self.n,))


def _square_rows(
    n: int, indptr: np.ndarray, indices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Distance-≤2 CSR rows (diagonal dropped) from distance-1 rows.

    Pure numpy: for every edge (u, w) gather w's whole row as u's
    distance-2 candidates, append u's own row, drop the diagonal,
    and dedup via one sort+unique over ``row * n + col`` keys.
    """
    if n == 0:
        return _EMPTY_INDPTR.copy(), _EMPTY_INDICES.copy()
    deg = np.diff(indptr)
    owner = np.repeat(np.arange(n, dtype=np.int64), deg)
    nbr = indices
    # Candidate pairs: every (u, v) with v adjacent to a neighbor of u
    # (distance 2, may rediscover distance 1 or u itself) ...
    deg_u = deg[nbr]
    total = int(deg_u.sum())
    owners2 = np.repeat(owner, deg_u)
    csum = np.concatenate((_EMPTY_INDPTR, np.cumsum(deg_u)))
    gather = (
        np.arange(total, dtype=np.int64)
        - np.repeat(csum[:-1], deg_u)
        + np.repeat(indptr[nbr], deg_u)
    )
    cand2 = indices[gather]
    del gather, csum, deg_u
    # ... plus every direct (u, v) edge (distance 1).  Fuse straight
    # into the ``row * n + col`` sort keys, filtering the diagonal
    # per piece: at 10⁶ nodes the full row/col concatenated copies
    # would transiently dominate the whole process footprint.
    keys2 = owners2 * np.int64(n)
    keys2 += cand2
    keys2 = keys2[owners2 != cand2]
    del owners2, cand2
    keys1 = owner * np.int64(n)
    keys1 += nbr
    keys1 = keys1[owner != nbr]
    del owner
    keys = np.concatenate((keys1, keys2))
    del keys1, keys2
    keys.sort()  # in-place; dedup via boundary flags, not np.unique
    if keys.size:
        keep = np.empty(keys.size, dtype=bool)
        keep[0] = True
        np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        keys = keys[keep]
    g2_indices = keys % np.int64(n)
    counts = np.bincount(keys // np.int64(n), minlength=n)
    g2_indptr = np.concatenate(
        (_EMPTY_INDPTR, np.cumsum(counts))
    ).astype(np.int64)
    return g2_indptr, g2_indices


class CSRAdjacency:
    """Dense-indexed CSR adjacency of G (and, lazily, G²).

    ``order[i]`` is the node label of dense index ``i`` (sorted label
    order — the same order every canonical payload uses; a ``range``
    for identity-labeled graphs), ``index`` the inverse map.
    ``g_indptr``/``g_indices`` is the CSR adjacency of G with sorted
    rows; ``g2_indptr``/``g2_indices`` the CSR adjacency of G²
    (distance ≤ 2, diagonal removed), derived on first touch and
    memoized — building a graph no longer pays for its square.
    ``degrees`` and ``d2_degrees`` are the per-row counts.
    ``has_selfloops`` flags graphs the kernels refuse (they fall back
    to fastpath).
    """

    __slots__ = (
        "n",
        "order",
        "index",
        "g_indptr",
        "g_indices",
        "degrees",
        "has_selfloops",
        "_g2_indptr",
        "_g2_indices",
    )

    def __init__(
        self,
        n,
        order,
        index,
        g_indptr,
        g_indices,
        degrees=None,
        has_selfloops=False,
        g2_indptr=None,
        g2_indices=None,
    ):
        self.n = n
        self.order = order
        self.index = index
        self.g_indptr = g_indptr
        self.g_indices = g_indices
        self.degrees = (
            np.diff(g_indptr) if degrees is None else degrees
        )
        self.has_selfloops = has_selfloops
        self._g2_indptr = g2_indptr
        self._g2_indices = g2_indices

    def _ensure_square(self) -> None:
        if self._g2_indptr is None:
            self._g2_indptr, self._g2_indices = _square_rows(
                self.n, self.g_indptr, self.g_indices
            )

    @property
    def g2_indptr(self) -> np.ndarray:
        self._ensure_square()
        return self._g2_indptr

    @property
    def g2_indices(self) -> np.ndarray:
        self._ensure_square()
        return self._g2_indices

    @property
    def d2_degrees(self) -> np.ndarray:
        return np.diff(self.g2_indptr)

    @property
    def has_square(self) -> bool:
        """True once the G² rows exist (derived or supplied)."""
        return self._g2_indptr is not None

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        m2 = (
            f"m2={self._g2_indices.size // 2}"
            if self._g2_indices is not None
            else "m2=?"
        )
        return (
            f"<CSRAdjacency n={self.n} "
            f"m={self.g_indices.size // 2} {m2}>"
        )


def square_csr(csr: CSRAdjacency) -> CSRAdjacency:
    """The G² adjacency of ``csr`` as a first-class CSR artifact.

    The result shares ``order``/``index`` with the input; its G rows
    are the input's (memoized) G² rows.  This is the array
    replacement for the set-of-sets :func:`repro.graphs.square.
    d2_neighborhoods` derivation — that one stays as the reference
    oracle, and a hypothesis suite pins their equivalence.
    """
    return CSRAdjacency(
        n=csr.n,
        order=csr.order,
        index=csr.index,
        g_indptr=csr.g2_indptr,
        g_indices=csr.g2_indices,
        has_selfloops=csr.has_selfloops,
    )


def build_csr_from_edges(
    n: int, us: np.ndarray, vs: np.ndarray
) -> CSRAdjacency:
    """CSR artifact straight from edge arrays over nodes ``0..n-1``.

    The CSR-direct generators call this — no ``nx.Graph`` is ever
    constructed.  ``us``/``vs`` must be self-loop-free and duplicate
    free (undirected edges listed once, either orientation); that is
    what the generators produce.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    src = np.concatenate((us, vs))
    dst = np.concatenate((vs, us))
    sort = np.lexsort((dst, src))
    g_indices = dst[sort]
    counts = np.bincount(src, minlength=n)
    g_indptr = np.concatenate(
        (_EMPTY_INDPTR, np.cumsum(counts))
    ).astype(np.int64)
    return CSRAdjacency(
        n=n,
        order=range(n),
        index=_IdentityIndex(n),
        g_indptr=g_indptr,
        g_indices=g_indices,
        has_selfloops=False,
    )


def _csr_from_labeled_edges(
    order, index, edge_iter, has_selfloops: bool
) -> CSRAdjacency:
    n = len(order)
    rows = []
    cols = []
    for u, v in edge_iter:
        if u == v:
            continue
        rows.append(index[u])
        cols.append(index[v])
    us = np.asarray(rows, dtype=np.int64)
    vs = np.asarray(cols, dtype=np.int64)
    src = np.concatenate((us, vs))
    dst = np.concatenate((vs, us))
    sort = np.lexsort((dst, src))
    g_indices = dst[sort]
    counts = np.bincount(src, minlength=n)
    g_indptr = np.concatenate(
        (_EMPTY_INDPTR, np.cumsum(counts))
    ).astype(np.int64)
    return CSRAdjacency(
        n=n,
        order=order,
        index=index,
        g_indptr=g_indptr,
        g_indices=g_indices,
        has_selfloops=has_selfloops,
    )


def build_csr(graph: nx.Graph) -> CSRAdjacency:
    """Build the CSR artifact from an ``nx.Graph`` (compatibility
    path — CSR-born graphs carry their artifact from birth)."""
    order: Tuple = tuple(sorted(graph.nodes))
    index = {v: i for i, v in enumerate(order)}
    return _csr_from_labeled_edges(
        order,
        index,
        graph.edges,
        has_selfloops=nx.number_of_selfloops(graph) > 0,
    )


def build_csr_from_payload(nodes, edges) -> CSRAdjacency:
    """CSR artifact from a canonical ``(nodes, edges)`` payload —
    the post-pickle path of nx-born instances, no graph rebuild.
    The payload may carry self-loop edges (canonical payloads keep
    them); they are skipped and flagged like :func:`build_csr` does.
    """
    order = tuple(nodes)
    index = {v: i for i, v in enumerate(order)}
    return _csr_from_labeled_edges(
        order,
        index,
        edges,
        has_selfloops=any(u == v for u, v in edges),
    )


def csr_upper_edges(csr: CSRAdjacency):
    """The dense-index edge list of ``csr`` as ``(us, vs)`` arrays,
    upper-triangle row-major — lexicographically sorted ``u < v``,
    the canonical-payload order."""
    row_of = np.repeat(
        np.arange(csr.n, dtype=np.int64), csr.degrees
    )
    mask = csr.g_indices > row_of
    return row_of[mask], csr.g_indices[mask]


# ----------------------------------------------------------------------
# per-graph-object registry (weak: dies with the graph)

_GRAPH_CSR: "weakref.WeakKeyDictionary[nx.Graph, CSRAdjacency]" = (
    weakref.WeakKeyDictionary()
)


def csr_for_graph(graph: nx.Graph) -> CSRAdjacency:
    """The CSR artifact for a graph object, built at most once per
    object.  CSR-born graph views carry their artifact as an
    attribute; :meth:`Instance.csr` pre-seeds the weak registry, so
    cached workload instances never rebuild here."""
    born = getattr(graph, "csr_adjacency", None)
    if born is not None:
        return born
    cached = _GRAPH_CSR.get(graph)
    if cached is None:
        cached = build_csr(graph)
        _GRAPH_CSR[graph] = cached
    return cached


def register_csr(graph: nx.Graph, csr: CSRAdjacency) -> None:
    """Seed the per-graph registry with a prebuilt artifact."""
    _GRAPH_CSR[graph] = csr


# ----------------------------------------------------------------------
# segmented-row primitives (CSR rows of ragged length)

def row_any(flags: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row ``any`` over CSR-expanded boolean entries (empty rows
    are False)."""
    csum = np.concatenate(
        (np.zeros(1, dtype=np.int64),
         np.cumsum(flags, dtype=np.int64))
    )
    return (csum[indptr[1:]] - csum[indptr[:-1]]) > 0


def row_max(
    values: np.ndarray, indptr: np.ndarray, fill
) -> np.ndarray:
    """Per-row max over CSR-expanded entries; empty rows get ``fill``.

    ``np.maximum.reduceat`` treats ``starts[i] == starts[i+1]`` as a
    one-element segment, so it is only called on the strictly
    increasing starts of *non-empty* rows (a segment then ends exactly
    where the next non-empty row begins).
    """
    n = indptr.shape[0] - 1
    out = np.full(n, fill, dtype=values.dtype)
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    if nonempty.size:
        out[nonempty] = np.maximum.reduceat(
            values, indptr[nonempty]
        )
    return out


def int_bits_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.congest.message.int_bits`, exact for
    any int64 payload: ``max(1, bit_length(|v|)) + (1 if v < 0)``.

    ``frexp`` on a float64 is only exact below 2⁵³, so the magnitude
    is split into 32-bit halves first (each half is exact).
    """
    values = np.asarray(values, dtype=np.int64)
    mag = np.abs(values)
    high = mag >> np.int64(32)
    low = mag & np.int64(0xFFFFFFFF)
    high_bits = np.frexp(high.astype(np.float64))[1]
    low_bits = np.frexp(low.astype(np.float64))[1]
    bits = np.where(
        high > 0, high_bits + 32, np.maximum(low_bits, 1)
    )
    return (bits + (values < 0)).astype(np.int64)
