"""The sweep execution backend: batch grids over worker pools.

A *sweep* executes a grid of independent cells — algorithm × instance
× seed — and aggregates the results.  Cells are self-contained and
picklable (:class:`SweepCell` carries the instance as a plain
node/edge listing, the algorithm by registry name, and the policy as
a frozen dataclass), so the same grid runs unchanged on a serial
loop, a thread pool, or a process pool.

Determinism is a contract, not an accident: results are collected in
*submission order* (never completion order) and each cell is seeded
individually from its own ``seed`` field, so the same grid produces
byte-identical aggregated results whatever the worker count or
scheduling interleaving (property-tested in
``tests/test_sweep_properties.py``).

Single-network execution (the :class:`ExecutionBackend` duty) is
delegated to the configured ``inner`` backend — by default
``fastpath`` — so ``use_backend("sweep")`` is safe anywhere a
round-level engine is expected.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx

from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthPolicy
from repro.exec.base import ExecutionBackend

#: Admissible ``executor`` values for :class:`SweepBackend`.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepCell:
    """One self-contained grid point: algorithm × instance × seed.

    The instance travels as ``(nodes, edges)`` tuples rather than a
    graph object so the cell pickles cheaply and every worker rebuilds
    the *identical* instance (no generator re-sampling drift).
    """

    algorithm: str
    scenario: str
    seed: int
    nodes: Tuple[int, ...]
    edges: Tuple[Tuple[int, int], ...]
    policy: Optional[BandwidthPolicy] = None

    @staticmethod
    def from_graph(
        algorithm: str,
        scenario: str,
        seed: int,
        graph: nx.Graph,
        policy: Optional[BandwidthPolicy] = None,
    ) -> "SweepCell":
        return SweepCell(
            algorithm=algorithm,
            scenario=scenario,
            seed=seed,
            nodes=tuple(sorted(graph.nodes)),
            edges=tuple(
                sorted(tuple(sorted(e)) for e in graph.edges)
            ),
            policy=policy,
        )

    def graph(self) -> nx.Graph:
        """Rebuild the instance exactly as shipped."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges)
        return graph

    def delta(self) -> int:
        """Maximum degree, computable without building the graph."""
        degree: dict = {}
        for u, v in self.edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        return max(degree.values(), default=0)


@dataclass
class CellResult:
    """Outcome of one executed :class:`SweepCell`."""

    algorithm: str
    scenario: str
    seed: int
    colors_used: int = 0
    palette_size: int = 0
    rounds: int = 0
    metrics: RunMetrics = field(default_factory=RunMetrics)
    #: Canonical coloring fingerprint: sorted ``(node, color)`` pairs.
    coloring: Tuple[Tuple[int, Any], ...] = ()
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All cell results of one grid execution, in submission order."""

    cells: List[CellResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CellResult]:
        return [c for c in self.cells if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def aggregate_metrics(self) -> RunMetrics:
        """Merge every cell's :class:`RunMetrics` (rounds add up)."""
        merged = RunMetrics()
        for cell in self.cells:
            merged = merged.merge(cell.metrics)
        return merged

    def fingerprint(self) -> bytes:
        """Canonical byte serialization, for determinism checks."""
        return repr(
            [
                (
                    c.algorithm,
                    c.scenario,
                    c.seed,
                    c.colors_used,
                    c.palette_size,
                    c.rounds,
                    c.metrics,
                    c.coloring,
                    c.error,
                )
                for c in self.cells
            ]
        ).encode("utf-8")


def run_cell(cell: SweepCell, inner: str = "fastpath") -> CellResult:
    """Execute one cell (module-level, so process pools can pickle it).

    Exceptions become ``error`` fields rather than poisoning the whole
    grid — a sweep is a survey, not an assertion.
    """
    from repro import registry

    try:
        spec = registry.get_algorithm(cell.algorithm)
        graph = cell.graph()
        result = spec.run(
            graph, seed=cell.seed, policy=cell.policy, backend=inner
        )
    except Exception as exc:  # noqa: BLE001 - reported per cell
        return CellResult(
            algorithm=cell.algorithm,
            scenario=cell.scenario,
            seed=cell.seed,
            error=f"{type(exc).__name__}: {exc}",
        )
    return CellResult(
        algorithm=cell.algorithm,
        scenario=cell.scenario,
        seed=cell.seed,
        colors_used=result.colors_used,
        palette_size=result.palette_size,
        rounds=result.rounds,
        metrics=result.metrics,
        coloring=tuple(sorted(result.coloring.items())),
    )


class SweepBackend(ExecutionBackend):
    """Grid executor over :mod:`concurrent.futures` workers.

    Parameters
    ----------
    max_workers:
        Pool width (``None``: the executor's default).  ``1`` always
        degrades to the serial loop.
    executor:
        ``"process"`` (default; true parallelism for the CPU-bound
        simulator), ``"thread"`` (cheap startup, useful for small
        grids and property tests) or ``"serial"``.
    inner:
        Round-level backend name workers run each cell with, and the
        engine single ``execute`` calls delegate to.
    """

    name = "sweep"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: str = "process",
        inner: str = "fastpath",
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}; got {executor!r}"
            )
        self.max_workers = max_workers
        self.executor = executor
        self.inner = inner

    # -- round-level duty ------------------------------------------------

    def execute(self, network, **kwargs):
        """A single network run has no grid to fan out; delegate."""
        from repro.exec.base import get_backend

        return get_backend(self.inner).execute(network, **kwargs)

    # -- grid execution --------------------------------------------------

    def _pool(self):
        if self.executor == "thread":
            return concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers
            )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
    ) -> List[Any]:
        """Run ``fn`` over ``items``, results in submission order.

        The submission-order guarantee (as opposed to completion
        order) is what makes sweep aggregation deterministic under
        any worker count.
        """
        items = list(items)
        serial = (
            self.executor == "serial"
            or self.max_workers == 1
            or len(items) <= 1
        )
        if serial:
            return [fn(item) for item in items]
        with self._pool() as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]

    def run_grid(self, cells: Sequence[SweepCell]) -> SweepResult:
        """Execute every cell and aggregate, deterministically."""
        results = self.map(_CellRunner(self.inner), cells)
        return SweepResult(cells=results)


class _CellRunner:
    """Picklable ``cell -> CellResult`` closure over the inner backend."""

    __slots__ = ("inner",)

    def __init__(self, inner: str):
        self.inner = inner

    def __call__(self, cell: SweepCell) -> CellResult:
        return run_cell(cell, inner=self.inner)


def grid_cells(
    specs: Optional[Sequence] = None,
    scenarios: Optional[Sequence] = None,
    seeds: Iterable[int] = (0,),
    policy: Optional[BandwidthPolicy] = None,
) -> List[SweepCell]:
    """Build the registry × scenario × seed grid.

    ``specs`` defaults to the full algorithm registry; ``scenarios``
    (anything with ``.name`` and ``.graph(seed)``, e.g. the
    conformance corpus) defaults to
    :func:`repro.conformance.scenarios.build_corpus`.  Cells a spec's
    ``supports`` predicate rejects are left out of the grid.
    """
    from repro import registry

    if specs is None:
        specs = list(registry.ALGORITHMS)
    if scenarios is None:
        from repro.conformance.scenarios import build_corpus

        scenarios = build_corpus()
    cells: List[SweepCell] = []
    for scenario in scenarios:
        for seed in seeds:
            graph = scenario.graph(seed)
            for spec in specs:
                if not spec.applicable(graph):
                    continue
                cells.append(
                    SweepCell.from_graph(
                        spec.name, scenario.name, seed, graph, policy
                    )
                )
    return cells
