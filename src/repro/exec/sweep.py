"""The sweep execution backend: batch grids over worker pools.

A *sweep* executes a grid of independent cells — algorithm × instance
× seed — and aggregates the results.  Cells are self-contained and
picklable: the algorithm travels by registry name, the policy as a
frozen dataclass, and the instance either as a *workload key*
(resolved through :mod:`repro.workloads` and its content-addressed
:class:`~repro.workloads.cache.InstanceCache`) or, for ad-hoc graphs,
as a plain node/edge listing.  The same grid runs unchanged on a
serial loop, a thread pool, a process pool — or sharded across hosts
through :mod:`repro.exec.shards`.

Workload-keyed cells are the fast path: the parent prebuilds each
referenced instance once (graph, Δ, and — when a caller prewarms it —
the G² adjacency) and process-pool workers receive the prebuilt
artifact through the pool initializer instead of rebuilding per cell.

Determinism is a contract, not an accident: results are collected in
*submission order* (never completion order) and each cell is seeded
individually from its own ``seed`` field, so the same grid produces
byte-identical aggregated results whatever the worker count or
scheduling interleaving (property-tested in
``tests/test_sweep_properties.py``; shard-merge equivalence in
``tests/test_sweep_shards.py``).

Single-network execution (the :class:`ExecutionBackend` duty) is
delegated to the configured ``inner`` backend — by default
``fastpath`` — so ``use_backend("sweep")`` is safe anywhere a
round-level engine is expected.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx

from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthPolicy
from repro.exec.base import ExecutionBackend
from repro.obs import trace as obs_trace

#: Admissible ``executor`` values for :class:`SweepBackend`.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepCell:
    """One self-contained grid point: algorithm × instance × seed.

    The instance is referenced by ``workload`` key when it comes from
    the workload registry — workers resolve it through the shared
    :class:`~repro.workloads.cache.InstanceCache`, so one build serves
    every cell of the same (workload, seed) — and travels as
    ``(nodes, edges)`` tuples otherwise (ad-hoc graphs), so the cell
    pickles cheaply and every worker rebuilds the *identical* instance
    (no generator re-sampling drift).
    """

    algorithm: str
    scenario: str
    seed: int
    nodes: Tuple[int, ...] = ()
    edges: Tuple[Tuple[int, int], ...] = ()
    policy: Optional[BandwidthPolicy] = None
    #: Workload registry key; when set, ``nodes``/``edges`` stay empty
    #: and the instance resolves through the cache.
    workload: Optional[str] = None
    #: Node/edge attributes of ad-hoc payloads, in canonical hashable
    #: form: ``((node, ((key, value), ...)), ...)`` sorted by node and
    #: ``(((u, v), ((key, value), ...)), ...)`` sorted by edge.  Empty
    #: for attribute-free graphs, so old pickles/JSON stay valid.
    node_attrs: Tuple = ()
    edge_attrs: Tuple = ()

    @staticmethod
    def from_graph(
        algorithm: str,
        scenario: str,
        seed: int,
        graph: nx.Graph,
        policy: Optional[BandwidthPolicy] = None,
    ) -> "SweepCell":
        return SweepCell(
            algorithm=algorithm,
            scenario=scenario,
            seed=seed,
            nodes=tuple(sorted(graph.nodes)),
            edges=tuple(
                sorted(tuple(sorted(e)) for e in graph.edges)
            ),
            policy=policy,
            node_attrs=tuple(
                sorted(
                    (v, tuple(sorted(data.items())))
                    for v, data in graph.nodes(data=True)
                    if data
                )
            ),
            edge_attrs=tuple(
                sorted(
                    (tuple(sorted((u, v))), tuple(sorted(data.items())))
                    for u, v, data in graph.edges(data=True)
                    if data and u != v
                )
            ),
        )

    @staticmethod
    def from_workload(
        algorithm: str,
        workload: str,
        seed: int,
        policy: Optional[BandwidthPolicy] = None,
    ) -> "SweepCell":
        """A cell referencing a registered workload by key."""
        return SweepCell(
            algorithm=algorithm,
            scenario=workload,
            seed=seed,
            policy=policy,
            workload=workload,
        )

    def instance(self):
        """The cached :class:`~repro.workloads.cache.Instance` backing
        this cell (workload-keyed cells hit the registry cache; ad-hoc
        payloads are interned by content digest)."""
        from repro.workloads import instance_cache

        cache = instance_cache()
        if self.workload is not None:
            return cache.get(self.workload, self.seed)
        return cache.intern(
            self.scenario,
            self.seed,
            self.nodes,
            self.edges,
            node_attrs={v: dict(items) for v, items in self.node_attrs},
            edge_attrs={
                edge: dict(items) for edge, items in self.edge_attrs
            },
        )

    def graph(self) -> nx.Graph:
        """The cheapest graph-shaped object for this cell, shared
        through the cache (a CSR-backed view for CSR-born
        instances)."""
        return self.instance().graphlike()

    def delta(self) -> int:
        """Maximum degree (from the cached instance artifact)."""
        return self.instance().delta


@dataclass
class CellResult:
    """Outcome of one executed :class:`SweepCell`."""

    algorithm: str
    scenario: str
    seed: int
    colors_used: int = 0
    palette_size: int = 0
    rounds: int = 0
    metrics: RunMetrics = field(default_factory=RunMetrics)
    #: Canonical coloring fingerprint: sorted ``(node, color)`` pairs.
    coloring: Tuple[Tuple[int, Any], ...] = ()
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """All cell results of one grid execution, in submission order."""

    cells: List[CellResult] = field(default_factory=list)
    #: Instance-cache activity attributed to this sweep (hits, misses,
    #: csr/square builds) — filled by :meth:`SweepBackend.run_grid`
    #: and shard merging; ``None`` for hand-assembled results.
    #: Deliberately excluded from :meth:`fingerprint`: cache hit/miss
    #: patterns depend on what ran before, not on the grid's outcome.
    cache_stats: Optional[Any] = None

    @property
    def failures(self) -> List[CellResult]:
        return [c for c in self.cells if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def aggregate_metrics(self) -> RunMetrics:
        """Merge every cell's :class:`RunMetrics` (rounds add up).

        When cache activity was recorded (:attr:`cache_stats`), the
        returned object additionally carries it as a plain
        ``cache_stats`` attribute — *not* a dataclass field, so the
        metrics ``repr`` (and every fingerprint built from it) is
        byte-identical with and without observability."""
        merged = RunMetrics()
        for cell in self.cells:
            merged = merged.merge(cell.metrics)
        if self.cache_stats is not None:
            merged.cache_stats = self.cache_stats
        return merged

    def fingerprint(self) -> bytes:
        """Canonical byte serialization, for determinism checks."""
        return repr(
            [
                (
                    c.algorithm,
                    c.scenario,
                    c.seed,
                    c.colors_used,
                    c.palette_size,
                    c.rounds,
                    c.metrics,
                    c.coloring,
                    c.error,
                )
                for c in self.cells
            ]
        ).encode("utf-8")


def run_cell(cell: SweepCell, inner: str = "fastpath") -> CellResult:
    """Execute one cell (module-level, so process pools can pickle it).

    Exceptions become ``error`` fields rather than poisoning the whole
    grid — a sweep is a survey, not an assertion.
    """
    from repro import registry

    rec = obs_trace.recorder()
    trace_t0 = rec.clock() if rec is not None else 0.0

    def traced(cell_result: CellResult) -> CellResult:
        if rec is not None:
            attrs = {
                "algorithm": cell.algorithm,
                "scenario": cell.scenario,
                "seed": cell.seed,
                "rounds": cell_result.rounds,
                "messages": cell_result.metrics.total_messages,
                "bits": cell_result.metrics.total_bits,
            }
            if cell_result.error is not None:
                attrs["error"] = cell_result.error
            rec.complete("sweep.cell", trace_t0, attrs)
        return cell_result

    try:
        spec = registry.get_algorithm(cell.algorithm)
        graph = cell.graph()
        result = spec.run(
            graph, seed=cell.seed, policy=cell.policy, backend=inner
        )
    except Exception as exc:  # noqa: BLE001 - reported per cell
        return traced(
            CellResult(
                algorithm=cell.algorithm,
                scenario=cell.scenario,
                seed=cell.seed,
                error=f"{type(exc).__name__}: {exc}",
            )
        )
    return traced(
        CellResult(
            algorithm=cell.algorithm,
            scenario=cell.scenario,
            seed=cell.seed,
            colors_used=result.colors_used,
            palette_size=result.palette_size,
            rounds=result.rounds,
            metrics=result.metrics,
            coloring=tuple(sorted(result.coloring.items())),
        )
    )


def prebuild_instances(
    cells: Sequence[SweepCell],
    prewarm_square: bool = False,
    prewarm_csr: bool = False,
) -> List:
    """Build (once, via the cache) every instance a grid references.

    Returns the distinct :class:`~repro.workloads.cache.Instance`
    objects in first-reference order — the payload
    :meth:`SweepBackend.map` ships to process-pool workers.  With
    ``prewarm_square`` the G² adjacency is computed in the parent too,
    so workers never rebuild it (the conformance contract checks are
    the consumer); ``prewarm_csr`` does the same for the CSR arrays
    the ``vectorized`` engine consumes.
    """
    seen = {}
    for cell in cells:
        # Workload-keyed and ad-hoc cells live in separate dedup
        # namespaces: an ad-hoc scenario sharing a workload's name
        # must not shadow (or be shadowed by) the workload instance.
        if cell.workload is not None:
            key = ("workload", cell.workload, cell.seed)
        else:
            key = (
                "adhoc",
                cell.scenario,
                cell.seed,
                cell.nodes,
                cell.edges,
                cell.node_attrs,
                cell.edge_attrs,
            )
        if key in seen:
            continue
        seen[key] = cell.instance()
    instances = list(seen.values())
    for instance in instances:
        instance.delta  # noqa: B018 - memoize before pickling
        if prewarm_square:
            instance.d2_adjacency()
        if prewarm_csr:
            instance.csr()
    return instances


class SweepBackend(ExecutionBackend):
    """Grid executor over :mod:`concurrent.futures` workers.

    Parameters
    ----------
    max_workers:
        Pool width (``None``: the executor's default).  ``1`` always
        degrades to the serial loop.
    executor:
        ``"process"`` (default; true parallelism for the CPU-bound
        simulator), ``"thread"`` (cheap startup, useful for small
        grids and property tests) or ``"serial"``.
    inner:
        Round-level backend name workers run each cell with, and the
        engine single ``execute`` calls delegate to.
    """

    name = "sweep"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        executor: str = "process",
        inner: str = "fastpath",
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}; got {executor!r}"
            )
        self.max_workers = max_workers
        self.executor = executor
        self.inner = inner

    # -- round-level duty ------------------------------------------------

    def execute(self, network, **kwargs):
        """A single network run has no grid to fan out; delegate."""
        from repro.exec.base import get_backend

        return get_backend(self.inner).execute(network, **kwargs)

    # -- grid execution --------------------------------------------------

    def _pool(self, instances: Sequence = ()):
        if self.executor == "thread":
            # Threads share the parent's cache; nothing to ship.
            return concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers
            )
        if instances:
            from repro.workloads import install_prebuilt

            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=install_prebuilt,
                initargs=(list(instances),),
            )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        instances: Sequence = (),
    ) -> List[Any]:
        """Run ``fn`` over ``items``, results in submission order.

        The submission-order guarantee (as opposed to completion
        order) is what makes sweep aggregation deterministic under
        any worker count.  ``instances`` are prebuilt workload
        instances (see :func:`prebuild_instances`) installed into each
        process worker's cache before the first cell runs.
        """
        items = list(items)
        serial = (
            self.executor == "serial"
            or self.max_workers == 1
            or len(items) <= 1
        )
        if serial:
            return [fn(item) for item in items]
        with self._pool(instances) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]

    def run_grid(
        self,
        cells: Sequence[SweepCell],
        prewarm_square: bool = False,
    ) -> SweepResult:
        """Execute every cell and aggregate, deterministically.

        Instances referenced by the grid are prebuilt once in the
        parent and shared with the workers (shipped prebuilt for
        process pools; via the common cache otherwise).
        """
        from repro.workloads import instance_cache

        cache = instance_cache()
        baseline = cache.stats.snapshot()
        with obs_trace.span(
            "sweep.grid",
            cells=len(cells),
            inner=self.inner,
            executor=self.executor,
        ) as sp:
            with obs_trace.span("sweep.prebuild"):
                instances = prebuild_instances(
                    cells,
                    prewarm_square=prewarm_square,
                    prewarm_csr=(self.inner == "vectorized"),
                )
            results = self.map(
                _CellRunner(self.inner), cells, instances=instances
            )
            errors = sum(1 for c in results if not c.ok)
            sp.annotate(errors=errors)
        # The cache activity this grid caused in *this* process
        # (prebuild + serial/thread cells; process-pool workers keep
        # their own caches).  Published as counters and attached to
        # the result — never part of the fingerprint.
        delta = cache.stats.delta(baseline)
        delta.publish()
        return SweepResult(cells=results, cache_stats=delta)


class _CellRunner:
    """Picklable ``cell -> CellResult`` closure over the inner backend."""

    __slots__ = ("inner",)

    def __init__(self, inner: str):
        self.inner = inner

    def __call__(self, cell: SweepCell) -> CellResult:
        return run_cell(cell, inner=self.inner)


def grid_cells(
    specs: Optional[Sequence] = None,
    scenarios: Optional[Sequence] = None,
    seeds: Iterable[int] = (0,),
    policy: Optional[BandwidthPolicy] = None,
) -> List[SweepCell]:
    """Build the registry × workload × seed grid.

    ``specs`` defaults to the full algorithm registry; ``scenarios``
    (anything with ``.name`` and ``.graph(seed)`` — workload specs,
    or ad-hoc scenario objects) defaults to
    :func:`repro.workloads.build_corpus`.  Registered workloads yield
    workload-keyed cells (cache-shared instances); ad-hoc scenarios
    embed their node/edge payload.  Cells a spec's ``supports``
    predicate rejects are left out of the grid.
    """
    from repro import registry
    from repro.workloads import instance_cache, is_registered_spec

    if specs is None:
        specs = list(registry.ALGORITHMS)
    if scenarios is None:
        from repro.workloads import build_corpus

        scenarios = build_corpus()
    cells: List[SweepCell] = []
    cache = instance_cache()
    for scenario in scenarios:
        registered = is_registered_spec(scenario)
        for seed in seeds:
            if registered:
                graph = cache.get(scenario, seed).graphlike()
            else:
                graph = scenario.graph(seed)
            for spec in specs:
                if not spec.applicable(graph):
                    continue
                if registered:
                    cells.append(
                        SweepCell.from_workload(
                            spec.name, scenario.name, seed, policy
                        )
                    )
                else:
                    cells.append(
                        SweepCell.from_graph(
                            spec.name, scenario.name, seed, graph, policy
                        )
                    )
    return cells
