"""Pluggable execution backends for the CONGEST simulator.

``repro.exec`` decouples *what* a run means (the lockstep CONGEST
semantics fixed by :class:`~repro.congest.network.Network`) from *how*
it is executed.  Three engines ship by default:

``reference``
    The original round-driven loop; semantic ground truth.
``fastpath``
    The same semantics with metering inlined and, under unbounded
    policies, message sizing skipped — the engine for large instances.
``vectorized``
    Struct-of-arrays numpy kernels over CSR-form G/G² adjacency for
    the hottest program classes (trial/slack, Luby MIS), with
    automatic fallback to ``fastpath`` for everything else — the
    engine for the huge tier.
``sweep``
    A grid executor fanning algorithm × instance × seed cells across
    ``concurrent.futures`` workers, with deterministic aggregation.
    Cells reference workloads by key; prebuilt instances (graph, Δ,
    G² adjacency from :mod:`repro.workloads`) ship to process workers
    through the pool initializer.

Grids also compile to *shard manifests* (:mod:`repro.exec.shards`):
deterministic JSON, independently runnable and resumable shards with
per-cell checkpoints, and a merge that is byte-identical to the
unsharded run.  On top, :mod:`repro.exec.fleet` schedules those
shards across any number of worker processes/hosts via atomic lease
files with heartbeats and crash reclaim (``python -m
repro.exec.fleet work <dir>``).

Select an engine per call (``network.run(backend="fastpath")``,
``spec.run(graph, backend="fastpath")``) or ambiently::

    from repro.exec import use_backend

    with use_backend("fastpath"):
        result = improved_d2_color(graph, seed=1)

See ``docs/BACKENDS.md`` for the architecture notes.
"""

from repro.exec.base import (
    ExecutionBackend,
    available_backends,
    current_backend,
    get_backend,
    register_backend,
    use_backend,
)
from repro.exec.fastpath import FastpathBackend
from repro.exec.fleet import (
    FleetStalledError,
    FleetTimeoutError,
    FleetWorkerReport,
    LeaseLostError,
    LeaseStore,
    ReclaimPolicy,
    fleet_status,
    run_fleet,
    run_fleet_worker,
)
from repro.exec.reference import ReferenceBackend
from repro.exec.shards import (
    ShardIncompleteError,
    ShardManifest,
    ShardStatus,
    compile_manifest,
    merge_shards,
    run_shard,
    run_sharded,
    shard_status,
)
from repro.exec.sweep import (
    CellResult,
    SweepBackend,
    SweepCell,
    SweepResult,
    grid_cells,
    prebuild_instances,
    run_cell,
)
from repro.exec.vectorized import VectorizedBackend

#: The default engine instances, registered in order.
REFERENCE = register_backend(ReferenceBackend())
FASTPATH = register_backend(FastpathBackend())
VECTORIZED = register_backend(VectorizedBackend())
SWEEP = register_backend(SweepBackend())

__all__ = [
    "CellResult",
    "ExecutionBackend",
    "FASTPATH",
    "FastpathBackend",
    "FleetStalledError",
    "FleetTimeoutError",
    "FleetWorkerReport",
    "LeaseLostError",
    "LeaseStore",
    "REFERENCE",
    "ReclaimPolicy",
    "ReferenceBackend",
    "SWEEP",
    "ShardIncompleteError",
    "ShardManifest",
    "ShardStatus",
    "SweepBackend",
    "SweepCell",
    "SweepResult",
    "VECTORIZED",
    "VectorizedBackend",
    "available_backends",
    "compile_manifest",
    "current_backend",
    "fleet_status",
    "get_backend",
    "grid_cells",
    "merge_shards",
    "prebuild_instances",
    "register_backend",
    "run_cell",
    "run_fleet",
    "run_fleet_worker",
    "run_shard",
    "run_sharded",
    "shard_status",
    "use_backend",
]
