"""The fastpath execution backend.

Same lockstep semantics as :class:`~repro.exec.reference`, executed
with the per-round overhead stripped out of the hot loop:

- metering is inlined into local accumulators — no
  :class:`~repro.congest.metrics.RoundMetrics` object, no ``_meter``
  /``observe`` calls per message (one ``RunMetrics`` is filled in at
  the end of the run);
- neighbor adjacency is preallocated once per run as plain tuples, so
  broadcast delivery is a tight loop over a cached array instead of
  repeated context attribute lookups;
- under an ``UNBOUNDED`` policy there is no bit budget to check, so
  :func:`~repro.congest.message.bit_size` — the dominant per-message
  cost, it walks every payload recursively — is skipped entirely.

Guarantees (enforced by ``tests/test_backend_equivalence.py``):
node outputs, round counts, halting/stopping status and error
behaviour are identical to ``reference`` for every policy.  Under
metered policies (``STRICT``/``TRACK``) the full ``RunMetrics`` are
bit-for-bit identical too.  The one documented deviation: under
``UNBOUNDED`` policies message *sizes* are not measured
(``total_bits``/``max_message_bits`` stay 0; ``total_messages``,
``rounds`` and outputs still match) — that is the point of the fast
path, and nothing may depend on byte metering in a policy whose
budget is explicitly infinite.

``record_rounds=True`` requests per-round metrics objects, which is
exactly the bookkeeping this backend removes; such runs are delegated
to ``reference``.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Callable, Dict, Optional

from repro.congest.errors import (
    BandwidthExceededError,
    NonterminationError,
    ProtocolViolationError,
)
from repro.congest.message import Broadcast, bit_size
from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthMode
from repro.exec.base import ExecutionBackend

_EMPTY_INBOX: Dict[int, Any] = MappingProxyType({})


class FastpathBackend(ExecutionBackend):
    """Metering-light lockstep executor for large instances."""

    name = "fastpath"

    def execute(
        self,
        network,
        *,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
    ):
        if record_rounds:
            from repro.exec import get_backend

            return get_backend("reference").execute(
                network,
                max_rounds=max_rounds,
                stop_when=stop_when,
                raise_on_timeout=raise_on_timeout,
                record_rounds=True,
            )
        from repro.congest.network import RunResult

        mode = network.policy.mode
        metered = mode is not BandwidthMode.UNBOUNDED
        strict = mode is BandwidthMode.STRICT
        budget = network._budget
        # Preallocated adjacency: one tuple per node, resolved once.
        neighbors = {
            node: ctx.neighbors for node, ctx in network.contexts.items()
        }
        neighbor_sets = network._neighbor_sets
        outputs = network.outputs

        running = dict(network._generators)
        inboxes: Dict[int, Dict[int, Any]] = {}
        stopped_early = False
        started = network._started

        total_messages = 0
        total_bits = 0
        max_message_bits = 0
        violations = 0
        worst_violation_bits = 0
        rounds = 0

        round_index = 0
        while running:
            # Monitor before timeout (same order as reference): a stop
            # condition reached on the final round is an early stop.
            if stop_when is not None and stop_when(network, round_index):
                stopped_early = True
                break
            if round_index >= max_rounds:
                if raise_on_timeout:
                    raise NonterminationError(max_rounds, set(running))
                break

            next_inboxes: Dict[int, Dict[int, Any]] = {}
            halted_now = []
            round_messages = 0

            for node, gen in running.items():
                try:
                    if started or round_index > 0:
                        outbox = gen.send(
                            inboxes.get(node, _EMPTY_INBOX)
                        )
                    else:
                        outbox = gen.send(None)
                except StopIteration as stop:
                    outputs[node] = stop.value
                    halted_now.append(node)
                    continue
                if outbox is None:
                    continue
                if isinstance(outbox, Broadcast):
                    payload = outbox.payload
                    if metered:
                        bits = bit_size(payload)
                        total_bits += bits
                        if bits > max_message_bits:
                            max_message_bits = bits
                        if bits > budget:
                            if strict:
                                raise BandwidthExceededError(
                                    node, "<all>", bits, budget
                                )
                            violations += 1
                            if bits > worst_violation_bits:
                                worst_violation_bits = bits
                    # One metered message fanned out to all neighbors
                    # (matches reference: a broadcast counts once).
                    total_messages += 1
                    nbrs = neighbors[node]
                    for receiver in nbrs:
                        box = next_inboxes.get(receiver)
                        if box is None:
                            next_inboxes[receiver] = {node: payload}
                        else:
                            box[node] = payload
                    round_messages += len(nbrs)
                    continue
                if not isinstance(outbox, dict):
                    raise ProtocolViolationError(
                        f"node {node} yielded "
                        f"{type(outbox).__name__}; expected dict or "
                        "Broadcast"
                    )
                if not outbox:
                    continue
                allowed = neighbor_sets[node]
                for receiver, payload in outbox.items():
                    if receiver not in allowed:
                        raise ProtocolViolationError(
                            f"node {node} sent to non-neighbor "
                            f"{receiver}"
                        )
                    if metered:
                        bits = bit_size(payload)
                        total_bits += bits
                        if bits > max_message_bits:
                            max_message_bits = bits
                        if bits > budget:
                            if strict:
                                raise BandwidthExceededError(
                                    node, receiver, bits, budget
                                )
                            violations += 1
                            if bits > worst_violation_bits:
                                worst_violation_bits = bits
                    total_messages += 1
                    box = next_inboxes.get(receiver)
                    if box is None:
                        next_inboxes[receiver] = {node: payload}
                    else:
                        box[node] = payload
                    round_messages += 1

            started = True
            network._started = True

            for node in halted_now:
                del running[node]
            inboxes = next_inboxes
            # Trailing halt-only resumes are local computation, not a
            # communication round (same accounting as reference).
            if running or round_messages > 0:
                rounds += 1
            round_index += 1

        metrics = RunMetrics(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_message_bits,
            budget_bits=budget,
            violations=violations,
            worst_violation_bits=worst_violation_bits,
        )
        return RunResult(
            outputs=dict(outputs),
            metrics=metrics,
            halted=not running,
            stopped_early=stopped_early,
            programs=network.programs,
        )
