"""The fastpath execution backend.

Same lockstep semantics as :class:`~repro.exec.reference`, executed
with the per-round overhead stripped out of the hot loop:

- metering is inlined into local accumulators — no
  :class:`~repro.congest.metrics.RoundMetrics` object, no ``_meter``
  /``observe`` calls per message (one ``RunMetrics`` is filled in at
  the end of the run);
- neighbor adjacency is preallocated once per run as plain tuples, so
  broadcast delivery is a tight loop over a cached array instead of
  repeated context attribute lookups;
- under an ``UNBOUNDED`` policy there is no bit budget to check, so
  :func:`~repro.congest.message.bit_size` — the dominant per-message
  cost, it walks every payload recursively — is skipped entirely.

The loop lives in :class:`GeneratorLoop`, a *resumable* driver: the
vectorized backend's hybrid kernels run a program's array-friendly
middle section as batched numpy work and use the same loop for the
generator-executed prologue/epilogue, pausing at an exact round
boundary (``run_until(bound)``) and resuming later with the round
index and metering accumulators advanced by the array section.

Guarantees (enforced by ``tests/test_backend_equivalence.py``):
node outputs, round counts, halting/stopping status and error
behaviour are identical to ``reference`` for every policy.  Under
metered policies (``STRICT``/``TRACK``) the full ``RunMetrics`` are
bit-for-bit identical too.  The one documented deviation: under
``UNBOUNDED`` policies message *sizes* are not measured
(``total_bits``/``max_message_bits`` stay 0; ``total_messages``,
``rounds`` and outputs still match) — that is the point of the fast
path, and nothing may depend on byte metering in a policy whose
budget is explicitly infinite.

``record_rounds=True`` requests per-round metrics objects, which is
exactly the bookkeeping this backend removes; such runs are delegated
to ``reference``.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Callable, Dict, Optional

from repro.congest.errors import (
    BandwidthExceededError,
    NonterminationError,
    ProtocolViolationError,
)
from repro.congest.message import Broadcast, bit_size
from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthMode
from repro.exec.base import ExecutionBackend
from repro.obs import trace as obs_trace

_EMPTY_INBOX: Dict[int, Any] = MappingProxyType({})

#: ``run_until`` outcomes.
PAUSED = "paused"
STOPPED = "stopped"
TIMEOUT = "timeout"
HALTED = "halted"


class GeneratorLoop:
    """Resumable fastpath-style driver over a network's generators.

    Holds the full loop state across calls: live generators, in-flight
    inboxes, the round index, and the metering accumulators.  A hybrid
    kernel pauses the loop at a round boundary, executes a window of
    rounds as array work (bumping :attr:`round_index`, :attr:`rounds`
    and the accumulators itself), and resumes — the generators then
    receive exactly the inboxes they would have seen.
    """

    def __init__(self, network):
        network.materialize()
        self.network = network
        mode = network.policy.mode
        self.metered = mode is not BandwidthMode.UNBOUNDED
        self.strict = mode is BandwidthMode.STRICT
        self.budget = network._budget
        # Preallocated adjacency: one tuple per node, resolved once.
        self.neighbors = {
            node: ctx.neighbors for node, ctx in network.contexts.items()
        }
        self.neighbor_sets = network._neighbor_sets
        self.running = dict(network._generators)
        self.inboxes: Dict[int, Dict[int, Any]] = {}
        #: True once the generators have received their first resume
        #: (a fresh generator must be sent None, not an inbox).
        self.primed = network._started
        self.round_index = 0
        self.rounds = 0
        self.total_messages = 0
        self.total_bits = 0
        self.max_message_bits = 0
        self.violations = 0
        self.worst_violation_bits = 0
        self.stopped_early = False

    def run_until(
        self,
        bound: Optional[int],
        *,
        max_rounds: int,
        stop_when: Optional[Callable] = None,
        raise_on_timeout: bool = True,
    ) -> str:
        """Drive rounds while ``round_index < bound`` (``None`` = no
        bound).  Returns ``PAUSED``/``STOPPED``/``TIMEOUT``/``HALTED``.
        """
        network = self.network
        metered = self.metered
        strict = self.strict
        budget = self.budget
        neighbors = self.neighbors
        neighbor_sets = self.neighbor_sets
        outputs = network.outputs
        running = self.running
        inboxes = self.inboxes
        primed = self.primed
        round_index = self.round_index
        rounds = self.rounds
        total_messages = self.total_messages
        total_bits = self.total_bits
        max_message_bits = self.max_message_bits
        violations = self.violations
        worst_violation_bits = self.worst_violation_bits
        status = HALTED

        try:
            while running:
                if bound is not None and round_index >= bound:
                    status = PAUSED
                    break
                # Monitor before timeout (same order as reference): a
                # stop condition reached on the final round is an
                # early stop.
                if stop_when is not None and stop_when(
                    network, round_index
                ):
                    self.stopped_early = True
                    status = STOPPED
                    break
                if round_index >= max_rounds:
                    if raise_on_timeout:
                        raise NonterminationError(
                            max_rounds, set(running)
                        )
                    status = TIMEOUT
                    break

                next_inboxes: Dict[int, Dict[int, Any]] = {}
                halted_now = []
                round_messages = 0

                for node, gen in running.items():
                    try:
                        if primed:
                            outbox = gen.send(
                                inboxes.get(node, _EMPTY_INBOX)
                            )
                        else:
                            outbox = gen.send(None)
                    except StopIteration as stop:
                        outputs[node] = stop.value
                        halted_now.append(node)
                        continue
                    if outbox is None:
                        continue
                    if isinstance(outbox, Broadcast):
                        payload = outbox.payload
                        if metered:
                            bits = bit_size(payload)
                            total_bits += bits
                            if bits > max_message_bits:
                                max_message_bits = bits
                            if bits > budget:
                                if strict:
                                    raise BandwidthExceededError(
                                        node, "<all>", bits, budget
                                    )
                                violations += 1
                                if bits > worst_violation_bits:
                                    worst_violation_bits = bits
                        # One metered message fanned out to all
                        # neighbors (matches reference: a broadcast
                        # counts once).
                        total_messages += 1
                        nbrs = neighbors[node]
                        for receiver in nbrs:
                            box = next_inboxes.get(receiver)
                            if box is None:
                                next_inboxes[receiver] = {node: payload}
                            else:
                                box[node] = payload
                        round_messages += len(nbrs)
                        continue
                    if not isinstance(outbox, dict):
                        raise ProtocolViolationError(
                            f"node {node} yielded "
                            f"{type(outbox).__name__}; expected dict or "
                            "Broadcast"
                        )
                    if not outbox:
                        continue
                    allowed = neighbor_sets[node]
                    for receiver, payload in outbox.items():
                        if receiver not in allowed:
                            raise ProtocolViolationError(
                                f"node {node} sent to non-neighbor "
                                f"{receiver}"
                            )
                        if metered:
                            bits = bit_size(payload)
                            total_bits += bits
                            if bits > max_message_bits:
                                max_message_bits = bits
                            if bits > budget:
                                if strict:
                                    raise BandwidthExceededError(
                                        node, receiver, bits, budget
                                    )
                                violations += 1
                                if bits > worst_violation_bits:
                                    worst_violation_bits = bits
                        total_messages += 1
                        box = next_inboxes.get(receiver)
                        if box is None:
                            next_inboxes[receiver] = {node: payload}
                        else:
                            box[node] = payload
                        round_messages += 1

                primed = True
                network._started = True

                for node in halted_now:
                    del running[node]
                inboxes = next_inboxes
                # Trailing halt-only resumes are local computation, not
                # a communication round (same accounting as reference).
                if running or round_messages > 0:
                    rounds += 1
                round_index += 1
        finally:
            self.primed = primed
            self.round_index = round_index
            self.rounds = rounds
            self.total_messages = total_messages
            self.total_bits = total_bits
            self.max_message_bits = max_message_bits
            self.violations = violations
            self.worst_violation_bits = worst_violation_bits
            self.inboxes = inboxes
        return status

    def result(self):
        """Assemble the :class:`RunResult` for the rounds driven so
        far."""
        from repro.congest.network import RunResult

        metrics = RunMetrics(
            rounds=self.rounds,
            total_messages=self.total_messages,
            total_bits=self.total_bits,
            max_message_bits=self.max_message_bits,
            budget_bits=self.budget,
            violations=self.violations,
            worst_violation_bits=self.worst_violation_bits,
        )
        return RunResult(
            outputs=dict(self.network.outputs),
            metrics=metrics,
            halted=not self.running,
            stopped_early=self.stopped_early,
            programs=self.network.programs,
        )


class FastpathBackend(ExecutionBackend):
    """Metering-light lockstep executor for large instances."""

    name = "fastpath"

    def execute(
        self,
        network,
        *,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
    ):
        if record_rounds:
            from repro.exec import get_backend

            return get_backend("reference").execute(
                network,
                max_rounds=max_rounds,
                stop_when=stop_when,
                raise_on_timeout=raise_on_timeout,
                record_rounds=True,
            )
        rec = obs_trace.recorder()
        trace_t0 = rec.clock() if rec is not None else 0.0
        loop = GeneratorLoop(network)
        loop.run_until(
            None,
            max_rounds=max_rounds,
            stop_when=stop_when,
            raise_on_timeout=raise_on_timeout,
        )
        if rec is not None:
            rec.complete(
                "exec.run",
                trace_t0,
                {
                    "backend": self.name,
                    "rounds": loop.rounds,
                    "messages": loop.total_messages,
                    "bits": loop.total_bits,
                    "halted": not loop.running,
                },
            )
        return loop.result()
