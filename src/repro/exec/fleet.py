"""Lease-based fleet scheduling over shard manifests.

:mod:`repro.exec.shards` fixes *what* each shard owns (deterministic
round-robin over the manifest).  This module schedules *who runs it*:
any number of worker processes — on any host sharing the checkpoint
directory — claim incomplete shards through atomic lease files,
heartbeat while they run, and reclaim the leases of workers that died
mid-shard, so a killed worker's shard is finished by a survivor and
:func:`~repro.exec.shards.merge_shards` still produces the exact
unsharded :class:`~repro.exec.sweep.SweepResult`.

The lease protocol (see ``docs/FLEET.md`` for the full walk-through)::

    <dir>/manifest.json             the compiled grid
    <dir>/shard_<i>.jsonl           per-cell checkpoints (append-only)
    <dir>/leases/shard_<i>.lease    who is running shard i right now

* **claim** — create the lease file with ``O_CREAT | O_EXCL`` (atomic
  on POSIX and NFSv3+); exactly one claimant wins.
* **heartbeat** — rewrite the lease (unique temp file + fsync +
  ``os.replace``) bumping a monotonic counter after every
  checkpointed cell.  Observers never compare wall clocks across
  hosts: a lease is *stale* when its ``(owner, token, counter)`` has
  not changed for ``stale_after`` seconds of the *observer's* local
  monotonic time.
* **reclaim** — ``os.rename`` the stale lease to a unique tombstone
  (exactly one reclaimer wins the rename), then re-claim with the
  takeover count bumped.  ``max_takeovers`` bounds retries on a
  poison shard.

Exactly-once execution is *not* promised under arbitrary pauses (a
worker suspended longer than ``stale_after`` may race its reclaimer
for a few cells); byte-identical merges are promised anyway, because
cell execution is deterministic and duplicate checkpoint records are
repaired keep-first by :func:`~repro.exec.shards._read_checkpoint`.

CLI (any worker, any host)::

    python -m repro.exec.fleet work   <dir> [--stale-after 30 ...]
    python -m repro.exec.fleet status <dir>
    python -m repro.exec.fleet merge  <dir>
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.exec.shards import (
    ShardManifest,
    ShardRun,
    compile_manifest,
    merge_shards,
    one_shard_status,
    prebuild_tag,
    run_shard,
    shard_status,
)
from repro.exec.sweep import SweepCell, SweepResult, prebuild_instances

LEASE_DIR = "leases"
LEASE_VERSION = 1


class LeaseLostError(RuntimeError):
    """The lease this worker was heartbeating has been reclaimed."""


class FleetStalledError(RuntimeError):
    """Every remaining shard's takeover budget is exhausted."""


class FleetTimeoutError(RuntimeError):
    """A worker's ``deadline`` elapsed before the manifest completed."""


@dataclass(frozen=True)
class ReclaimPolicy:
    """Tunables of the claim / heartbeat / reclaim loop.

    ``stale_after`` is the liveness horizon: a lease whose heartbeat
    counter has not advanced for this many seconds (of the observer's
    monotonic clock) is reclaimable.  It must comfortably exceed the
    worst per-cell wall time, since workers heartbeat per cell.
    ``poll_interval`` / ``backoff`` / ``max_poll_interval`` shape the
    idle loop of a worker that currently has nothing to claim, and
    ``max_takeovers`` bounds how often a repeatedly-dying shard is
    retried before the fleet declares it stuck.
    """

    stale_after: float = 30.0
    poll_interval: float = 0.5
    backoff: float = 2.0
    max_poll_interval: float = 8.0
    max_takeovers: int = 5


def default_worker_id() -> str:
    return (
        f"{socket.gethostname()}:{os.getpid()}"
        f":{threading.get_native_id()}"
    )


class Lease:
    """A held lease on one shard (returned by a successful claim)."""

    __slots__ = ("store", "shard", "token", "counter", "takeovers")

    def __init__(
        self,
        store: "LeaseStore",
        shard: int,
        token: str,
        counter: int,
        takeovers: int,
    ):
        self.store = store
        self.shard = shard
        self.token = token
        self.counter = counter
        self.takeovers = takeovers

    def heartbeat(self) -> None:
        """Bump the monotonic counter (raises :class:`LeaseLostError`
        if the lease was reclaimed out from under us)."""
        self.store._heartbeat(self)

    def release(self) -> None:
        """Drop the lease (no-op if it is no longer ours)."""
        self.store._release(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Lease shard={self.shard} counter={self.counter} "
            f"takeovers={self.takeovers}>"
        )


class LeaseStore:
    """Atomic lease files for one manifest's checkpoint directory.

    One store per worker: it carries the worker identity, and the
    per-shard ``(owner, token, counter)`` observations its staleness
    judgements are made from.  Multiple stores (processes, hosts) over
    the same directory coordinate purely through the filesystem.
    """

    def __init__(
        self,
        checkpoint_dir: str,
        grid_digest: str,
        worker_id: Optional[str] = None,
        policy: Optional[ReclaimPolicy] = None,
        clock=time.monotonic,
    ):
        self.checkpoint_dir = checkpoint_dir
        self.grid_digest = grid_digest
        self.worker_id = worker_id or default_worker_id()
        self.policy = policy or ReclaimPolicy()
        self._clock = clock
        #: shard -> ((owner, token, counter), first seen at) — the
        #: local-monotonic observation history staleness is judged on.
        self._observed: Dict[int, Tuple[Tuple, float]] = {}
        self._reclaim_seq = 0
        self.lease_dir = os.path.join(checkpoint_dir, LEASE_DIR)
        os.makedirs(self.lease_dir, exist_ok=True)

    def lease_path(self, shard: int) -> str:
        return os.path.join(self.lease_dir, f"shard_{shard}.lease")

    # -- reading and staleness -------------------------------------------

    def read(self, shard: int) -> Optional[Dict]:
        """The shard's current lease record, ``None`` if unleased, or
        ``{"corrupt": True}`` for an unparseable file (a claimer died
        mid-create; it never heartbeats, so it goes stale like any
        other dead lease)."""
        try:
            with open(
                self.lease_path(shard), "r", encoding="utf-8"
            ) as handle:
                raw = handle.read()
        except FileNotFoundError:
            self._observed.pop(shard, None)
            return None
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("lease is not an object")
        except ValueError:
            return {"corrupt": True}
        return data

    def is_stale(self, shard: int, data: Dict) -> bool:
        """Whether this lease has gone ``stale_after`` seconds (local
        monotonic) without its heartbeat key changing.  The first
        sighting of a key only *starts* the clock, so a fresh store
        never reclaims on its first pass."""
        key = (
            data.get("owner"),
            data.get("token"),
            data.get("counter"),
        )
        now = self._clock()
        seen = self._observed.get(shard)
        if seen is None or seen[0] != key:
            self._observed[shard] = (key, now)
            return False
        return now - seen[1] >= self.policy.stale_after

    # -- claim / heartbeat / release / reclaim ---------------------------

    def _payload(
        self, shard: int, token: str, counter: int, takeovers: int
    ) -> bytes:
        record = {
            "version": LEASE_VERSION,
            "shard": shard,
            "grid": self.grid_digest,
            "owner": self.worker_id,
            "token": token,
            "counter": counter,
            "takeovers": takeovers,
        }
        return (
            json.dumps(record, separators=(",", ":")) + "\n"
        ).encode("utf-8")

    def try_claim(
        self, shard: int, takeovers: int = 0
    ) -> Optional[Lease]:
        """Claim an unleased shard via ``O_CREAT | O_EXCL`` — exactly
        one concurrent claimant wins.  Returns ``None`` on loss."""
        path = self.lease_path(shard)
        token = os.urandom(8).hex()
        try:
            fd = os.open(
                path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return None
        try:
            os.write(
                fd, self._payload(shard, token, 0, takeovers)
            )
            os.fsync(fd)
        finally:
            os.close(fd)
        obs_trace.event(
            "fleet.claim",
            shard=shard,
            worker=self.worker_id,
            takeovers=takeovers,
        )
        obs_metrics.registry().counter("fleet.claims").inc()
        return Lease(self, shard, token, 0, takeovers)

    def try_reclaim(self, shard: int) -> Optional[Lease]:
        """Take over a stale lease: atomically rename it to a unique
        tombstone (one reclaimer wins), then re-claim with the
        takeover count bumped.  Returns ``None`` if the lease is
        live, not yet observed long enough, over its takeover budget,
        or lost to a racing reclaimer.

        Between our tombstone rename and our re-claim, a peer scanning
        the shard sees it unleased and may win the fresh ``O_EXCL``
        claim — the shard still gets exactly one new owner, but the
        takeover is then recorded as a plain claim (count reset), so
        ``max_takeovers`` is a best-effort bound under racing
        claimants, not an exact one."""
        data = self.read(shard)
        if data is None or not self.is_stale(shard, data):
            return None
        takeovers = data.get("takeovers", 0)
        if not isinstance(takeovers, int):
            takeovers = 0
        if takeovers >= self.policy.max_takeovers:
            return None
        path = self.lease_path(shard)
        self._reclaim_seq += 1
        tombstone = (
            f"{path}.dead.{os.getpid()}"
            f".{threading.get_native_id()}.{self._reclaim_seq}"
        )
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return None  # lost the race, or the owner released
        try:
            os.unlink(tombstone)
        except FileNotFoundError:  # pragma: no cover - best effort
            pass
        self._observed.pop(shard, None)
        lease = self.try_claim(shard, takeovers=takeovers + 1)
        if lease is not None:
            obs_trace.event(
                "fleet.reclaim",
                shard=shard,
                worker=self.worker_id,
                previous_owner=data.get("owner"),
                takeovers=takeovers + 1,
            )
            obs_metrics.registry().counter("fleet.reclaims").inc()
        return lease

    def _write_atomic(self, path: str, blob: bytes) -> None:
        tmp = (
            f"{path}.tmp.{os.getpid()}.{threading.get_native_id()}"
        )
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _heartbeat(self, lease: Lease) -> None:
        data = self.read(lease.shard)
        if data is None or data.get("token") != lease.token:
            obs_trace.event(
                "fleet.lease_lost",
                shard=lease.shard,
                worker=self.worker_id,
                new_owner=(data or {}).get("owner"),
            )
            obs_metrics.registry().counter("fleet.lease_lost").inc()
            raise LeaseLostError(
                f"lease on shard {lease.shard} was reclaimed"
                + (
                    f" by {data.get('owner')!r}"
                    if data is not None
                    else ""
                )
            )
        lease.counter += 1
        self._write_atomic(
            self.lease_path(lease.shard),
            self._payload(
                lease.shard,
                lease.token,
                lease.counter,
                lease.takeovers,
            ),
        )
        obs_trace.event(
            "fleet.heartbeat",
            shard=lease.shard,
            worker=self.worker_id,
            counter=lease.counter,
        )
        obs_metrics.registry().counter("fleet.heartbeats").inc()

    def _release(self, lease: Lease) -> None:
        data = self.read(lease.shard)
        if data is not None and data.get("token") == lease.token:
            try:
                os.unlink(self.lease_path(lease.shard))
            except FileNotFoundError:  # pragma: no cover
                pass
            obs_trace.event(
                "fleet.release",
                shard=lease.shard,
                worker=self.worker_id,
            )
            obs_metrics.registry().counter("fleet.releases").inc()
        self._observed.pop(lease.shard, None)


# ----------------------------------------------------------------------
# the worker driver


@dataclass
class FleetWorkerReport:
    """What one :func:`run_fleet_worker` invocation did."""

    worker_id: str
    claimed: List[int] = field(default_factory=list)
    reclaimed: List[int] = field(default_factory=list)
    completed: List[int] = field(default_factory=list)
    #: shards abandoned mid-run because the lease was reclaimed.
    lost: List[int] = field(default_factory=list)
    executed: int = 0
    resumed: int = 0

    def summary(self) -> str:
        return (
            f"worker {self.worker_id}: claimed {self.claimed}, "
            f"reclaimed {self.reclaimed}, completed {self.completed}"
            f", lost {self.lost}, executed {self.executed} cells "
            f"(+{self.resumed} resumed)"
        )


def _prebuild_manifest(manifest: ShardManifest) -> None:
    """Prebuild every instance the manifest references, once per
    process — claimed shard #2, #3, ... reuse it via the cache's
    prewarm tag instead of re-scanning."""
    from repro.workloads import instance_cache

    cache = instance_cache()
    tag = prebuild_tag(manifest)
    if cache.was_prewarmed(tag):
        return
    prebuild_instances(
        list(manifest.cells),
        prewarm_csr=(manifest.inner == "vectorized"),
    )
    cache.mark_prewarmed(tag)


def _run_leased_shard(
    manifest: ShardManifest,
    checkpoint_dir: str,
    lease: Lease,
    throttle: float = 0.0,
) -> ShardRun:
    def beat(index, result):
        if throttle:
            time.sleep(throttle)
        lease.heartbeat()

    return run_shard(
        manifest, lease.shard, checkpoint_dir, on_cell=beat
    )


def run_fleet_worker(
    manifest: ShardManifest,
    checkpoint_dir: str,
    worker_id: Optional[str] = None,
    policy: Optional[ReclaimPolicy] = None,
    max_shards: Optional[int] = None,
    wait_for_completion: bool = True,
    deadline: Optional[float] = None,
    throttle: float = 0.0,
) -> FleetWorkerReport:
    """One worker's scheduler loop: claim, run, heartbeat, reclaim.

    The worker repeatedly scans the manifest's shards; incomplete
    unleased shards are claimed (``O_EXCL``), incomplete shards under
    a stale lease are reclaimed, and each held shard runs through the
    lease-aware :func:`~repro.exec.shards.run_shard` (heartbeat per
    checkpointed cell; :class:`LeaseLostError` abandons the shard to
    its new owner).  With ``wait_for_completion`` (default) the
    worker lingers as a hot standby — sleeping with bounded backoff —
    until *every* shard is complete, so it can reclaim work from
    late-dying peers; otherwise it returns as soon as nothing is
    claimable.

    ``max_shards`` bounds how many shards this invocation will hold
    (testing / incremental schedulers), ``deadline`` (seconds) raises
    :class:`FleetTimeoutError` rather than waiting forever, and
    ``throttle`` sleeps that long per cell (the kill-window hook the
    fleet tests and the CI smoke job use).
    """
    policy = policy or ReclaimPolicy()
    os.makedirs(checkpoint_dir, exist_ok=True)
    store = LeaseStore(
        checkpoint_dir,
        manifest.grid_digest,
        worker_id=worker_id,
        policy=policy,
    )
    report = FleetWorkerReport(worker_id=store.worker_id)
    _prebuild_manifest(manifest)
    start = time.monotonic()
    idle = policy.poll_interval
    while True:
        if (
            deadline is not None
            and time.monotonic() - start > deadline
        ):
            raise FleetTimeoutError(
                f"worker {store.worker_id} exceeded its "
                f"{deadline}s deadline; {report.summary()}"
            )
        statuses = shard_status(manifest, checkpoint_dir)
        incomplete = [s for s in statuses if not s.complete]
        if not incomplete:
            return report
        held_total = len(report.claimed) + len(report.reclaimed)
        if max_shards is not None and held_total >= max_shards:
            return report
        progressed = False
        blocked_live = 0
        exhausted: List[int] = []
        for status in incomplete:
            lease = None
            was_reclaim = False
            data = store.read(status.shard)
            if data is None:
                lease = store.try_claim(status.shard)
            elif store.is_stale(status.shard, data):
                takeovers = data.get("takeovers", 0)
                if (
                    isinstance(takeovers, int)
                    and takeovers >= policy.max_takeovers
                ):
                    exhausted.append(status.shard)
                    continue
                lease = store.try_reclaim(status.shard)
                was_reclaim = lease is not None
            else:
                blocked_live += 1
            if lease is None:
                continue
            # A peer may have finished this shard (and released its
            # lease) after our status snapshot: the claim then lands
            # on complete work.  O_EXCL only succeeds after the
            # release, and the release only happens after the final
            # checkpoint write, so this recheck is authoritative.
            if one_shard_status(
                manifest, checkpoint_dir, status.shard
            ).complete:
                lease.release()
                progressed = True
                continue
            if was_reclaim:
                report.reclaimed.append(status.shard)
            else:
                report.claimed.append(status.shard)
            progressed = True
            try:
                run = _run_leased_shard(
                    manifest, checkpoint_dir, lease, throttle
                )
            except LeaseLostError:
                report.lost.append(lease.shard)
                continue
            report.executed += run.executed
            report.resumed += run.resumed
            if run.complete:
                report.completed.append(lease.shard)
            lease.release()
            held_total = len(report.claimed) + len(report.reclaimed)
            if max_shards is not None and held_total >= max_shards:
                break
        if progressed:
            idle = policy.poll_interval
            continue
        if len(exhausted) == len(incomplete) and not blocked_live:
            raise FleetStalledError(
                f"shards {exhausted} exceeded max_takeovers="
                f"{policy.max_takeovers} and no live worker holds "
                "them; inspect their checkpoints before retrying"
            )
        if not wait_for_completion:
            return report
        time.sleep(idle)
        idle = min(idle * policy.backoff, policy.max_poll_interval)


def run_fleet(
    cells: Sequence[SweepCell],
    num_shards: int,
    checkpoint_dir: str,
    num_workers: int = 2,
    inner: str = "fastpath",
    policy: Optional[ReclaimPolicy] = None,
    deadline: Optional[float] = None,
) -> SweepResult:
    """Convenience: compile + save the manifest, race ``num_workers``
    in-process worker threads over it, merge.

    Multi-host fleets instead call :func:`~repro.exec.shards.
    compile_manifest` + ``manifest.save`` once, start
    ``python -m repro.exec.fleet work <dir>`` anywhere, and
    ``merge`` when :func:`fleet_status` shows every shard complete.
    """
    manifest = compile_manifest(cells, num_shards, inner=inner)
    os.makedirs(checkpoint_dir, exist_ok=True)
    manifest.save(checkpoint_dir)
    if num_workers <= 1:
        run_fleet_worker(
            manifest,
            checkpoint_dir,
            policy=policy,
            deadline=deadline,
        )
    else:
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=num_workers
        ) as pool:
            futures = [
                pool.submit(
                    run_fleet_worker,
                    manifest,
                    checkpoint_dir,
                    worker_id=f"{default_worker_id()}:w{k}",
                    policy=policy,
                    deadline=deadline,
                )
                for k in range(num_workers)
            ]
            for future in futures:
                future.result()
    return merge_shards(manifest, checkpoint_dir)


# ----------------------------------------------------------------------
# observability


@dataclass(frozen=True)
class ShardLeaseStatus:
    """One shard's checkpoint + lease state, for dashboards/CLI."""

    shard: int
    done: int
    total: int
    damaged: bool
    state: str  # "complete" | "leased" | "pending"
    owner: Optional[str] = None
    counter: Optional[int] = None
    takeovers: int = 0


def fleet_status(
    manifest: ShardManifest, checkpoint_dir: str
) -> List[ShardLeaseStatus]:
    """Checkpoint progress joined with the current lease per shard.

    Staleness is deliberately *not* judged here — it needs repeated
    observation over ``stale_after`` seconds; compare ``counter``
    across two invocations instead.
    """
    store = LeaseStore(
        checkpoint_dir, manifest.grid_digest, worker_id="status"
    )
    rows = []
    for status in shard_status(manifest, checkpoint_dir):
        data = store.read(status.shard)
        if data is not None:
            state = "leased"
        elif status.complete:
            state = "complete"
        else:
            state = "pending"
        takeovers = (data or {}).get("takeovers", 0)
        rows.append(
            ShardLeaseStatus(
                shard=status.shard,
                done=status.done,
                total=status.total,
                damaged=status.damaged,
                state=state,
                owner=(data or {}).get("owner"),
                counter=(data or {}).get("counter"),
                takeovers=takeovers if isinstance(takeovers, int) else 0,
            )
        )
    return rows


# ----------------------------------------------------------------------
# CLI


def _report_record(report: FleetWorkerReport) -> Dict:
    """The worker report as a structured (JSON-ready) record."""
    return {
        "event": "worker_done",
        "worker_id": report.worker_id,
        "claimed": report.claimed,
        "reclaimed": report.reclaimed,
        "completed": report.completed,
        "lost": report.lost,
        "executed": report.executed,
        "resumed": report.resumed,
    }


def _status_record(rows: List[ShardLeaseStatus]) -> Dict:
    """Per-shard status as a structured (JSON-ready) record."""
    return {
        "event": "fleet_status",
        "complete": all(r.state == "complete" for r in rows),
        "shards": [
            {
                "shard": row.shard,
                "done": row.done,
                "total": row.total,
                "damaged": row.damaged,
                "state": row.state,
                "owner": row.owner,
                "counter": row.counter,
                "takeovers": row.takeovers,
            }
            for row in rows
        ],
    }


def _emit(record: Dict, as_json: bool, human: str) -> None:
    """One output record: the structured form under ``--json``, the
    human rendering otherwise."""
    if as_json:
        print(json.dumps(record, sort_keys=True))
    else:
        print(human)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import hashlib

    defaults = ReclaimPolicy()
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.fleet",
        description=(
            "Lease-based fleet worker / status / merge over a shard "
            "manifest directory (see docs/FLEET.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    work = sub.add_parser(
        "work", help="claim, run, and reclaim shards until done"
    )
    work.add_argument("checkpoint_dir")
    work.add_argument("--worker-id", default=None)
    work.add_argument(
        "--stale-after", type=float, default=defaults.stale_after
    )
    work.add_argument(
        "--poll-interval", type=float, default=defaults.poll_interval
    )
    work.add_argument(
        "--max-takeovers", type=int, default=defaults.max_takeovers
    )
    work.add_argument("--max-shards", type=int, default=None)
    work.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="give up (exit 4) after this many seconds",
    )
    work.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        help="sleep per cell (kill-window hook for tests/CI)",
    )
    work.add_argument(
        "--no-wait",
        action="store_true",
        help="return when nothing is claimable instead of lingering",
    )
    work.add_argument(
        "--trace-dir",
        default=None,
        help=(
            "write a repro.obs trace (per-process file in this "
            "directory; render with python -m repro.obs)"
        ),
    )

    status_p = sub.add_parser(
        "status", help="per-shard checkpoint + lease state"
    )
    status_p.add_argument("checkpoint_dir")

    merge_p = sub.add_parser(
        "merge",
        help="merge completed shards; prints the result fingerprint",
    )
    merge_p.add_argument("checkpoint_dir")

    for cmd in (work, status_p, merge_p):
        cmd.add_argument(
            "--json",
            action="store_true",
            help="emit structured JSON records instead of prose",
        )

    args = parser.parse_args(argv)
    manifest = ShardManifest.load(args.checkpoint_dir)

    if args.command == "work":
        policy = ReclaimPolicy(
            stale_after=args.stale_after,
            poll_interval=args.poll_interval,
            max_takeovers=args.max_takeovers,
        )
        rec = None
        if args.trace_dir:
            rec = obs_trace.enable(
                args.trace_dir,
                worker=args.worker_id or default_worker_id(),
            )
        try:
            report = run_fleet_worker(
                manifest,
                args.checkpoint_dir,
                worker_id=args.worker_id,
                policy=policy,
                max_shards=args.max_shards,
                wait_for_completion=not args.no_wait,
                deadline=args.deadline,
                throttle=args.throttle,
            )
        except FleetTimeoutError as exc:
            _emit(
                {"event": "worker_timeout", "error": str(exc)},
                args.json,
                str(exc),
            )
            return 4
        finally:
            if rec is not None:
                obs_metrics.sample_peak_rss()
                rec.metrics(obs_metrics.registry().snapshot())
                obs_trace.disable()
        _emit(_report_record(report), args.json, report.summary())
        return 0

    if args.command == "status":
        rows = fleet_status(manifest, args.checkpoint_dir)
        record = _status_record(rows)
        if args.json:
            print(json.dumps(record, sort_keys=True))
        else:
            for row in rows:
                lease = (
                    f" lease={row.owner} counter={row.counter} "
                    f"takeovers={row.takeovers}"
                    if row.state == "leased"
                    else ""
                )
                damaged = " DAMAGED" if row.damaged else ""
                print(
                    f"shard {row.shard}: {row.done}/{row.total} "
                    f"{row.state}{damaged}{lease}"
                )
        return 0 if record["complete"] else 3

    result = merge_shards(manifest, args.checkpoint_dir)
    digest = hashlib.sha256(result.fingerprint()).hexdigest()
    aggregate = result.aggregate_metrics()
    record = {
        "event": "merge_done",
        "fingerprint_sha256": digest,
        "aggregate": {
            "rounds": aggregate.rounds,
            "total_messages": aggregate.total_messages,
            "total_bits": aggregate.total_bits,
            "max_message_bits": aggregate.max_message_bits,
            "violations": aggregate.violations,
        },
        "cache": (
            result.cache_stats.snapshot()
            if result.cache_stats is not None
            else None
        ),
    }
    if args.json:
        print(json.dumps(record, sort_keys=True))
    else:
        print(f"fingerprint sha256: {digest}")
        print(f"aggregate: {aggregate.summary()}")
        if result.cache_stats is not None:
            stats = result.cache_stats
            print(
                f"cache: hits={stats.hits} misses={stats.misses} "
                f"csr_builds={stats.csr_builds} "
                f"square_builds={stats.square_builds}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
