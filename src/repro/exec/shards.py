"""Sharded, resumable sweep execution.

A grid of :class:`~repro.exec.sweep.SweepCell` compiles to a
deterministic *shard manifest* — a JSON document fixing the cell list
(in submission order), the round-level engine, and a round-robin
assignment of cells to ``num_shards`` shards.  Each shard then runs
independently: in this process, in a pool, or on a second host pointed
at the same manifest file.  Completed cells are checkpointed one JSON
line at a time, so a killed shard resumes from its checkpoint without
recomputing finished cells, and :func:`merge_shards` reassembles the
:class:`~repro.exec.sweep.SweepResult` in manifest order — byte-
identical (``fingerprint()`` and aggregate metrics) to an unsharded
run of the same grid.

Layout on disk::

    <dir>/manifest.json      the compiled grid (see MANIFEST_VERSION)
    <dir>/shard_<i>.jsonl    one completed CellResult per line

Workload-keyed cells serialize as their key, so a manifest stays small
even for huge instances — any host with the same code resolves the
key through :mod:`repro.workloads` and its instance cache.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.policy import BandwidthMode, BandwidthPolicy
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.exec.sweep import (
    CellResult,
    SweepCell,
    SweepResult,
    prebuild_instances,
    run_cell,
)

MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"


class ShardIncompleteError(RuntimeError):
    """Raised by :func:`merge_shards` when checkpoints are missing
    results for some manifest cells."""


# ----------------------------------------------------------------------
# JSON codecs (lossless: merge must be byte-identical to unsharded)


def policy_to_json(policy: Optional[BandwidthPolicy]) -> Optional[Dict]:
    if policy is None:
        return None
    return {
        "mode": policy.mode.value,
        "beta": policy.beta,
        "min_bits": policy.min_bits,
    }


def policy_from_json(data: Optional[Dict]) -> Optional[BandwidthPolicy]:
    if data is None:
        return None
    return BandwidthPolicy(
        mode=BandwidthMode(data["mode"]),
        beta=data["beta"],
        min_bits=data["min_bits"],
    )


def cell_to_json(cell: SweepCell) -> Dict:
    data: Dict[str, Any] = {
        "algorithm": cell.algorithm,
        "scenario": cell.scenario,
        "seed": cell.seed,
        "policy": policy_to_json(cell.policy),
    }
    if cell.workload is not None:
        data["workload"] = cell.workload
    else:
        data["nodes"] = list(cell.nodes)
        data["edges"] = [list(e) for e in cell.edges]
        # Attribute keys are omitted when empty so attribute-free
        # grids keep their pre-existing digests.
        if cell.node_attrs:
            data["node_attrs"] = [
                [v, [list(kv) for kv in items]]
                for v, items in cell.node_attrs
            ]
        if cell.edge_attrs:
            data["edge_attrs"] = [
                [list(edge), [list(kv) for kv in items]]
                for edge, items in cell.edge_attrs
            ]
    return data


def cell_from_json(data: Dict) -> SweepCell:
    return SweepCell(
        algorithm=data["algorithm"],
        scenario=data["scenario"],
        seed=data["seed"],
        nodes=tuple(data.get("nodes", ())),
        edges=tuple(tuple(e) for e in data.get("edges", ())),
        policy=policy_from_json(data.get("policy")),
        workload=data.get("workload"),
        node_attrs=tuple(
            (v, tuple(tuple(kv) for kv in items))
            for v, items in data.get("node_attrs", ())
        ),
        edge_attrs=tuple(
            (tuple(edge), tuple(tuple(kv) for kv in items))
            for edge, items in data.get("edge_attrs", ())
        ),
    )


def _metrics_to_json(metrics: RunMetrics) -> Dict:
    return {
        "rounds": metrics.rounds,
        "total_messages": metrics.total_messages,
        "total_bits": metrics.total_bits,
        "max_message_bits": metrics.max_message_bits,
        "budget_bits": metrics.budget_bits,
        "violations": metrics.violations,
        "worst_violation_bits": metrics.worst_violation_bits,
        "per_round": [
            {
                "round_index": r.round_index,
                "messages": r.messages,
                "bits": r.bits,
                "max_message_bits": r.max_message_bits,
            }
            for r in metrics.per_round
        ],
    }


def _metrics_from_json(data: Dict) -> RunMetrics:
    return RunMetrics(
        rounds=data["rounds"],
        total_messages=data["total_messages"],
        total_bits=data["total_bits"],
        max_message_bits=data["max_message_bits"],
        budget_bits=data["budget_bits"],
        violations=data["violations"],
        worst_violation_bits=data["worst_violation_bits"],
        per_round=[
            RoundMetrics(
                round_index=r["round_index"],
                messages=r["messages"],
                bits=r["bits"],
                max_message_bits=r["max_message_bits"],
            )
            for r in data["per_round"]
        ],
    )


def result_to_json(result: CellResult) -> Dict:
    return {
        "algorithm": result.algorithm,
        "scenario": result.scenario,
        "seed": result.seed,
        "colors_used": result.colors_used,
        "palette_size": result.palette_size,
        "rounds": result.rounds,
        "metrics": _metrics_to_json(result.metrics),
        "coloring": [list(pair) for pair in result.coloring],
        "error": result.error,
    }


def result_from_json(data: Dict) -> CellResult:
    return CellResult(
        algorithm=data["algorithm"],
        scenario=data["scenario"],
        seed=data["seed"],
        colors_used=data["colors_used"],
        palette_size=data["palette_size"],
        rounds=data["rounds"],
        metrics=_metrics_from_json(data["metrics"]),
        coloring=tuple(tuple(pair) for pair in data["coloring"]),
        error=data["error"],
    )


# ----------------------------------------------------------------------
# the manifest


@dataclass(frozen=True)
class ShardManifest:
    """A compiled grid: cell list (submission order), shard count,
    round-robin assignment, and the inner engine — everything a second
    process (or host) needs to run its share and merge."""

    num_shards: int
    inner: str
    cells: Tuple[SweepCell, ...]
    grid_digest: str

    def shard_indices(self, shard: int) -> List[int]:
        """Manifest-order cell indices owned by ``shard``
        (round-robin, so shards stay balanced whatever the grid
        ordering)."""
        self._validate_shard(shard)
        return list(range(shard, len(self.cells), self.num_shards))

    def shard_cells(self, shard: int) -> List[Tuple[int, SweepCell]]:
        """``(manifest index, cell)`` pairs owned by ``shard``."""
        return [(i, self.cells[i]) for i in self.shard_indices(shard)]

    def _validate_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in 0..{self.num_shards - 1}; got {shard}"
            )

    # -- persistence -----------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "version": MANIFEST_VERSION,
            "num_shards": self.num_shards,
            "inner": self.inner,
            "grid_digest": self.grid_digest,
            "cells": [cell_to_json(cell) for cell in self.cells],
        }

    def save(self, path: str) -> str:
        """Write the manifest (under ``path`` if it is a directory).

        The write is atomic (unique temp file + fsync + ``os.replace``,
        the same pattern checkpoint repair uses): a kill mid-save can
        never leave a torn manifest that makes every worker's
        :meth:`load` raise, and re-saving over a live manifest is safe
        while other workers hold it open.
        """
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_NAME)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @staticmethod
    def load(path: str) -> "ShardManifest":
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_NAME)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {data.get('version')!r}"
            )
        cells = tuple(cell_from_json(c) for c in data["cells"])
        manifest = ShardManifest(
            num_shards=data["num_shards"],
            inner=data["inner"],
            cells=cells,
            grid_digest=data["grid_digest"],
        )
        if grid_digest(cells) != data["grid_digest"]:
            raise ValueError(
                "manifest digest mismatch: cell list was modified"
            )
        return manifest


def grid_digest(cells: Sequence[SweepCell]) -> str:
    """Deterministic content address of a cell list (order matters:
    submission order is part of the grid identity)."""
    import hashlib

    payload = json.dumps(
        [cell_to_json(cell) for cell in cells], separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def compile_manifest(
    cells: Sequence[SweepCell],
    num_shards: int,
    inner: str = "fastpath",
) -> ShardManifest:
    """Compile a grid into a deterministic shard manifest."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    cells = tuple(cells)
    return ShardManifest(
        num_shards=num_shards,
        inner=inner,
        cells=cells,
        grid_digest=grid_digest(cells),
    )


# ----------------------------------------------------------------------
# shard execution with checkpointing


def checkpoint_path(checkpoint_dir: str, shard: int) -> str:
    return os.path.join(checkpoint_dir, f"shard_{shard}.jsonl")


def stats_path(checkpoint_dir: str, shard: int) -> str:
    """Cache-activity sidecar of a shard checkpoint.  Kept out of the
    result JSONL on purpose: non-result records there would read as
    damage to :func:`_read_checkpoint` and trigger repairs."""
    return os.path.join(checkpoint_dir, f"shard_{shard}.stats.json")


def _read_stats(path: str) -> Dict[str, int]:
    """The sidecar's counters, ``{}`` when absent or damaged (stats
    are advisory — a torn sidecar must never block a merge)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            return {}
        return {
            key: int(value)
            for key, value in data.items()
            if isinstance(value, (int, float))
        }
    except (OSError, ValueError):
        return {}


def _write_stats(path: str, data: Dict[str, int]) -> None:
    """Atomic sidecar write (same temp + fsync + replace pattern as
    the manifest), so a kill mid-write leaves the previous version."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_checkpoint(
    path: str, grid_digest: str, owned: Optional[Sequence[int]] = None
) -> Tuple[Dict[int, CellResult], bool]:
    """Completed ``{manifest index: result}`` from a shard checkpoint,
    plus whether any line was damaged or foreign.

    Every record is stamped with the manifest's grid digest; records
    from a *different* grid (a stale checkpoint left in a reused
    directory) are discarded like damaged ones, so they can never be
    merged into the wrong grid's result.  With ``owned`` (the manifest
    indices this shard is responsible for), records for indices the
    shard does *not* own — another shard's file copied into place, or
    out-of-range indices from a longer grid with the same digest —
    are discarded the same way, so ``ShardRun.resumed`` only ever
    counts owned cells.  Tolerates a truncated trailing line (the
    signature of a kill mid-write): the damaged record is dropped and
    recomputed on resume.

    A *duplicate* record for an index already seen is damage too (a
    doubly-appended checkpoint — e.g. a reclaimed lease whose previous
    owner was still flushing): the first record wins deterministically
    and the file is repaired, instead of the later record silently
    overwriting the earlier one forever.
    """
    done: Dict[int, CellResult] = {}
    damaged = False
    owned_set = None if owned is None else set(owned)
    if not os.path.exists(path):
        return done, damaged
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    if content and not content.endswith("\n"):
        damaged = True
    for line in content.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if record["grid"] != grid_digest:
                damaged = True
                continue
            index = record["index"]
            if owned_set is not None and index not in owned_set:
                damaged = True
                continue
            if index in done:
                damaged = True
                continue
            done[index] = result_from_json(record["result"])
        except (ValueError, KeyError, TypeError):
            damaged = True
            continue
    return done, damaged


def _checkpoint_record(
    index: int, result: CellResult, grid_digest: str
) -> str:
    record = {
        "index": index,
        "grid": grid_digest,
        "result": result_to_json(result),
    }
    return json.dumps(record, separators=(",", ":"))


def _repair_checkpoint(
    path: str, done: Dict[int, CellResult], grid_digest: str
) -> None:
    """Rewrite a damaged checkpoint to only this grid's valid
    records, so a resume never appends onto a torn line and stale
    foreign records are purged (atomic via rename)."""
    tmp = path + ".repair"
    with open(tmp, "w", encoding="utf-8") as handle:
        for index in sorted(done):
            handle.write(
                _checkpoint_record(index, done[index], grid_digest)
            )
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@dataclass
class ShardRun:
    """Outcome of one :func:`run_shard` invocation."""

    shard: int
    total: int
    resumed: int
    executed: int

    @property
    def complete(self) -> bool:
        return self.resumed + self.executed == self.total


def prebuild_tag(manifest: ShardManifest) -> Tuple:
    """Instance-cache prewarm tag meaning *every* instance this
    manifest references is already built in this process (see
    :meth:`InstanceCache.mark_prewarmed
    <repro.workloads.cache.InstanceCache.mark_prewarmed>`).  The
    fleet driver marks it after prebuilding the whole grid once, so
    each subsequently claimed shard skips the per-shard prebuild
    scan."""
    return ("shard-prebuild", manifest.grid_digest, manifest.inner)


def run_shard(
    manifest: ShardManifest,
    shard: int,
    checkpoint_dir: str,
    max_cells: Optional[int] = None,
    on_cell: Optional[Callable[[int, CellResult], None]] = None,
) -> ShardRun:
    """Execute (or resume) one shard, checkpointing per cell.

    Already-checkpointed cells are skipped, so re-invoking after a
    kill completes the shard without recomputing finished work.
    ``max_cells`` bounds how many *new* cells run this invocation —
    the hook the resume tests (and incremental schedulers) use to
    stop a shard mid-flight cleanly.

    ``on_cell(index, result)`` is called after each *newly executed*
    cell is checkpointed — the fleet scheduler's heartbeat hook.  An
    exception raised from it (e.g. :class:`~repro.exec.fleet.
    LeaseLostError`) aborts the remaining cells; everything already
    checkpointed stays durable for whoever runs the shard next.
    """
    os.makedirs(checkpoint_dir, exist_ok=True)
    path = checkpoint_path(checkpoint_dir, shard)
    owned = manifest.shard_cells(shard)
    done, damaged = _read_checkpoint(
        path,
        manifest.grid_digest,
        owned=manifest.shard_indices(shard),
    )
    reg = obs_metrics.registry()
    if damaged:
        _repair_checkpoint(path, done, manifest.grid_digest)
        obs_trace.event("shard.repair", shard=shard, kept=len(done))
        reg.counter("shard.repairs").inc()
    pending = [(i, cell) for i, cell in owned if i not in done]
    from repro.workloads import instance_cache

    cache = instance_cache()
    stats_baseline = cache.stats.snapshot()
    executed = 0
    with obs_trace.span(
        "shard.run",
        shard=shard,
        total=len(owned),
        resumed=len(done),
    ) as sp:
        # One build per referenced instance, shared by every pending
        # cell — skipped entirely when a fleet driver already prebuilt
        # the whole manifest into this process's cache (prebuild_tag).
        if not cache.was_prewarmed(prebuild_tag(manifest)):
            prebuild_instances(
                [cell for _, cell in pending],
                prewarm_csr=(manifest.inner == "vectorized"),
            )
        with open(path, "a", encoding="utf-8") as handle:
            for index, cell in pending:
                if max_cells is not None and executed >= max_cells:
                    break
                result = run_cell(cell, inner=manifest.inner)
                handle.write(
                    _checkpoint_record(
                        index, result, manifest.grid_digest
                    )
                )
                handle.write("\n")
                handle.flush()
                executed += 1
                if on_cell is not None:
                    on_cell(index, result)
        sp.annotate(executed=executed)
    reg.counter("shard.cells_resumed").inc(len(done))
    reg.counter("shard.cells_executed").inc(executed)
    # Cache activity of this invocation, accumulated into the shard's
    # sidecar (cumulative across resumes) for merge_shards to pick up.
    delta = cache.stats.delta(stats_baseline).snapshot()
    sidecar = stats_path(checkpoint_dir, shard)
    previous = _read_stats(sidecar)
    _write_stats(
        sidecar,
        {
            key: previous.get(key, 0) + value
            for key, value in delta.items()
        },
    )
    return ShardRun(
        shard=shard,
        total=len(owned),
        resumed=len(done),
        executed=executed,
    )


class ShardStatus(NamedTuple):
    """Per-shard checkpoint state, as :func:`shard_status` reports it.

    ``damaged`` is True while the checkpoint holds torn, foreign,
    stale-grid, or duplicate-index records that the next
    :func:`run_shard` will repair — the repair can only *shrink*
    ``done``, so schedulers (the fleet reclaim decision in
    particular) must treat a damaged shard as incomplete even when
    ``done == total``.
    """

    shard: int
    done: int
    total: int
    damaged: bool

    @property
    def complete(self) -> bool:
        return self.done == self.total and not self.damaged


def one_shard_status(
    manifest: ShardManifest, checkpoint_dir: str, shard: int
) -> ShardStatus:
    """A single shard's :class:`ShardStatus`, from its checkpoint."""
    owned = manifest.shard_indices(shard)
    done, damaged = _read_checkpoint(
        checkpoint_path(checkpoint_dir, shard),
        manifest.grid_digest,
        owned=owned,
    )
    return ShardStatus(
        shard,
        sum(1 for i in owned if i in done),
        len(owned),
        damaged,
    )


def shard_status(
    manifest: ShardManifest, checkpoint_dir: str
) -> List[ShardStatus]:
    """One :class:`ShardStatus` per shard, from the checkpoints."""
    return [
        one_shard_status(manifest, checkpoint_dir, shard)
        for shard in range(manifest.num_shards)
    ]


def merge_shards(
    manifest: ShardManifest, checkpoint_dir: str
) -> SweepResult:
    """Reassemble the grid's :class:`SweepResult` in manifest order.

    Raises :class:`ShardIncompleteError` (listing the missing cells)
    unless every manifest cell has a checkpointed result — a partial
    merge would silently change aggregate metrics.
    """
    results: Dict[int, CellResult] = {}
    for shard in range(manifest.num_shards):
        done, _ = _read_checkpoint(
            checkpoint_path(checkpoint_dir, shard),
            manifest.grid_digest,
            owned=manifest.shard_indices(shard),
        )
        for index in manifest.shard_indices(shard):
            if index in done:
                results[index] = done[index]
    missing = [
        i for i in range(len(manifest.cells)) if i not in results
    ]
    if missing:
        raise ShardIncompleteError(
            f"{len(missing)} of {len(manifest.cells)} cells have no "
            f"checkpointed result (first missing: {missing[:5]}); "
            "run the remaining shards before merging"
        )
    # Sum the per-shard cache-activity sidecars (advisory: absent or
    # torn sidecars contribute nothing and never block the merge).
    cache_stats = None
    for shard in range(manifest.num_shards):
        data = _read_stats(stats_path(checkpoint_dir, shard))
        if data:
            from repro.workloads.cache import CacheStats

            if cache_stats is None:
                cache_stats = CacheStats()
            cache_stats.add(
                CacheStats(
                    hits=data.get("hits", 0),
                    misses=data.get("misses", 0),
                    builds=data.get("builds", 0),
                    square_builds=data.get("square_builds", 0),
                    csr_builds=data.get("csr_builds", 0),
                )
            )
    return SweepResult(
        cells=[results[i] for i in range(len(manifest.cells))],
        cache_stats=cache_stats,
    )


def run_sharded(
    cells: Sequence[SweepCell],
    num_shards: int,
    checkpoint_dir: str,
    inner: str = "fastpath",
) -> SweepResult:
    """Convenience: compile, persist, run every shard here, merge.

    Multi-host runs instead call :func:`compile_manifest` +
    ``manifest.save`` once, then :func:`run_shard` per host, then
    :func:`merge_shards` anywhere.
    """
    manifest = compile_manifest(cells, num_shards, inner=inner)
    os.makedirs(checkpoint_dir, exist_ok=True)
    manifest.save(checkpoint_dir)
    for shard in range(num_shards):
        run_shard(manifest, shard, checkpoint_dir)
    return merge_shards(manifest, checkpoint_dir)
