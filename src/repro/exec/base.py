"""The execution-backend contract and selection machinery.

An :class:`ExecutionBackend` is an engine that can drive a fully
constructed :class:`~repro.congest.network.Network` to completion.
The *semantics* of a run — which messages are sent, what every node
outputs, how many rounds elapse — are fixed by the CONGEST model and
must be identical across backends; a backend only chooses *how* the
lockstep rounds are executed (straight loop, metering-free fast path,
or a worker pool fanning out whole grids of runs).

Selection is layered so existing entry points need no code changes:

1. an explicit ``backend=`` argument (to :meth:`Network.run`,
   :meth:`AlgorithmSpec.run`, :func:`run_conformance`, ...) wins;
2. otherwise the ambient backend installed by :func:`use_backend`
   (a :mod:`contextvars` context manager, so it nests and does not
   leak across threads or sweep workers);
3. otherwise the ``reference`` backend.
"""

from __future__ import annotations

import contextlib
import contextvars
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.congest.network import Network, RunResult

#: Anything the selection helpers accept as a backend designator.
BackendLike = Union[str, "ExecutionBackend", None]


class ExecutionBackend(ABC):
    """One engine for executing CONGEST networks.

    Subclasses must preserve run semantics exactly: same outputs, same
    round counts, same error behaviour.  Deviations in *metering
    detail* (e.g. the fast path not sizing messages under an
    unbounded policy) must be documented on the subclass and are only
    permitted where no contract depends on the metric.
    """

    #: Registry key; also used in bench labels and reports.
    name: str = "abstract"

    @abstractmethod
    def execute(
        self,
        network: "Network",
        *,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable[["Network", int], bool]] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
    ) -> "RunResult":
        """Drive ``network`` to completion and return its result."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# backend registry

_BACKENDS: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add ``backend`` to the registry (name must be unused)."""
    if backend.name in _BACKENDS:
        raise ValueError(
            f"backend {backend.name!r} already registered"
        )
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_backend(backend: BackendLike) -> ExecutionBackend:
    """Resolve a name / instance / ``None`` to an executable backend.

    ``None`` resolves to the ambient backend (see :func:`use_backend`),
    falling back to ``reference``.
    """
    if backend is None:
        return current_backend()
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise KeyError(
            f"unknown backend {backend!r}; registered: "
            f"{sorted(_BACKENDS)}"
        ) from None


# ----------------------------------------------------------------------
# ambient selection

_AMBIENT: contextvars.ContextVar[Optional[ExecutionBackend]] = (
    contextvars.ContextVar("repro_exec_backend", default=None)
)


def current_backend() -> ExecutionBackend:
    """The ambient backend (``reference`` unless one is installed)."""
    backend = _AMBIENT.get()
    if backend is not None:
        return backend
    return _BACKENDS["reference"]


@contextlib.contextmanager
def use_backend(backend: BackendLike) -> Iterator[ExecutionBackend]:
    """Install ``backend`` as the ambient engine for the block.

    Every :meth:`Network.run` call inside the block (without an
    explicit ``backend=`` override) uses it, which is how whole
    algorithm pipelines switch engines without threading a parameter
    through every phase.
    """
    resolved = (
        get_backend(backend) if backend is not None else current_backend()
    )
    token = _AMBIENT.set(resolved)
    try:
        yield resolved
    finally:
        _AMBIENT.reset(token)
