"""The vectorized array-engine execution backend.

Struct-of-arrays execution for the hottest registry pipelines: node
state lives in numpy int arrays (colors, candidates, palettes,
liveness, MIS state) and every round is a batch of array operations
over the CSR-form G/G² adjacency from :mod:`repro.exec.arrays` —
there is no per-node generator dispatch in the hot loop at all.

Semantics are *identical* to ``reference``/``fastpath`` — same
outputs, same round counts, same per-node RNG consumption (kernels
draw from the very same per-node streams the generators would), and
bit-identical ``RunMetrics`` under metered policies.  Like fastpath,
UNBOUNDED runs skip message *sizing* (``total_bits``/
``max_message_bits`` stay 0).

Kernels run off the :class:`~repro.congest.network.NetworkPlan` —
the CSR adjacency plus bulk-derived RNG streams — so a kernel-covered
run on an *unmaterialized* network never builds a Python node object
at all: end-state is published through ``Network.node_colors()``/
``node_table()`` and written back to programs only if somebody later
materializes them.  Hybrid kernels (the randomized d2-color pipeline)
execute the array-friendly try-phase window as batched numpy work and
drive the surrounding protocol sections through the resumable
:class:`~repro.exec.fastpath.GeneratorLoop`.

Coverage is per program class, not per call site:

- :class:`TrialProgram` — the whole run (never halts);
- :class:`LubyDistanceKProgram` — the whole run (never halts);
- :class:`LocallyIterativeProgram` / :class:`PartLocallyIterativeD2`
  — the whole bounded 3q-round schedule, halting included (these are
  the try-phase stages of ``deterministic-d2`` and
  ``eps-d2-coloring``);
- :class:`RandomizedD2Program` — the ``c0·log n`` random-trials
  section of ``improved-d2color``/``basic-d2color``; similarity,
  reduce, learn-palette and finish still run as generators.

Everything else — and every run a kernel cannot replay exactly
(custom ``stop_when`` monitors, ``avoid_known`` candidate selection,
self-loop graphs, metered payloads that could exceed the budget,
values that could leave int64, preseeded program state) — falls back
to ``fastpath`` automatically, so ``backend="vectorized"`` is always
safe to request.  The guarantees are enforced by
``tests/test_backend_equivalence.py`` and
``tests/test_exec_vectorized.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

from repro.baselines.luby import (
    _STATE_DOMINATED,
    _STATE_IN_MIS,
    _STATE_LIVE,
    _TAG_RANK,
    LubyDistanceKProgram,
    _all_decided,
)
from repro.baselines.trial import TrialProgram
from repro.congest.errors import NonterminationError
from repro.congest.message import bit_size, int_bits
from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthMode
from repro.core.d2color import RandomizedD2Program
from repro.core.trying import TAG_ADOPT, TAG_TRY, TAG_VERDICT, all_colored
from repro.det.locally_iterative import LocallyIterativeProgram
from repro.det.part_d2coloring import PartLocallyIterativeD2
from repro.exec.base import ExecutionBackend
from repro.exec.fastpath import PAUSED, GeneratorLoop
from repro.obs import trace as obs_trace

try:  # numpy/scipy are required deps, but degrade gracefully without
    import numpy as np

    from repro.exec import arrays
except ImportError:  # pragma: no cover - container always has numpy
    np = None
    arrays = None

#: Values any node ever sends stay strictly inside int64 under this
#: bound, and every array comparison is exact.
_INT64_SAFE = 2**62

#: Program class -> kernel.  A kernel returns a RunResult, or None to
#: decline the run (fastpath then executes it).
KERNELS: Dict[Type, Callable] = {}

#: Registry spec name -> the program class its hot network runs; the
#: spec-name half of :func:`kernel_coverage`.  Coverage through this
#: table may be partial per run: ``improved-d2color``/``basic-d2color``
#: kernelize their random-trials section (the rest stays generator
#: work), ``deterministic-d2``/``eps-d2-coloring`` kernelize their
#: locally-iterative try-phase stage, and Step-0 deterministic
#: fallbacks of the randomized specs run other program classes
#: entirely.
SPEC_PROGRAMS: Dict[str, Type] = {}


def register_kernel(program_cls: Type, *, specs: tuple = ()):
    def deco(fn):
        KERNELS[program_cls] = fn
        for spec_name in specs:
            SPEC_PROGRAMS[spec_name] = program_cls
        return fn

    return deco


def kernel_coverage() -> Dict[str, str]:
    """The coverage table, keyed both ways.

    ``{program class name: kernel name}`` for every registered kernel,
    plus ``{registry spec name: kernel name}`` for every spec whose
    hot network run is kernel-covered (see :data:`SPEC_PROGRAMS` for
    the partial-coverage caveats).  Specs absent from the table always
    execute via fastpath.
    """
    table = {cls.__name__: fn.__name__ for cls, fn in KERNELS.items()}
    for spec_name, cls in SPEC_PROGRAMS.items():
        fn = KERNELS.get(cls)
        if fn is not None:
            table[spec_name] = fn.__name__
    return table


class VectorizedBackend(ExecutionBackend):
    """Array-kernel executor with automatic fastpath fallback."""

    name = "vectorized"

    def execute(
        self,
        network,
        *,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
    ):
        rec = obs_trace.recorder()
        fallback_cause = None
        if np is not None and not record_rounds and not network._started:
            kernel = None
            if network.materialized:
                if len(network._generators) == len(network.programs):
                    classes = {
                        type(program)
                        for program in network.programs.values()
                    }
                    if len(classes) == 1:
                        kernel = KERNELS.get(classes.pop())
                    else:
                        fallback_cause = "mixed-programs"
                else:
                    fallback_cause = "partial-generators"
            elif isinstance(network.program_factory, type):
                # Unmaterialized + class factory: dispatch without
                # building a single Python node.
                kernel = KERNELS.get(network.program_factory)
            if kernel is not None:
                trace_t0 = rec.clock() if rec is not None else 0.0
                result = kernel(
                    network,
                    max_rounds=max_rounds,
                    stop_when=stop_when,
                    raise_on_timeout=raise_on_timeout,
                )
                if result is not None:
                    if rec is not None:
                        rec.complete(
                            "exec.kernel",
                            trace_t0,
                            {
                                "kernel": kernel.__name__,
                                "rounds": result.metrics.rounds,
                                "messages": result.metrics.total_messages,
                                "bits": result.metrics.total_bits,
                            },
                        )
                    return result
                fallback_cause = "kernel-declined"
            elif fallback_cause is None:
                fallback_cause = "no-kernel"
        elif fallback_cause is None:
            if np is None:
                fallback_cause = "no-numpy"
            elif record_rounds:
                fallback_cause = "record-rounds"
            else:
                fallback_cause = "already-started"
        if rec is not None:
            rec.event("exec.fallback", {"cause": fallback_cause})
        from repro.exec import get_backend

        return get_backend("fastpath").execute(
            network,
            max_rounds=max_rounds,
            stop_when=stop_when,
            raise_on_timeout=raise_on_timeout,
            record_rounds=record_rounds,
        )


def _finish(network, rounds, total_messages, total_bits,
            max_message_bits, executed, stopped_early, timed_out,
            max_rounds, raise_on_timeout, halted=False):
    """Shared tail: mirror reference's started flag, timeout raise,
    and result assembly."""
    from repro.congest.network import RunResult

    if executed > 0:
        network._started = True
    if timed_out and raise_on_timeout:
        raise NonterminationError(
            max_rounds, set(network.graph.nodes)
        )
    metrics = RunMetrics(
        rounds=rounds,
        total_messages=total_messages,
        total_bits=total_bits,
        max_message_bits=max_message_bits,
        budget_bits=network._budget,
        violations=0,
        worst_violation_bits=0,
    )
    return RunResult(
        outputs=dict(network.outputs),
        metrics=metrics,
        halted=halted,
        stopped_early=stopped_early,
        programs=network.result_programs(),
    )


# ----------------------------------------------------------------------
# the generalized try-phase engine
#
# One phase of core.trying as three array steps (round A try, round B
# verdicts, round C adopt), shared by every kernel built on the
# primitive.  The verdict logic collapses exactly: a live trier ``u``
# with candidate ``c`` adopts iff no G-neighbor *has* color ``c``
# (true colors — a server's own color is free information), no
# d2-neighbor has *announced* ``c`` during this run (only announced
# colors reach distance 2; precolored nodes never announce), and no
# other d2-neighbor tried ``c`` this same phase.  Colors and
# announcements only change at round C, so every verdict server's
# round-B knowledge equals the round-A array state.


class _TryState:
    """Mutable array state of a try-phase window."""

    __slots__ = ("colors", "announced", "adopt_iter", "cand")

    def __init__(self, n, colors=None):
        self.colors = (
            colors
            if colors is not None
            else np.full(n, -1, dtype=np.int64)
        )
        self.announced = np.zeros(n, dtype=bool)
        self.adopt_iter = np.full(n, -1, dtype=np.int64)
        self.cand = np.full(n, -1, dtype=np.int64)


class _Meter:
    """Metering accumulators + precomputed payload base sizes."""

    __slots__ = ("metered", "try_base", "adopt_base", "verdict_bits",
                 "total_messages", "total_bits", "max_message_bits")

    def __init__(self, metered):
        self.metered = metered
        self.try_base = bit_size((TAG_TRY, 0)) - 1
        self.adopt_base = bit_size((TAG_ADOPT, 0)) - 1
        self.verdict_bits = bit_size((TAG_VERDICT, True))
        self.total_messages = 0
        self.total_bits = 0
        self.max_message_bits = 0

    def fits(self, worst_value, budget) -> bool:
        """Whether the worst-case try/verdict/adopt payload stays in
        budget (else the run must replay via fastpath so STRICT
        violations raise at the exact reference round)."""
        if not self.metered:
            return True
        worst = int_bits(int(worst_value))
        return (
            max(
                self.try_base + worst,
                self.adopt_base + worst,
                self.verdict_bits,
            )
            <= budget
        )


def _run_try_phases(
    csr,
    st: "_TryState",
    meter: "_Meter",
    draw,
    *,
    start_round: int,
    end_round: Optional[int],
    max_rounds: int,
    check_stop: bool,
    idle_forever: bool = False,
):
    """Drive rounds ``[start_round, end_round)`` of 3-round try phases.

    ``draw(phase, live_idx)`` returns the int64 candidates of the live
    nodes (aligned with ``live_idx``), consuming exactly the RNG draws
    the generators would.  Returns ``(r, rounds, status)`` with
    ``status`` in ``{"stopped", "timeout", "done"}`` — checked in the
    same order as the round loop (stop monitor, then ``max_rounds``,
    then the window bound).
    """
    rec = obs_trace.recorder()
    trace_t0 = rec.clock() if rec is not None else 0.0
    colors = st.colors
    announced = st.announced
    adopt_iter = st.adopt_iter
    cand = st.cand
    g_indptr, g_indices = csr.g_indptr, csr.g_indices
    g2_indptr, g2_indices = csr.g2_indptr, csr.g2_indices
    deg = csr.degrees
    d2_deg = csr.d2_degrees
    metered = meter.metered
    try_base = meter.try_base
    adopt_base = meter.adopt_base
    verdict_bits = meter.verdict_bits

    adopt_idx = np.empty(0, dtype=np.int64)
    pending_verdicts = 0
    rounds = 0
    r = start_round
    while True:
        if check_stop and not (colors < 0).any():
            break_status = "stopped"
            break
        if r >= max_rounds:
            break_status = "timeout"
            break
        if end_round is not None and r >= end_round:
            break_status = "done"
            break
        k = (r - start_round) % 3
        if k == 0:
            live_idx = np.flatnonzero(colors < 0)
            if live_idx.size == 0 and not check_stop and idle_forever:
                # Everyone colored, no stop monitor: every remaining
                # iteration is message-free local computation with the
                # network still running, so it still counts a round.
                rounds += max_rounds - r
                r = max_rounds
                break_status = "timeout"
                break
            cand.fill(-1)
            if live_idx.size:
                cand[live_idx] = draw(
                    (r - start_round) // 3, live_idx
                )
            send_deg = deg[live_idx]
            msgs = int(send_deg.sum())
            pending_verdicts = msgs
            meter.total_messages += msgs
            if metered and msgs:
                pb = try_base + arrays.int_bits_array(cand[live_idx])
                meter.total_bits += int((send_deg * pb).sum())
                biggest = int(pb[send_deg > 0].max())
                if biggest > meter.max_message_bits:
                    meter.max_message_bits = biggest
            # The phase's adoption outcome, decided on the state every
            # verdict server will hold in round B (colors/announced
            # only change at k == 2, never between here and there).
            own_g = np.repeat(cand, deg)
            conflict_g = arrays.row_any(
                (own_g >= 0) & (colors[g_indices] == own_g),
                g_indptr,
            )
            own_2 = np.repeat(cand, d2_deg)
            known_2 = announced[g2_indices] & (
                colors[g2_indices] == own_2
            )
            trying_2 = cand[g2_indices] == own_2
            conflict_2 = arrays.row_any(
                (own_2 >= 0) & (known_2 | trying_2), g2_indptr
            )
            adopt_idx = np.flatnonzero(
                (cand >= 0) & ~(conflict_g | conflict_2)
            )
        elif k == 1:
            meter.total_messages += pending_verdicts
            if metered and pending_verdicts:
                meter.total_bits += pending_verdicts * verdict_bits
                if verdict_bits > meter.max_message_bits:
                    meter.max_message_bits = verdict_bits
        else:
            send_deg = deg[adopt_idx]
            msgs = int(send_deg.sum())
            meter.total_messages += msgs
            if metered and msgs:
                pb = adopt_base + arrays.int_bits_array(
                    cand[adopt_idx]
                )
                meter.total_bits += int((send_deg * pb).sum())
                biggest = int(pb[send_deg > 0].max())
                if biggest > meter.max_message_bits:
                    meter.max_message_bits = biggest
            colors[adopt_idx] = cand[adopt_idx]
            announced[adopt_idx] = True
            adopt_iter[adopt_idx] = r
        rounds += 1
        r += 1
    if rec is not None:
        rec.complete(
            "kernel.try_phases",
            trace_t0,
            {
                "start_round": start_round,
                "end_round": r,
                "rounds": rounds,
                "status": break_status,
            },
        )
    return r, rounds, break_status


def _nbr_colors_writeback(csr, order, colors, adopt_iter, resumes):
    """Closure building each node's 1-hop color table: an adopt sent
    at iteration t was recorded by neighbors at iteration t + 1, which
    executed iff t + 1 <= ``resumes``."""
    g_indptr, g_indices = csr.g_indptr, csr.g_indices
    recorded = (adopt_iter >= 0) & (adopt_iter + 1 <= resumes)

    def tables(i):
        row = g_indices[g_indptr[i]:g_indptr[i + 1]]
        return {
            order[j]: int(colors[j])
            for j in row[recorded[row]].tolist()
        }

    return tables


def _color_table(order, colors):
    def build():
        return {
            node: (int(c) if c >= 0 else None)
            for node, c in zip(order, colors.tolist())
        }

    return build


def _int_table(order, values):
    def build():
        return dict(zip(order, (int(v) for v in values.tolist())))

    return build


# ----------------------------------------------------------------------
# trial / trial-slack: the whole run is uniform random try phases


@register_kernel(TrialProgram, specs=("trial", "trial-slack"))
def _trial_kernel(network, *, max_rounds, stop_when, raise_on_timeout):
    """Vectorized :class:`TrialProgram` — runs off the
    :class:`NetworkPlan`; no Python nodes unless already built."""
    if stop_when is not None and stop_when is not all_colored:
        return None
    plan = network.plan()
    csr = plan.csr
    if csr.has_selfloops:
        return None
    n = csr.n
    order = csr.order

    palettes = np.empty(n, dtype=np.int64)
    colors = np.full(n, -1, dtype=np.int64)
    if network.materialized:
        programs = network.programs
        for i, node in enumerate(order):
            program = programs[node]
            if program.avoid_known or program.nbr_colors:
                return None
            palette = program.palette
            if (
                not isinstance(palette, int)
                or palette <= 0
                or palette >= _INT64_SAFE
            ):
                return None
            palettes[i] = palette
            color = program.color
            if color is not None:
                if (
                    not isinstance(color, int)
                    or color < 0
                    or color >= _INT64_SAFE
                ):
                    return None  # negative breaks the -1 sentinel
                colors[i] = color
        rngs = [programs[v].ctx.rng for v in order]
        draw_one = lambda i, bound: rngs[i].randrange(bound)  # noqa: E731
    else:
        for i, node in enumerate(order):
            data = plan.input_for(node)
            if data.get("avoid_known", False):
                return None
            palette = data.get("palette")
            if (
                not isinstance(palette, int)
                or palette <= 0
                or palette >= _INT64_SAFE
            ):
                return None  # incl. missing key: constructor decides
            palettes[i] = palette
            color = data.get("color")
            if color is not None:
                if (
                    not isinstance(color, int)
                    or color < 0
                    or color >= _INT64_SAFE
                ):
                    return None
                colors[i] = color
        # Lazy per-node streams: a million-node run never holds a
        # million Random objects (see NetworkPlan.lazy_draws).
        draw_one = plan.lazy_draws().randrange

    metered = network.policy.mode is not BandwidthMode.UNBOUNDED
    meter = _Meter(metered)
    if not meter.fits(int(palettes.max()) - 1, network._budget):
        return None  # could violate: replay exactly via fastpath

    phases_tried = np.zeros(n, dtype=np.int64)

    def draw(_phase, live_idx):
        phases_tried[live_idx] += 1
        return [
            draw_one(i, int(palettes[i]))
            for i in live_idx.tolist()
        ]

    st = _TryState(n, colors)
    r, rounds, status = _run_try_phases(
        csr, st, meter, draw,
        start_round=0, end_round=None, max_rounds=max_rounds,
        check_stop=stop_when is not None, idle_forever=True,
    )

    nbr_tables = _nbr_colors_writeback(
        csr, order, colors, st.adopt_iter, r - 1
    )

    def writeback(programs):
        for i, node in enumerate(order):
            program = programs[node]
            c = int(colors[i])
            program.color = c if c >= 0 else None
            program.phases_tried = int(phases_tried[i])
            program.nbr_colors = nbr_tables(i)

    if network.materialized:
        writeback(network._programs)
    else:
        network._deferred_state.append(writeback)
        network._vector_tables["color"] = _color_table(order, colors)
        network._vector_tables["phases_tried"] = _int_table(
            order, phases_tried
        )
    return _finish(
        network, rounds, meter.total_messages, meter.total_bits,
        meter.max_message_bits, r, status == "stopped",
        status == "timeout", max_rounds, raise_on_timeout,
    )


# ----------------------------------------------------------------------
# locally-iterative d2-coloring (deterministic-d2 / eps-d2-coloring):
# q bounded phases trying (offset +) a + b·phase mod q, then halt


def _poly_phase_kernel(
    network, *, max_rounds, stop_when, raise_on_timeout, with_parts,
):
    """Shared kernel for :class:`LocallyIterativeProgram`
    (``with_parts=False``) and :class:`PartLocallyIterativeD2`
    (``with_parts=True``): draw-free try phases with candidates
    ``offset + (a + b·phase) mod q``, halting after q phases."""
    if stop_when is not None and stop_when is not all_colored:
        return None
    plan = network.plan()
    csr = plan.csr
    if csr.has_selfloops:
        return None
    n = csr.n
    order = csr.order

    a = np.empty(n, dtype=np.int64)
    b = np.empty(n, dtype=np.int64)
    offset = np.zeros(n, dtype=np.int64)
    qs = set()
    if network.materialized:
        programs = network.programs
        for i, node in enumerate(order):
            program = programs[node]
            if (
                program.color is not None
                or program.nbr_colors
                or program.blocked_phases
            ):
                return None  # preseeded state: not a fresh run
            q = program.q
            if not isinstance(q, int) or q <= 0 or q * q >= _INT64_SAFE:
                return None
            qs.add(q)
            if not (0 <= program.poly.a < q and 0 <= program.poly.b < q):
                return None  # hand-built Poly1 outside F_q
            a[i] = program.poly.a
            b[i] = program.poly.b
            if with_parts:
                off = program.offset
                if not isinstance(off, int) or not 0 <= off < _INT64_SAFE:
                    return None
                offset[i] = off
    else:
        for i, node in enumerate(order):
            data = plan.input_for(node)
            q = data.get("q")
            color_in = data.get("color_in")
            if (
                not isinstance(q, int)
                or q <= 0
                or q * q >= _INT64_SAFE
                or not isinstance(color_in, int)
                or not 0 <= color_in < q * q
            ):
                return None  # constructor raises on the real run
            qs.add(q)
            a[i] = color_in // q
            b[i] = color_in % q
            if with_parts:
                part = data.get("part")
                if (
                    not isinstance(part, int)
                    or part < 0
                    or part * q >= _INT64_SAFE
                ):
                    return None
                offset[i] = part * q
    if len(qs) != 1:
        return None  # mixed q: phase schedules diverge per node
    q = qs.pop()
    worst_candidate = int(offset.max()) + q - 1
    if worst_candidate >= _INT64_SAFE:
        return None

    metered = network.policy.mode is not BandwidthMode.UNBOUNDED
    meter = _Meter(metered)
    if not meter.fits(worst_candidate, network._budget):
        return None

    def draw(phase, live_idx):
        return (
            (a[live_idx] + b[live_idx] * phase) % q + offset[live_idx]
        )

    st = _TryState(n)
    colors, adopt_iter = st.colors, st.adopt_iter
    end_round = 3 * q
    r, rounds, status = _run_try_phases(
        csr, st, meter, draw,
        start_round=0, end_round=end_round, max_rounds=max_rounds,
        check_stop=stop_when is not None,
    )

    halted = status == "done"
    # Generator resumes executed: rounds 0..r-1 for an aborted window,
    # plus the final halting resume (which consumes the last adopt
    # inbox and runs the phase-(q-1) bookkeeping) on a completed one.
    resumes = end_round if halted else r - 1
    if halted:
        network.outputs.update(
            (node, int(c) if c >= 0 else None)
            for node, c in zip(order, colors.tolist())
        )

    # blocked_phases / succeeded_phase bookkeeping of phase t runs at
    # resume 3t+3; a node tries every phase while live, so with
    # adoption phase A (= adopt_iter // 3, else inf) the blocked count
    # is |{t : t < A, 3t+3 <= resumes, t < q}|.
    t_booked = (resumes - 3) // 3  # last phase with bookkeeping done
    adopted = adopt_iter >= 0
    adopt_phase = np.where(adopted, adopt_iter // 3, np.int64(q))
    blocked = np.maximum(
        0,
        np.minimum(
            np.minimum(adopt_phase - 1, t_booked), q - 1
        ) + 1,
    )
    success_known = adopted & (3 * adopt_phase + 3 <= resumes)

    nbr_tables = _nbr_colors_writeback(
        csr, order, colors, adopt_iter, resumes
    )

    def writeback(programs):
        for i, node in enumerate(order):
            program = programs[node]
            c = int(colors[i])
            program.color = c if c >= 0 else None
            program.blocked_phases = int(blocked[i])
            program.nbr_colors = nbr_tables(i)
            if not with_parts:
                program.succeeded_phase = (
                    int(adopt_phase[i]) if success_known[i] else None
                )

    if network.materialized:
        writeback(network._programs)
    else:
        network._deferred_state.append(writeback)
        network._vector_tables["color"] = _color_table(order, colors)
        network._vector_tables["blocked_phases"] = _int_table(
            order, blocked
        )
    return _finish(
        network, rounds, meter.total_messages, meter.total_bits,
        meter.max_message_bits, r, status == "stopped",
        status == "timeout", max_rounds, raise_on_timeout,
        halted=halted,
    )


@register_kernel(LocallyIterativeProgram, specs=("deterministic-d2",))
def _locally_iterative_kernel(
    network, *, max_rounds, stop_when, raise_on_timeout
):
    """Vectorized :class:`LocallyIterativeProgram` (Theorem B.4)."""
    return _poly_phase_kernel(
        network, max_rounds=max_rounds, stop_when=stop_when,
        raise_on_timeout=raise_on_timeout, with_parts=False,
    )


@register_kernel(PartLocallyIterativeD2, specs=("eps-d2-coloring",))
def _part_locally_iterative_kernel(
    network, *, max_rounds, stop_when, raise_on_timeout
):
    """Vectorized :class:`PartLocallyIterativeD2` (Lemma 3.5 stage 2:
    part-offset palettes, identical phase schedule)."""
    return _poly_phase_kernel(
        network, max_rounds=max_rounds, stop_when=stop_when,
        raise_on_timeout=raise_on_timeout, with_parts=True,
    )


# ----------------------------------------------------------------------
# randomized d2-color (improved + basic): hybrid — the c0·log n
# random-trials section runs as arrays, everything else as generators


@register_kernel(
    RandomizedD2Program, specs=("improved-d2color", "basic-d2color")
)
def _randomized_d2_kernel(
    network, *, max_rounds, stop_when, raise_on_timeout
):
    """Hybrid :class:`RandomizedD2Program` executor.

    ``improved``: the trials section is a prefix — rounds ``[0, 3T)``
    run as arrays, then the generators start (their first resume
    happens at round 3T, exactly where the reference run's generators
    leave the trials loop).  ``basic``: similarity runs first — its
    round count is a node-independent constant of the
    :class:`SimilarityConfig` — so the :class:`GeneratorLoop` pauses
    at that boundary, the trials window runs as arrays, and the loop
    resumes with the held similarity inboxes.  In both variants the
    deferred boundary resume replays the skipped section's observable
    effects through ``RandomizedD2Program._kernel_prefix`` (phase-log
    entry + final-round adopt records), keeping program state
    bit-identical to reference.

    One documented deviation: when the run stops or times out *inside*
    the trials window of the ``basic`` variant, the deferred similarity
    tail never executes, so ``program.similarity`` stays ``None`` (the
    phase log is patched and colors/metrics/rounds still match
    reference exactly).
    """
    if stop_when is not None and stop_when is not all_colored:
        return None
    plan = network.plan()
    csr = plan.csr
    if csr.has_selfloops:
        return None
    n = csr.n
    order = csr.order

    configs = set()
    if network.materialized:
        for program in network.programs.values():
            if (
                program.color is not None
                or program.nbr_colors
                or program.phase_log
            ):
                return None  # not a fresh run
            configs.add(
                (
                    program.palette,
                    program.variant,
                    program.initial_trials,
                    program.sim_config,
                )
            )
    else:
        for node in order:
            data = plan.input_for(node)
            configs.add(
                (
                    data.get("palette"),
                    data.get("variant"),
                    data.get("initial_trials"),
                    data.get("sim_config"),
                )
            )
    if len(configs) != 1:
        return None
    palette, variant, trials, sim_config = configs.pop()
    if variant not in ("improved", "basic") or sim_config is None:
        return None
    if (
        not isinstance(palette, int)
        or palette <= 0
        or palette >= _INT64_SAFE
    ):
        return None
    if not isinstance(trials, int) or trials <= 0:
        return None

    metered = network.policy.mode is not BandwidthMode.UNBOUNDED
    meter = _Meter(metered)
    if not meter.fits(palette - 1, network._budget):
        return None

    # Identical at every node by construction (see SimilarityMixin).
    if variant == "basic":
        prologue = (
            sim_config.forward_rounds
            + sim_config.own_rounds
            + (0 if sim_config.exact else 1)
        )
    else:
        prologue = 0
    window_end = prologue + 3 * trials

    loop = GeneratorLoop(network)  # materializes the nodes
    programs = network.programs
    if prologue:
        status = loop.run_until(
            prologue,
            max_rounds=max_rounds,
            stop_when=stop_when,
            raise_on_timeout=raise_on_timeout,
        )
        if status is not PAUSED:
            return loop.result()  # ended inside similarity

    # --- the trials window, as arrays -----------------------------
    # Programs adopt no colors before their trials section, so the
    # window starts from a blank color state; draws continue on the
    # very same per-node streams the prologue advanced.
    rngs = [programs[v].ctx.rng for v in order]

    def draw(_phase, live_idx):
        return [
            rngs[i].randrange(palette) for i in live_idx.tolist()
        ]

    meter.total_messages = loop.total_messages
    meter.total_bits = loop.total_bits
    meter.max_message_bits = loop.max_message_bits
    st = _TryState(n)
    colors, adopt_iter = st.colors, st.adopt_iter
    r, rounds, status = _run_try_phases(
        csr, st, meter, draw,
        start_round=prologue, end_round=window_end,
        max_rounds=max_rounds, check_stop=stop_when is not None,
    )
    loop.total_messages = meter.total_messages
    loop.total_bits = meter.total_bits
    loop.max_message_bits = meter.max_message_bits
    loop.rounds += rounds
    loop.round_index = r
    if r > 0:
        network._started = True

    # Write the window's observable state back: resumes 0..r-1 have
    # happened, so adopts from the final executed round are not yet in
    # any neighbor table — on a completed window they ride the
    # deferred boundary resume via _kernel_prefix instead.
    nbr_tables = _nbr_colors_writeback(
        csr, order, colors, adopt_iter, r - 1
    )
    last = adopt_iter == r - 1
    for i, node in enumerate(order):
        program = programs[node]
        c = int(colors[i])
        program.color = c if c >= 0 else None
        program.nbr_colors = nbr_tables(i)

    if status != "done":
        # Stopped or timed out mid-window.  Reference programs logged
        # the similarity phase at the boundary resume (round
        # ``prologue``) — patch it in iff that round actually ran; the
        # trials entry is only logged once the section completes.
        if variant == "basic" and r > prologue:
            for program in programs.values():
                program.phase_log.append(("similarity", prologue))
        loop.stopped_early = status == "stopped"
        if status == "timeout" and raise_on_timeout:
            raise NonterminationError(max_rounds, set(loop.running))
        return loop.result()

    # --- hand back to the generators ------------------------------
    g_indptr, g_indices = csr.g_indptr, csr.g_indices
    for i, node in enumerate(order):
        row = g_indices[g_indptr[i]:g_indptr[i + 1]]
        adopts = {
            order[j]: int(colors[j])
            for j in row[last[row]].tolist()
        }
        programs[node]._kernel_prefix = (3 * trials, adopts)
    loop.run_until(
        None,
        max_rounds=max_rounds,
        stop_when=stop_when,
        raise_on_timeout=raise_on_timeout,
    )
    sample = next(iter(programs.values()))
    if sample._kernel_prefix is not None:
        # The run ended right at the window boundary, before the
        # deferred resume consumed the prefix.  Reference programs at
        # that point logged the similarity phase (basic) but not the
        # trials entry; clear the dangling hook and match.
        for program in programs.values():
            program._kernel_prefix = None
            if variant == "basic":
                program.phase_log.append(("similarity", prologue))
    return loop.result()


# ----------------------------------------------------------------------
# Luby distance-k MIS: k rounds of max-flooding + k domination rounds


@register_kernel(LubyDistanceKProgram)
def _luby_kernel(network, *, max_rounds, stop_when, raise_on_timeout):
    """Vectorized :class:`LubyDistanceKProgram`.

    Per 2k-round phase: live nodes draw ``rng.randrange(n³)·n + id``
    (same streams, same order as the generators), ranks max-flood for
    k broadcast rounds, the strict maximum within distance k joins,
    and ``(D, hops)`` countdowns dominate the k-ball.  Messages sent
    in round t are applied at the top of round t+1, exactly when the
    generators would resume on that inbox — including the last
    domination round of a phase, which lands at the next phase's first
    resume *before* new ranks are drawn.
    """
    if stop_when is not None and stop_when is not _all_decided:
        return None
    plan = network.plan()
    csr = plan.csr
    if csr.has_selfloops:
        return None
    n = csr.n
    order = csr.order

    ks = set()
    if network.materialized:
        programs = network.programs
        for v in order:
            ks.add(programs[v].k)
        if any(programs[v].state != _STATE_LIVE for v in order):
            return None  # resumed/preseeded state: not a fresh run
        rngs = [programs[v].ctx.rng for v in order]
        draw_one = lambda i, bound: rngs[i].randrange(bound)  # noqa: E731
    else:
        for v in order:
            ks.add(plan.input_for(v).get("k"))
        draw_one = plan.lazy_draws().randrange
    if len(ks) != 1:
        return None
    k = ks.pop()
    if not isinstance(k, int) or k < 1:
        return None
    max_label = max(abs(order[0]), abs(order[-1]))
    if (n**3 - 1) * n + max_label >= _INT64_SAFE:
        return None  # rank arithmetic could leave int64

    mode = network.policy.mode
    metered = mode is not BandwidthMode.UNBOUNDED
    budget = network._budget
    rank_base = bit_size((_TAG_RANK, 0)) - 1
    dom_base = rank_base  # both tags are 1-char strings
    if metered:
        worst = rank_base + 1 + int_bits((n**3 - 1) * n + max_label)
        if max(worst, dom_base + int_bits(k)) > budget:
            return None

    g_indptr, g_indices = csr.g_indptr, csr.g_indices
    labels = np.array(order, dtype=np.int64)

    LIVE, IN_MIS, DOM = 0, 1, 2
    state = np.zeros(n, dtype=np.int8)
    own = np.full(n, -1, dtype=np.int64)
    best = np.full(n, -1, dtype=np.int64)
    hops = np.zeros(n, dtype=np.int64)
    joined = np.zeros(n, dtype=bool)
    NEG = np.int64(-_INT64_SAFE)

    phases = 0
    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    rounds = 0
    stopped_early = False
    timed_out = False
    check_stop = stop_when is not None
    period = 2 * k
    inflight = None  # ("rank"|"dom", values) sent one round ago
    idle_bits = rank_base + 2  # bit_size((_TAG_RANK, -1))

    r = 0
    while True:
        if check_stop and not (state == LIVE).any():
            stopped_early = True
            break
        if r >= max_rounds:
            timed_out = True
            break
        if inflight is not None:
            tag, vals = inflight
            inflight = None
            if tag == "rank":
                best = np.maximum(
                    best,
                    arrays.row_max(vals[g_indices], g_indptr, NEG),
                )
            else:
                relay = np.where(vals > 0, vals, NEG)
                nbr_max = arrays.row_max(
                    relay[g_indices], g_indptr, NEG
                )
                has_in = nbr_max > NEG
                state[has_in & (state == LIVE)] = DOM
                hops = np.where(
                    has_in,
                    np.maximum(hops, nbr_max - 1),
                    np.where(joined, hops, 0),
                )
        pos = r % period
        if pos == 0:
            live_idx = np.flatnonzero(state == LIVE)
            if live_idx.size == 0 and not check_stop:
                # Decided network, no stop monitor: each remaining
                # phase is k rounds of n ``(K, -1)`` broadcasts then k
                # silent rounds, forever.
                remaining = max_rounds - r
                full, part = divmod(remaining, period)
                phases += full + (1 if part else 0)
                flood = full * k + min(part, k)
                total_messages += flood * n
                if metered and flood:
                    total_bits += flood * n * idle_bits
                    if idle_bits > max_message_bits:
                        max_message_bits = idle_bits
                rounds += remaining
                r = max_rounds
                timed_out = True
                break
            phases += 1
            own.fill(-1)
            n3 = n**3
            own[live_idx] = [
                draw_one(i, n3) * n + int(labels[i])
                for i in live_idx.tolist()
            ]
            best = own.copy()
        if pos < k:
            # flood round: every node broadcasts (K, best)
            total_messages += n
            if metered:
                pb = rank_base + arrays.int_bits_array(best)
                total_bits += int(pb.sum())
                biggest = int(pb.max())
                if biggest > max_message_bits:
                    max_message_bits = biggest
            inflight = ("rank", best.copy())
        else:
            if pos == k:
                joined = (state == LIVE) & (best == own)
                state[joined] = IN_MIS
                hops = np.where(joined, k, 0).astype(np.int64)
            senders = hops > 0
            count = int(senders.sum())
            total_messages += count
            if metered and count:
                pb = dom_base + arrays.int_bits_array(hops[senders])
                total_bits += int(pb.sum())
                biggest = int(pb.max())
                if biggest > max_message_bits:
                    max_message_bits = biggest
            inflight = ("dom", np.where(senders, hops, 0))
        rounds += 1
        r += 1

    names = {LIVE: _STATE_LIVE, IN_MIS: _STATE_IN_MIS,
             DOM: _STATE_DOMINATED}

    def writeback(programs):
        for i, node in enumerate(order):
            program = programs[node]
            program.state = names[int(state[i])]
            program.phases = phases

    if network.materialized:
        writeback(network._programs)
    else:
        network._deferred_state.append(writeback)
        network._vector_tables["state"] = lambda: {
            node: names[int(s)]
            for node, s in zip(order, state.tolist())
        }
        network._vector_tables["phases"] = lambda: {
            node: phases for node in order
        }
    return _finish(
        network, rounds, total_messages, total_bits,
        max_message_bits, r, stopped_early, timed_out,
        max_rounds, raise_on_timeout,
    )
