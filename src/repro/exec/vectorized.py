"""The vectorized array-engine execution backend.

Struct-of-arrays execution for the hottest registry pipelines: node
state lives in numpy int arrays (colors, candidates, palettes,
liveness, MIS state) and every round is a batch of array operations
over the CSR-form G/G² adjacency from :mod:`repro.exec.arrays` —
there is no per-node generator dispatch in the hot loop at all.

Semantics are *identical* to ``reference``/``fastpath`` — same
outputs, same round counts, same per-node RNG consumption (kernels
draw from the very same ``network.contexts[v].rng`` streams the
generators would), and bit-identical ``RunMetrics`` under metered
policies.  Like fastpath, UNBOUNDED runs skip message *sizing*
(``total_bits``/``max_message_bits`` stay 0).

Coverage is per program class, not per call site: a kernel exists for
the randomized trial/slack pipeline (:class:`TrialProgram`) and for
Luby distance-k MIS (:class:`LubyDistanceKProgram`).  Everything else
— and every run a kernel cannot replay exactly (custom ``stop_when``
monitors, ``avoid_known`` candidate selection, self-loop graphs,
metered payloads that could exceed the budget, rank values that could
leave int64) — falls back to ``fastpath`` automatically, so
``backend="vectorized"`` is always safe to request.  The guarantees
are enforced by ``tests/test_backend_equivalence.py`` and
``tests/test_exec_vectorized.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

from repro.baselines.luby import (
    _STATE_DOMINATED,
    _STATE_IN_MIS,
    _STATE_LIVE,
    _TAG_RANK,
    LubyDistanceKProgram,
    _all_decided,
)
from repro.baselines.trial import TrialProgram
from repro.congest.errors import NonterminationError
from repro.congest.message import bit_size, int_bits
from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthMode
from repro.core.trying import TAG_ADOPT, TAG_TRY, TAG_VERDICT, all_colored
from repro.exec.base import ExecutionBackend

try:  # numpy/scipy are required deps, but degrade gracefully without
    import numpy as np

    from repro.exec import arrays
except ImportError:  # pragma: no cover - container always has numpy
    np = None
    arrays = None

#: Values any node ever sends stay strictly inside int64 under this
#: bound, and every array comparison is exact.
_INT64_SAFE = 2**62

#: Program class -> kernel.  A kernel returns a RunResult, or None to
#: decline the run (fastpath then executes it).
KERNELS: Dict[Type, Callable] = {}


def register_kernel(program_cls: Type):
    def deco(fn):
        KERNELS[program_cls] = fn
        return fn

    return deco


def kernel_coverage() -> Dict[str, str]:
    """``{program class name: kernel name}`` — the coverage table."""
    return {cls.__name__: fn.__name__ for cls, fn in KERNELS.items()}


class VectorizedBackend(ExecutionBackend):
    """Array-kernel executor with automatic fastpath fallback."""

    name = "vectorized"

    def execute(
        self,
        network,
        *,
        max_rounds: int = 1_000_000,
        stop_when: Optional[Callable] = None,
        raise_on_timeout: bool = True,
        record_rounds: bool = False,
    ):
        if (
            np is not None
            and not record_rounds
            and not network._started
            and len(network._generators) == len(network.programs)
        ):
            classes = {
                type(program)
                for program in network.programs.values()
            }
            if len(classes) == 1:
                kernel = KERNELS.get(classes.pop())
                if kernel is not None:
                    result = kernel(
                        network,
                        max_rounds=max_rounds,
                        stop_when=stop_when,
                        raise_on_timeout=raise_on_timeout,
                    )
                    if result is not None:
                        return result
        from repro.exec import get_backend

        return get_backend("fastpath").execute(
            network,
            max_rounds=max_rounds,
            stop_when=stop_when,
            raise_on_timeout=raise_on_timeout,
            record_rounds=record_rounds,
        )


def _finish(network, rounds, total_messages, total_bits,
            max_message_bits, executed, stopped_early, timed_out,
            max_rounds, raise_on_timeout):
    """Shared tail: mirror reference's started flag, timeout raise,
    and result assembly."""
    from repro.congest.network import RunResult

    if executed > 0:
        network._started = True
    if timed_out and raise_on_timeout:
        raise NonterminationError(
            max_rounds, set(network.programs)
        )
    metrics = RunMetrics(
        rounds=rounds,
        total_messages=total_messages,
        total_bits=total_bits,
        max_message_bits=max_message_bits,
        budget_bits=network._budget,
        violations=0,
        worst_violation_bits=0,
    )
    return RunResult(
        outputs=dict(network.outputs),
        metrics=metrics,
        halted=False,
        stopped_early=stopped_early,
        programs=network.programs,
    )


# ----------------------------------------------------------------------
# trial / trial-slack: the 3-round try-phase pipeline


@register_kernel(TrialProgram)
def _trial_kernel(network, *, max_rounds, stop_when, raise_on_timeout):
    """Vectorized :class:`TrialProgram` (the whole try/verdict/adopt
    exchange of ``core.trying`` as three array steps per phase).

    The verdict logic collapses exactly: a live trier ``u`` with
    candidate ``c`` adopts iff no G-neighbor *has* color ``c`` (true
    colors — a server's own color is free information), no d2-neighbor
    has *announced* ``c`` during this run (only announced colors reach
    distance 2; precolored nodes never announce), and no other live
    d2-neighbor drew ``c`` this same phase.
    """
    if stop_when is not None and stop_when is not all_colored:
        return None
    csr = arrays.csr_for_graph(network.graph)
    if csr.has_selfloops:
        return None
    n = csr.n
    order = csr.order
    programs = network.programs

    palettes = np.empty(n, dtype=np.int64)
    colors = np.full(n, -1, dtype=np.int64)
    rngs = []
    for i, node in enumerate(order):
        program = programs[node]
        if program.avoid_known or program.nbr_colors:
            return None
        palette = program.palette
        if (
            not isinstance(palette, int)
            or palette <= 0
            or palette >= _INT64_SAFE
        ):
            return None
        palettes[i] = palette
        color = program.color
        if color is not None:
            if not isinstance(color, int) or abs(color) >= _INT64_SAFE:
                return None
            colors[i] = color
        rngs.append(program.ctx.rng)
    if (colors >= 0).sum() != sum(
        1 for v in order if programs[v].color is not None
    ):
        return None  # a negative precolor breaks the -1 sentinel

    mode = network.policy.mode
    metered = mode is not BandwidthMode.UNBOUNDED
    budget = network._budget
    try_base = bit_size((TAG_TRY, 0)) - 1
    adopt_base = bit_size((TAG_ADOPT, 0)) - 1
    verdict_bits = bit_size((TAG_VERDICT, True))
    if metered:
        worst = int(palettes.max()) - 1
        if (
            max(
                try_base + int_bits(worst),
                adopt_base + int_bits(worst),
                verdict_bits,
            )
            > budget
        ):
            return None  # could violate: replay exactly via fastpath

    g_indptr, g_indices = csr.g_indptr, csr.g_indices
    g2_indptr, g2_indices = csr.g2_indptr, csr.g2_indices
    deg = csr.degrees
    d2_deg = csr.d2_degrees

    announced = np.zeros(n, dtype=bool)
    adopt_iter = np.full(n, -1, dtype=np.int64)
    phases_tried = np.zeros(n, dtype=np.int64)
    cand = np.full(n, -1, dtype=np.int64)
    adopt_idx = np.empty(0, dtype=np.int64)

    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    rounds = 0
    pending_verdicts = 0
    stopped_early = False
    timed_out = False
    check_stop = stop_when is not None

    r = 0
    while True:
        if check_stop and not (colors < 0).any():
            stopped_early = True
            break
        if r >= max_rounds:
            timed_out = True
            break
        k = r % 3
        if k == 0:
            live_idx = np.flatnonzero(colors < 0)
            if live_idx.size == 0 and not check_stop:
                # Everyone colored, no stop monitor: every remaining
                # iteration is message-free local computation with the
                # network still running, so it still counts a round.
                rounds += max_rounds - r
                r = max_rounds
                timed_out = True
                break
            cand.fill(-1)
            if live_idx.size:
                cand[live_idx] = [
                    rngs[i].randrange(int(palettes[i]))
                    for i in live_idx.tolist()
                ]
                phases_tried[live_idx] += 1
            send_deg = deg[live_idx]
            msgs = int(send_deg.sum())
            pending_verdicts = msgs
            total_messages += msgs
            if metered and msgs:
                pb = try_base + arrays.int_bits_array(cand[live_idx])
                total_bits += int((send_deg * pb).sum())
                biggest = int(pb[send_deg > 0].max())
                if biggest > max_message_bits:
                    max_message_bits = biggest
            # The phase's adoption outcome, decided on the state every
            # verdict server will hold in round B (colors/announced
            # only change at k == 2, never between here and there).
            own_g = np.repeat(cand, deg)
            conflict_g = arrays.row_any(
                (own_g >= 0) & (colors[g_indices] == own_g),
                g_indptr,
            )
            own_2 = np.repeat(cand, d2_deg)
            known_2 = announced[g2_indices] & (
                colors[g2_indices] == own_2
            )
            trying_2 = cand[g2_indices] == own_2
            conflict_2 = arrays.row_any(
                (own_2 >= 0) & (known_2 | trying_2), g2_indptr
            )
            adopt_idx = np.flatnonzero(
                (cand >= 0) & ~(conflict_g | conflict_2)
            )
        elif k == 1:
            total_messages += pending_verdicts
            if metered and pending_verdicts:
                total_bits += pending_verdicts * verdict_bits
                if verdict_bits > max_message_bits:
                    max_message_bits = verdict_bits
        else:
            send_deg = deg[adopt_idx]
            msgs = int(send_deg.sum())
            total_messages += msgs
            if metered and msgs:
                pb = adopt_base + arrays.int_bits_array(
                    cand[adopt_idx]
                )
                total_bits += int((send_deg * pb).sum())
                biggest = int(pb[send_deg > 0].max())
                if biggest > max_message_bits:
                    max_message_bits = biggest
            colors[adopt_idx] = cand[adopt_idx]
            announced[adopt_idx] = True
            adopt_iter[adopt_idx] = r
        rounds += 1
        r += 1

    # ------------------------------------------------------------------
    # write observable program state back (color, phases_tried, and
    # the 1-hop color tables the generators would have accumulated).
    # An adopt sent at iteration t was recorded by neighbors at
    # iteration t + 1, which executed iff t + 1 <= r - 1.
    recorded = (adopt_iter >= 0) & (adopt_iter < r - 1)
    for i, node in enumerate(order):
        program = programs[node]
        c = int(colors[i])
        program.color = c if c >= 0 else None
        program.phases_tried = int(phases_tried[i])
        row = g_indices[g_indptr[i]:g_indptr[i + 1]]
        program.nbr_colors = {
            order[j]: int(colors[j])
            for j in row[recorded[row]].tolist()
        }
    return _finish(
        network, rounds, total_messages, total_bits,
        max_message_bits, r, stopped_early, timed_out,
        max_rounds, raise_on_timeout,
    )


# ----------------------------------------------------------------------
# Luby distance-k MIS: k rounds of max-flooding + k domination rounds


@register_kernel(LubyDistanceKProgram)
def _luby_kernel(network, *, max_rounds, stop_when, raise_on_timeout):
    """Vectorized :class:`LubyDistanceKProgram`.

    Per 2k-round phase: live nodes draw ``rng.randrange(n³)·n + id``
    (same streams, same order as the generators), ranks max-flood for
    k broadcast rounds, the strict maximum within distance k joins,
    and ``(D, hops)`` countdowns dominate the k-ball.  Messages sent
    in round t are applied at the top of round t+1, exactly when the
    generators would resume on that inbox — including the last
    domination round of a phase, which lands at the next phase's first
    resume *before* new ranks are drawn.
    """
    if stop_when is not None and stop_when is not _all_decided:
        return None
    csr = arrays.csr_for_graph(network.graph)
    if csr.has_selfloops:
        return None
    n = csr.n
    order = csr.order
    programs = network.programs

    ks = {programs[v].k for v in order}
    if len(ks) != 1:
        return None
    k = ks.pop()
    if not isinstance(k, int) or k < 1:
        return None
    if any(programs[v].state != _STATE_LIVE for v in order):
        return None  # resumed/preseeded state: not a fresh run
    max_label = max(abs(order[0]), abs(order[-1]))
    if (n**3 - 1) * n + max_label >= _INT64_SAFE:
        return None  # rank arithmetic could leave int64

    mode = network.policy.mode
    metered = mode is not BandwidthMode.UNBOUNDED
    budget = network._budget
    rank_base = bit_size((_TAG_RANK, 0)) - 1
    dom_base = rank_base  # both tags are 1-char strings
    if metered:
        worst = rank_base + 1 + int_bits((n**3 - 1) * n + max_label)
        if max(worst, dom_base + int_bits(k)) > budget:
            return None

    g_indptr, g_indices = csr.g_indptr, csr.g_indices
    rngs = [programs[v].ctx.rng for v in order]
    labels = np.array(order, dtype=np.int64)

    LIVE, IN_MIS, DOM = 0, 1, 2
    state = np.zeros(n, dtype=np.int8)
    own = np.full(n, -1, dtype=np.int64)
    best = np.full(n, -1, dtype=np.int64)
    hops = np.zeros(n, dtype=np.int64)
    joined = np.zeros(n, dtype=bool)
    NEG = np.int64(-_INT64_SAFE)

    phases = 0
    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    rounds = 0
    stopped_early = False
    timed_out = False
    check_stop = stop_when is not None
    period = 2 * k
    inflight = None  # ("rank"|"dom", values) sent one round ago
    idle_bits = rank_base + 2  # bit_size((_TAG_RANK, -1))

    r = 0
    while True:
        if check_stop and not (state == LIVE).any():
            stopped_early = True
            break
        if r >= max_rounds:
            timed_out = True
            break
        if inflight is not None:
            tag, vals = inflight
            inflight = None
            if tag == "rank":
                best = np.maximum(
                    best,
                    arrays.row_max(vals[g_indices], g_indptr, NEG),
                )
            else:
                relay = np.where(vals > 0, vals, NEG)
                nbr_max = arrays.row_max(
                    relay[g_indices], g_indptr, NEG
                )
                has_in = nbr_max > NEG
                state[has_in & (state == LIVE)] = DOM
                hops = np.where(
                    has_in,
                    np.maximum(hops, nbr_max - 1),
                    np.where(joined, hops, 0),
                )
        pos = r % period
        if pos == 0:
            live_idx = np.flatnonzero(state == LIVE)
            if live_idx.size == 0 and not check_stop:
                # Decided network, no stop monitor: each remaining
                # phase is k rounds of n ``(K, -1)`` broadcasts then k
                # silent rounds, forever.
                remaining = max_rounds - r
                full, part = divmod(remaining, period)
                phases += full + (1 if part else 0)
                flood = full * k + min(part, k)
                total_messages += flood * n
                if metered and flood:
                    total_bits += flood * n * idle_bits
                    if idle_bits > max_message_bits:
                        max_message_bits = idle_bits
                rounds += remaining
                r = max_rounds
                timed_out = True
                break
            phases += 1
            own.fill(-1)
            n3 = n**3
            own[live_idx] = [
                rngs[i].randrange(n3) * n + int(labels[i])
                for i in live_idx.tolist()
            ]
            best = own.copy()
        if pos < k:
            # flood round: every node broadcasts (K, best)
            total_messages += n
            if metered:
                pb = rank_base + arrays.int_bits_array(best)
                total_bits += int(pb.sum())
                biggest = int(pb.max())
                if biggest > max_message_bits:
                    max_message_bits = biggest
            inflight = ("rank", best.copy())
        else:
            if pos == k:
                joined = (state == LIVE) & (best == own)
                state[joined] = IN_MIS
                hops = np.where(joined, k, 0).astype(np.int64)
            senders = hops > 0
            count = int(senders.sum())
            total_messages += count
            if metered and count:
                pb = dom_base + arrays.int_bits_array(hops[senders])
                total_bits += int(pb.sum())
                biggest = int(pb.max())
                if biggest > max_message_bits:
                    max_message_bits = biggest
            inflight = ("dom", np.where(senders, hops, 0))
        rounds += 1
        r += 1

    names = {LIVE: _STATE_LIVE, IN_MIS: _STATE_IN_MIS,
             DOM: _STATE_DOMINATED}
    for i, node in enumerate(order):
        program = programs[node]
        program.state = names[int(state[i])]
        program.phases = phases
    return _finish(
        network, rounds, total_messages, total_bits,
        max_message_bits, r, stopped_early, timed_out,
        max_rounds, raise_on_timeout,
    )
