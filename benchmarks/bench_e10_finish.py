"""E10 — Lemma 2.14: FinishColoring completes in O(log n) rounds.

Regenerates the E10 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e10_finish

from conftest import report


def test_e10_finish(benchmark):
    table = benchmark.pedantic(
        e10_finish, iterations=1, rounds=1
    )
    report(table)
