"""E2 — Corollary 2.1: the basic d2-Color pipeline runs in O(log^3 n) rounds.

Regenerates the E2 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e02_basic_randomized

from conftest import report


def test_e02_basic_randomized(benchmark):
    table = benchmark.pedantic(
        e02_basic_randomized, iterations=1, rounds=1
    )
    report(table)
