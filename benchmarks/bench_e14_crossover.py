"""E14 — Section 1: the naive G^2 simulation pays Theta(Delta) rounds per G^2 round.

Regenerates the E14 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e14_crossover

from conftest import report


def test_e14_crossover(benchmark):
    table = benchmark.pedantic(
        e14_crossover, iterations=1, rounds=1
    )
    report(table)
