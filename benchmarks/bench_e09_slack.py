"""E9 — Proposition 2.5: one random round converts sparsity into slack.

Regenerates the E9 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e09_slack

from conftest import report


def test_e09_slack(benchmark):
    table = benchmark.pedantic(
        e09_slack, iterations=1, rounds=1
    )
    report(table)
