"""E5 — Theorem 3.4: deterministic (1+eps)Delta coloring of G.

Regenerates the E5 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e05_eps_g_coloring

from conftest import report


def test_e05_eps_g_coloring(benchmark):
    table = benchmark.pedantic(
        e05_eps_g_coloring, iterations=1, rounds=1
    )
    report(table)
