"""E12 — Lemma B.3: at most 2*Delta^2 blocked phases in the locally-iterative scheme.

Regenerates the E12 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e12_blocked_phases

from conftest import report


def test_e12_blocked_phases(benchmark):
    table = benchmark.pedantic(
        e12_blocked_phases, iterations=1, rounds=1
    )
    report(table)
