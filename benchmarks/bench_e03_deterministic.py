"""E3 — Theorem 1.2: deterministic Delta^2+1 d2-coloring in O(Delta^2 + log* n) rounds.

Regenerates the E3 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e03_deterministic

from conftest import report


def test_e03_deterministic(benchmark):
    table = benchmark.pedantic(
        e03_deterministic, iterations=1, rounds=1
    )
    report(table)
