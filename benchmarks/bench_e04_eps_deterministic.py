"""E4 — Theorem 1.3: deterministic (1+eps)Delta^2 d2-coloring.

Regenerates the E4 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e04_eps_deterministic

from conftest import report


def test_e04_eps_deterministic(benchmark):
    table = benchmark.pedantic(
        e04_eps_deterministic, iterations=1, rounds=1
    )
    report(table)
