"""E11 — Theorem 2.16: LearnPalette learns exact remaining palettes in O(log n) rounds.

Regenerates the E11 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e11_learn_palette

from conftest import report


def test_e11_learn_palette(benchmark):
    table = benchmark.pedantic(
        e11_learn_palette, iterations=1, rounds=1
    )
    report(table)
