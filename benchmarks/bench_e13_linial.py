"""E13 — Theorem B.1: Linial yields O(Delta^4) colors in O(Delta + log* n) rounds.

Regenerates the E13 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e13_linial

from conftest import report


def test_e13_linial(benchmark):
    table = benchmark.pedantic(
        e13_linial, iterations=1, rounds=1
    )
    report(table)
