"""E6 — Theorem 3.2 / Lemma 3.3: local refinement splitting degree guarantees.

Regenerates the E6 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e06_splitting

from conftest import report


def test_e06_splitting(benchmark):
    table = benchmark.pedantic(
        e06_splitting, iterations=1, rounds=1
    )
    report(table)
