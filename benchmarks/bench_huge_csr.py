"""Huge-tier CSR-first acceptance bench (opt-in, slow).

The million-node sweep used to spend most of its wall clock and
~4.2 GB of peak RSS building and holding ``nx.Graph`` objects.  With
CSR-born instances the same single-shard vectorized sweep runs
entirely on int64 arrays.  This bench pins the win and its safety:

- the CSR-born sweep's *own* peak RSS must stay within 1 GiB
  (≥5× below the nx-graph figure) — snapshotted **before** the twin
  run, because ``ru_maxrss`` is a process-wide monotone high-water
  mark;
- an nx-built twin of the same instance, pushed through the same
  cells, must produce a byte-identical sweep fingerprint — the
  array path changes the cost, never the result;
- both sides land in the committed ``BENCH_huge_rss.json``
  trajectory.

Not part of the CI bench smoke subset: run on demand with
``pytest -m slow benchmarks/bench_huge_csr.py``.
"""

from __future__ import annotations

import tempfile
import time

import networkx as nx
import pytest
from conftest import peak_rss_mb, write_bench_json

from repro import registry
from repro.exec import (
    ShardManifest,
    compile_manifest,
    grid_cells,
    merge_shards,
    run_shard,
)
from repro.exec.arrays import csr_upper_edges
from repro.workloads import get_workload, instance_cache
from repro.workloads.cache import Instance

pytestmark = pytest.mark.slow

WORKLOAD = "gnp-huge-1048576"
RSS_BUDGET_MB = 1024.0


def _single_shard_sweep(cells, tmp):
    manifest = compile_manifest(cells, 1, inner="vectorized")
    path = manifest.save(tmp)
    run_shard(ShardManifest.load(path), 0, tmp)
    return merge_shards(ShardManifest.load(path), tmp)


def test_million_node_sweep_rss_and_fingerprint():
    cache = instance_cache()
    cache.clear()
    spec = get_workload(WORKLOAD)
    cells = grid_cells(
        specs=[registry.get_algorithm("trial")],
        scenarios=[spec],
        seeds=(0,),
    )

    # --- CSR-born path first (the lean side must snapshot its RSS
    # before the heavy twin pollutes the high-water mark).
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        csr_sweep = _single_shard_sweep(cells, tmp)
    csr_wall = time.perf_counter() - t0
    csr_rss = peak_rss_mb()
    assert csr_sweep.ok, [c.error for c in csr_sweep.failures]
    instance = cache.get(WORKLOAD, 0)
    assert instance._csr_born, "huge-tier instance not CSR-born"
    assert instance._graph is None, (
        "the kernel path materialized an nx.Graph"
    )
    assert csr_rss <= RSS_BUDGET_MB, (
        f"CSR sweep peaked at {csr_rss:.0f} MiB "
        f"(budget {RSS_BUDGET_MB:.0f} MiB)"
    )

    # --- nx-built twin through the identical cells: the legacy
    # instance path end to end, same fingerprint required.
    csr = instance.csr()
    twin = nx.Graph()
    twin.add_nodes_from(range(csr.n))
    us, vs = csr_upper_edges(csr)
    twin.add_edges_from(zip(us.tolist(), vs.tolist()))
    twin_instance = Instance.from_graph(
        spec.name, 0, twin, spec.params, registered=True
    )
    assert not twin_instance._csr_born
    cache.clear()
    cache.install([twin_instance])
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        twin_sweep = _single_shard_sweep(cells, tmp)
    twin_wall = time.perf_counter() - t0
    twin_rss = peak_rss_mb()
    assert twin_sweep.ok, [c.error for c in twin_sweep.failures]
    assert twin_sweep.fingerprint() == csr_sweep.fingerprint(), (
        "CSR-born and nx-built sweeps diverged"
    )

    write_bench_json(
        "huge_rss",
        {
            "workload": WORKLOAD,
            "csr_sweep_wall_seconds": round(csr_wall, 3),
            "csr_peak_rss_mb": round(csr_rss, 1),
            "nx_twin_sweep_wall_seconds": round(twin_wall, 3),
            "process_peak_rss_after_twin_mb": round(twin_rss, 1),
            "fingerprint_identical": True,
            # The headline metric: the lean side's own high-water
            # mark (pre-twin snapshot), not the polluted final one.
            "peak_rss_mb": round(csr_rss, 1),
        },
    )
    print(
        f"{WORKLOAD}: csr sweep {csr_wall:.1f}s / {csr_rss:.0f} MiB "
        f"peak; nx twin {twin_wall:.1f}s (process peak after twin "
        f"{twin_rss:.0f} MiB); fingerprints identical"
    )
