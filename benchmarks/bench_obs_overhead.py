"""Tracing overhead acceptance bench (opt-in, slow).

The observability layer promises zero-overhead-when-off *and*
near-zero overhead when on: span records are emitted at phase
granularity (plan build, kernel run, sweep cell), never per node or
per round, so a traced sweep should be indistinguishable from an
untraced one on anything but a stopwatch.  This bench pins both
halves of that contract on the ``gnp-huge-262144`` vectorized tier:

- a traced single-shard sweep must produce a **byte-identical merge
  fingerprint** to the untraced twin — tracing observes the run, it
  never perturbs RNG, fingerprints, or digests;
- the traced sweep's wall clock must stay within 5% of the untraced
  one (best-of-two per side, to keep allocator/IO noise out of the
  ratio);
- both walls, the overhead ratio, and the traced run's metrics
  snapshot land in the committed ``BENCH_obs_overhead.json``
  trajectory.

Not part of the CI bench smoke subset: run on demand with
``pytest -m slow benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import tempfile
import time

import pytest
from conftest import write_bench_json

from repro import registry
from repro.exec import (
    ShardManifest,
    compile_manifest,
    merge_shards,
    grid_cells,
    run_shard,
)
from repro.obs import (
    disable,
    enable,
    read_trace,
    registry as obs_registry,
    validate_trace,
)
from repro.workloads import get_workload, instance_cache

pytestmark = pytest.mark.slow

WORKLOAD = "gnp-huge-262144"
MAX_OVERHEAD = 1.05
REPEATS = 3


def _single_shard_sweep(cells, tmp):
    manifest = compile_manifest(cells, 1, inner="vectorized")
    path = manifest.save(tmp)
    run_shard(ShardManifest.load(path), 0, tmp)
    return merge_shards(ShardManifest.load(path), tmp)


def _timed_sweep(cells):
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        sweep = _single_shard_sweep(cells, tmp)
    return time.perf_counter() - t0, sweep


def test_tracing_overhead_and_fingerprint(tmp_path):
    cache = instance_cache()
    cache.clear()
    cells = grid_cells(
        specs=[registry.get_algorithm("trial")],
        scenarios=[get_workload(WORKLOAD)],
        seeds=(0,),
    )

    # Warm the instance cache once so neither side pays the build.
    _timed_sweep(cells)

    plain_walls, traced_walls = [], []
    plain_sweep = traced_sweep = None
    for repeat in range(REPEATS):
        wall, plain_sweep = _timed_sweep(cells)
        plain_walls.append(wall)

        trace_dir = tmp_path / f"trace{repeat}"
        trace_dir.mkdir()
        obs_registry().clear()
        enable(trace_dir)
        try:
            wall, traced_sweep = _timed_sweep(cells)
        finally:
            disable()
        traced_walls.append(wall)

    assert plain_sweep.ok and traced_sweep.ok
    assert traced_sweep.fingerprint() == plain_sweep.fingerprint(), (
        "tracing perturbed the sweep fingerprint"
    )

    records = read_trace(trace_dir)
    assert records, "traced sweep produced no records"
    assert validate_trace(records) == []

    plain_wall, traced_wall = min(plain_walls), min(traced_walls)
    overhead = traced_wall / plain_wall
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.3f}x exceeds "
        f"{MAX_OVERHEAD:.2f}x ({plain_wall:.2f}s -> {traced_wall:.2f}s)"
    )

    write_bench_json(
        "obs_overhead",
        {
            "workload": WORKLOAD,
            "untraced_wall_seconds": round(plain_wall, 3),
            "traced_wall_seconds": round(traced_wall, 3),
            "overhead_ratio": round(overhead, 4),
            "trace_records": len(records),
            "fingerprint_identical": True,
        },
        obs=obs_registry().snapshot(),
    )
    print(
        f"{WORKLOAD}: untraced {plain_wall:.2f}s, traced "
        f"{traced_wall:.2f}s ({overhead:.3f}x, {len(records)} "
        f"trace records); fingerprints identical"
    )
