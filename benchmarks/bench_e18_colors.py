"""E18 — Color quality across algorithms; Moore graphs force the full palette.

Regenerates the E18 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e18_colors

from conftest import report


def test_e18_colors(benchmark):
    table = benchmark.pedantic(
        e18_colors, iterations=1, rounds=1
    )
    report(table)
