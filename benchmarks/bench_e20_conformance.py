"""E20 — registry × scenario differential conformance sweep.

Regenerates the E20 table: every algorithm in the registry runs on
every scenario of the conformance corpus (adversarial generators
included) and must produce a checker-valid coloring within its
palette bound, with bandwidth metered and per-seed repeatability.

A per-spec timing bench rides along so a regression in any single
algorithm's wall-clock on the corpus is visible in the benchmark
history; the wall-clocks are persisted to
``results/BENCH_e20_conformance.json`` for cross-PR tracking.
"""

import pytest

from repro.conformance import build_corpus, run_conformance
from repro.harness.experiments import e20_conformance

from conftest import (
    registry_ids,
    registry_specs,
    report,
    write_bench_json,
)

_SPECS = registry_specs()

#: Collected across the tests below; the final test persists it.
_PAYLOAD = {}


def test_e20_conformance(benchmark):
    table = benchmark.pedantic(e20_conformance, iterations=1, rounds=1)
    report(table)
    _PAYLOAD["e20_table_wall_seconds"] = benchmark.stats.stats.min


@pytest.mark.parametrize("spec", _SPECS, ids=registry_ids(_SPECS))
def test_e20_per_algorithm_corpus(benchmark, spec):
    corpus = build_corpus()

    def sweep():
        return run_conformance(
            specs=[spec], scenarios=corpus, seed=20
        )

    result = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert result.ok, result.explain()
    _PAYLOAD.setdefault("per_algorithm_wall_seconds", {})[
        spec.name
    ] = benchmark.stats.stats.min


def test_write_bench_json():
    """Persist the machine-readable trajectory (must run last)."""
    assert _PAYLOAD, "timing tests did not run"
    out = write_bench_json("e20_conformance", _PAYLOAD)
    assert out.exists()
