"""E20 — registry × scenario differential conformance sweep.

Regenerates the E20 table: every algorithm in the registry runs on
every scenario of the conformance corpus (adversarial generators
included) and must produce a checker-valid coloring within its
palette bound, with bandwidth metered and per-seed repeatability.

A per-spec timing bench rides along so a regression in any single
algorithm's wall-clock on the corpus is visible in the benchmark
history.
"""

import pytest

from repro.conformance import build_corpus, run_conformance
from repro.harness.experiments import e20_conformance

from conftest import registry_ids, registry_specs, report

_SPECS = registry_specs()


def test_e20_conformance(benchmark):
    table = benchmark.pedantic(e20_conformance, iterations=1, rounds=1)
    report(table)


@pytest.mark.parametrize("spec", _SPECS, ids=registry_ids(_SPECS))
def test_e20_per_algorithm_corpus(benchmark, spec):
    corpus = build_corpus()

    def sweep():
        return run_conformance(
            specs=[spec], scenarios=corpus, seed=20
        )

    result = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert result.ok, result.explain()
