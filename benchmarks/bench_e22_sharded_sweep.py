"""E22 — sharded, resumable sweep execution.

Regenerates the E22 table (shard-merge byte-identity at k = 1, 2, 3;
kill-and-resume from per-cell checkpoints; lease-based fleet crash
reclaim; instance-cache sharing across cells) and persists the shard
and fleet wall-clock trajectory to
``results/BENCH_e22_sharded_sweep.json`` so manifest/checkpoint/lease
overhead is tracked across PRs, not just printed.
"""

import time

from repro import registry
from repro.exec import SweepBackend, grid_cells, run_fleet, run_sharded
from repro.harness.experiments import e22_sharded_sweep
from repro.workloads import get_workload

from conftest import report, write_bench_json


def test_e22_sharded_sweep(benchmark):
    table = benchmark.pedantic(
        e22_sharded_sweep, iterations=1, rounds=1
    )
    report(table)


def test_shard_overhead_trajectory(tmp_path, benchmark):
    """Unsharded vs 3-shard wall-clock on one grid: the manifest +
    checkpoint machinery must stay a small constant factor."""
    cells = grid_cells(
        specs=[
            registry.get_algorithm(name)
            for name in ("trial", "greedy-oracle")
        ],
        scenarios=[
            get_workload(name)
            for name in ("gnp24", "relay3x4", "powerlaw24")
        ],
        seeds=(22, 23),
    )
    t0 = time.perf_counter()
    unsharded = SweepBackend(executor="serial").run_grid(cells)
    unsharded_s = time.perf_counter() - t0

    sharded = benchmark.pedantic(
        lambda: run_sharded(cells, 3, str(tmp_path)),
        iterations=1,
        rounds=1,
    )
    sharded_s = benchmark.stats.stats.min
    assert sharded.fingerprint() == unsharded.fingerprint()

    t0 = time.perf_counter()
    fleet = run_fleet(
        cells, 3, str(tmp_path / "fleet"), num_workers=2
    )
    fleet_s = time.perf_counter() - t0
    assert fleet.fingerprint() == unsharded.fingerprint()

    write_bench_json(
        "e22_sharded_sweep",
        {
            "cells": len(cells),
            "unsharded_wall_seconds": unsharded_s,
            "sharded_3_wall_seconds": sharded_s,
            "fleet_2worker_wall_seconds": fleet_s,
            "aggregate_messages": (
                sharded.aggregate_metrics().total_messages
            ),
            "aggregate_rounds": sharded.aggregate_metrics().rounds,
        },
    )
