"""E16 — Section 2.1: a (1+eps)Delta^2 palette makes random trials finish fast.

Regenerates the E16 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e16_trial_eps

from conftest import report


def test_e16_trial_eps(benchmark):
    table = benchmark.pedantic(
        e16_trial_eps, iterations=1, rounds=1
    )
    report(table)
