"""E7 — Theorem 2.2: sampled similarity graphs classify pairs correctly.

Regenerates the E7 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e07_similarity

from conftest import report


def test_e07_similarity(benchmark):
    table = benchmark.pedantic(
        e07_similarity, iterations=1, rounds=1
    )
    report(table)
