"""E21 — execution backends head-to-head.

Regenerates the E21 table: the round-level backends (``reference``,
``fastpath``, ``vectorized``) must produce identical colorings and
round counts on the large-tier workloads, ``fastpath`` must win
wall-clock on the largest one (and ``vectorized`` must beat
``fastpath`` where a kernel applies), and a sweep grid must
aggregate byte-identically at any worker count.

Persisted for cross-PR tracking
(``results/BENCH_e21_backends.json``): the per-backend wall-clock on
the largest corpus workload, the vectorized-over-fastpath speedup on
the trial kernel, a per-kernel speedup row (with a hard >= 2x floor)
for each of the PR-8 kernels — the hybrid randomized d2-Color
kernels and the locally-iterative / part-offset poly-phase kernels
behind deterministic-d2 and eps-d2-coloring — and the
instance-cache effect on the sweep hot path — contract checks take the one cached G² adjacency per
instance instead of rebuilding distance-2 adjacency per cell, which
this bench asserts (one square build per instance, cells × specs
sharing it) and times.
"""

import random
import time

import pytest

from repro import registry
from repro.congest.network import Network
from repro.congest.policy import BandwidthPolicy
from repro.core.d2color import basic_d2_color, improved_d2_color
from repro.core.trying import all_colored
from repro.det.g_coloring import prime_between
from repro.det.locally_iterative import LocallyIterativeProgram
from repro.det.part_d2coloring import PartLocallyIterativeD2
from repro.exec import (
    SweepBackend,
    available_backends,
    get_backend,
    grid_cells,
    use_backend,
)
from repro.util.primes import bertrand_prime
from repro.harness.experiments import e21_backends
from repro.verify.checker import check_d2_coloring
from repro.workloads import (
    build_large_corpus,
    get_workload,
    instance_cache,
)

from conftest import report, write_bench_json

#: Collected across the tests below; the final test persists it.
_PAYLOAD = {}


def test_e21_backends(benchmark):
    table = benchmark.pedantic(e21_backends, iterations=1, rounds=1)
    report(table)


def _largest_spec():
    # Declared bounds make this free — no graph builds just to rank.
    corpus = build_large_corpus()
    return max(corpus, key=lambda s: s.n_bound or 0)


@pytest.mark.parametrize(
    "backend", ["reference", "fastpath", "vectorized"]
)
def test_backend_wall_clock_largest_scenario(benchmark, backend):
    """Per-backend timing on the largest corpus workload.

    The hard fastpath-beats-reference assertion lives in the E21
    checks; these rows make the gap visible in benchmark history.
    """
    workload = _largest_spec()
    graph = instance_cache().get(workload, 21).graph()
    spec = registry.get_algorithm("naive-g2")
    policy = BandwidthPolicy.unbounded()

    result = benchmark.pedantic(
        lambda: spec.run(graph, seed=21, policy=policy, backend=backend),
        iterations=1,
        rounds=3,
    )
    assert result.complete
    assert result.metrics.total_messages > 0
    _PAYLOAD.setdefault("largest_scenario", {})[backend] = {
        "workload": workload.name,
        "n": graph.number_of_nodes(),
        "wall_seconds": benchmark.stats.stats.min,
        "rounds": result.rounds,
        "messages": result.metrics.total_messages,
    }


def test_vectorized_speedup_on_trial(benchmark):
    """The tentpole number: the array engine's margin over fastpath
    on the kernel's home turf — the trial pipeline on the largest
    large-tier workload (best of 3 each)."""
    workload = _largest_spec()
    graph = instance_cache().get(workload, 21).graph()
    spec = registry.get_algorithm("trial")
    policy = BandwidthPolicy.unbounded()

    def run(backend):
        walls = []
        for _ in range(3):
            t0 = time.perf_counter()
            result = spec.run(
                graph, seed=21, policy=policy, backend=backend
            )
            walls.append(time.perf_counter() - t0)
        return min(walls), result

    fast_s, fast = run("fastpath")
    vec_s, vec = benchmark.pedantic(
        lambda: run("vectorized"), iterations=1, rounds=1
    )
    assert vec.coloring == fast.coloring
    assert vec.rounds == fast.rounds
    speedup = fast_s / vec_s
    # The ISSUE's acceptance bar is >= 5x; assert a regression floor
    # below it so a noisy CI box does not flake the smoke job.
    assert speedup >= 2.0, (fast_s, vec_s)
    _PAYLOAD["vectorized_speedup"] = {
        "workload": workload.name,
        "n": graph.number_of_nodes(),
        "algorithm": "trial",
        "fastpath_wall_seconds": fast_s,
        "vectorized_wall_seconds": vec_s,
        "speedup": round(speedup, 2),
    }


def _distinct_colors(graph, bound, seed):
    rng = random.Random(seed)
    used = set()
    colors = {}
    for node in sorted(graph.nodes):
        while True:
            color = rng.randrange(bound)
            if color not in used:
                used.add(color)
                colors[node] = color
                break
    return colors


@pytest.mark.parametrize("variant", ["improved", "basic"])
def test_kernel_speedup_randomized_d2(benchmark, variant):
    """The hybrid d2-Color kernel's margin over fastpath (best of 2).

    The random-trials section runs as array work; the
    similarity/ladder epilogue resumes the generators.  Δ² < c2·log n
    on this workload, so the deterministic fallback is disabled to
    exercise the randomized pipeline itself.
    """
    workload = get_workload("rr4-huge-16384")
    graph = instance_cache().get(workload, 7).graph()
    policy = BandwidthPolicy.unbounded()
    color = improved_d2_color if variant == "improved" else basic_d2_color

    def run(backend):
        walls = []
        result = None
        for _ in range(2):
            t0 = time.perf_counter()
            with use_backend(backend):
                result = color(
                    graph,
                    seed=7,
                    policy=policy,
                    allow_deterministic_fallback=False,
                )
            walls.append(time.perf_counter() - t0)
        return min(walls), result

    fast_s, fast = run("fastpath")
    vec_s, vec = benchmark.pedantic(
        lambda: run("vectorized"), iterations=1, rounds=1
    )
    assert vec.coloring == fast.coloring
    assert vec.rounds == fast.rounds
    speedup = fast_s / vec_s
    assert speedup >= 2.0, (fast_s, vec_s)
    _PAYLOAD.setdefault("kernel_speedups", {})[f"{variant}-d2color"] = {
        "workload": workload.name,
        "n": graph.number_of_nodes(),
        "fastpath_wall_seconds": fast_s,
        "vectorized_wall_seconds": vec_s,
        "speedup": round(speedup, 2),
    }


@pytest.mark.parametrize(
    "kernel", ["deterministic-d2", "eps-d2-coloring"]
)
def test_kernel_speedup_poly_phase(benchmark, kernel):
    """The poly-phase try-phase stages — the kernelized core of the
    deterministic-d2 and eps-d2-coloring pipelines — timed as the
    stage networks those pipelines build (best of 3 each)."""
    workload = get_workload("multileaf48x40")
    instance = instance_cache().get(workload, 21)
    graph = instance.graph()
    delta = instance.delta
    policy = BandwidthPolicy.unbounded()
    if kernel == "deterministic-d2":
        q = bertrand_prime(max(delta, 1))
        colors = _distinct_colors(graph, q * q, 21)
        inputs = {
            v: {"q": q, "color_in": colors[v]} for v in graph.nodes
        }
        program = LocallyIterativeProgram
    else:
        d_part = max(1, delta)
        q = prime_between(4 * d_part, 8 * d_part)
        colors = _distinct_colors(graph, q * q, 21)
        inputs = {
            v: {"q": q, "part": v % 4, "color_in": colors[v]}
            for v in graph.nodes
        }
        program = PartLocallyIterativeD2

    def run(backend):
        walls = []
        run_result = None
        for _ in range(3):
            network = Network(
                graph,
                program,
                seed=21,
                delta=delta,
                policy=policy,
                inputs=inputs,
            )
            t0 = time.perf_counter()
            run_result = get_backend(backend).execute(
                network,
                stop_when=all_colored,
                raise_on_timeout=False,
                max_rounds=3 * q + 3,
            )
            walls.append(time.perf_counter() - t0)
        return min(walls), run_result

    fast_s, fast = run("fastpath")
    vec_s, vec = benchmark.pedantic(
        lambda: run("vectorized"), iterations=1, rounds=1
    )
    assert vec.outputs == fast.outputs
    assert vec.metrics == fast.metrics
    speedup = fast_s / vec_s
    assert speedup >= 2.0, (fast_s, vec_s)
    _PAYLOAD.setdefault("kernel_speedups", {})[kernel] = {
        "workload": workload.name,
        "n": graph.number_of_nodes(),
        "q": q,
        "fastpath_wall_seconds": fast_s,
        "vectorized_wall_seconds": vec_s,
        "speedup": round(speedup, 2),
    }


def test_sweep_backend_grid_smoke(benchmark):
    """A registry × workload × seed grid through the process pool."""
    assert set(available_backends()) >= {
        "reference",
        "fastpath",
        "vectorized",
        "sweep",
    }
    cells = grid_cells(
        specs=[
            registry.get_algorithm(name)
            for name in ("trial", "deterministic-d2", "greedy-oracle")
        ],
        seeds=(21,),
    )
    backend = SweepBackend(executor="process", max_workers=4)

    swept = benchmark.pedantic(
        lambda: backend.run_grid(cells), iterations=1, rounds=1
    )
    assert swept.ok, [c.error for c in swept.failures]
    assert len(swept.cells) == len(cells)
    assert swept.aggregate_metrics().total_messages > 0
    _PAYLOAD["sweep_grid_smoke"] = {
        "cells": len(cells),
        "wall_seconds": benchmark.stats.stats.min,
        "messages": swept.aggregate_metrics().total_messages,
    }


def test_instance_cache_removes_per_cell_square_rebuild(benchmark):
    """The sweep hot path on the large tier: one G² derivation per
    instance, shared by every cell's contract checks.

    Before the workload cache, ``run_conformance`` recomputed
    distance-2 adjacency per spec × scenario; now the cached instance
    supplies it, so the square-build counter must read exactly one
    per scenario however many specs sweep it.  The timing rows below
    quantify what that removes from each cell.
    """
    from repro.conformance import run_conformance

    cache = instance_cache()
    cache.clear()
    specs = [
        registry.get_algorithm(name)
        for name in (
            "trial",
            "deterministic-d2",
            "greedy-oracle",
            "dsatur-oracle",
        )
    ]
    workload = get_workload("cliques64x6")  # large tier, n = 384

    conformance = benchmark.pedantic(
        lambda: run_conformance(
            specs=specs,
            scenarios=[workload],
            seed=21,
            backend=SweepBackend(executor="thread", max_workers=4),
        ),
        iterations=1,
        rounds=1,
    )
    assert conformance.ok, conformance.explain()
    stats = cache.stats.snapshot()
    # The acceptance criterion: per-cell G² rebuild is gone from the
    # hot path — one derivation serves all four specs' checks.
    assert stats["square_builds"] == 1, stats
    assert len(conformance.records) == len(specs)

    # Quantify the removed work: checker with the cached adjacency vs
    # the per-cell BFS recomputation it replaced.
    instance = cache.get(workload, 21)
    coloring = dict(
        registry.get_algorithm("greedy-oracle")
        .run_on(instance)
        .coloring
    )
    bound = registry.get_algorithm("greedy-oracle").bound_for(
        instance.graph(), delta=instance.delta
    )
    t0 = time.perf_counter()
    cached = check_d2_coloring(
        instance.graph(), coloring, bound,
        adjacency=instance.d2_adjacency(),
    )
    cached_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    bfs = check_d2_coloring(instance.graph(), coloring, bound)
    bfs_s = time.perf_counter() - t0
    assert cached.valid == bfs.valid

    _PAYLOAD["instance_cache_hot_path"] = {
        "workload": workload.name,
        "n": instance.n,
        "specs": len(specs),
        "square_builds": stats["square_builds"],
        "cache_hits": stats["hits"],
        "conformance_wall_seconds": benchmark.stats.stats.min,
        "checker_cached_adjacency_seconds": cached_s,
        "checker_bfs_rebuild_seconds": bfs_s,
    }


def test_write_bench_json():
    """Persist the machine-readable trajectory (must run last)."""
    assert _PAYLOAD, "timing tests did not run"
    out = write_bench_json("e21_backends", _PAYLOAD)
    assert out.exists()
