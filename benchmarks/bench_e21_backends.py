"""E21 — execution backends head-to-head.

Regenerates the E21 table: the round-level backends (``reference``,
``fastpath``) must produce identical colorings and round counts on
the large-tier scenarios, ``fastpath`` must win wall-clock on the
largest one, and a sweep grid must aggregate byte-identically at any
worker count.

The pytest-benchmark timings below put the backend comparison in the
benchmark history, so a regression in either engine (or a fastpath
"optimization" that loses its lead) fails fast here rather than
surfacing as a mystery slowdown in the experiment sweeps.
"""

import pytest

from repro import registry
from repro.conformance.scenarios import build_large_corpus
from repro.congest.policy import BandwidthPolicy
from repro.exec import SweepBackend, available_backends, grid_cells
from repro.harness.experiments import e21_backends

from conftest import report


def test_e21_backends(benchmark):
    table = benchmark.pedantic(e21_backends, iterations=1, rounds=1)
    report(table)


def _largest_graph():
    graphs = (s.graph(21) for s in build_large_corpus())
    return max(graphs, key=lambda g: g.number_of_nodes())


@pytest.mark.parametrize("backend", ["reference", "fastpath"])
def test_backend_wall_clock_largest_scenario(benchmark, backend):
    """Per-backend timing on the largest corpus scenario.

    The hard fastpath-beats-reference assertion lives in the E21
    checks; these rows make the gap visible in benchmark history.
    """
    graph = _largest_graph()
    spec = registry.get_algorithm("naive-g2")
    policy = BandwidthPolicy.unbounded()

    result = benchmark.pedantic(
        lambda: spec.run(graph, seed=21, policy=policy, backend=backend),
        iterations=1,
        rounds=3,
    )
    assert result.complete
    assert result.metrics.total_messages > 0


def test_sweep_backend_grid_smoke(benchmark):
    """A registry × corpus × seed grid through the process pool."""
    assert set(available_backends()) >= {
        "reference",
        "fastpath",
        "sweep",
    }
    cells = grid_cells(
        specs=[
            registry.get_algorithm(name)
            for name in ("trial", "deterministic-d2", "greedy-oracle")
        ],
        seeds=(21,),
    )
    backend = SweepBackend(executor="process", max_workers=4)

    swept = benchmark.pedantic(
        lambda: backend.run_grid(cells), iterations=1, rounds=1
    )
    assert swept.ok, [c.error for c in swept.failures]
    assert len(swept.cells) == len(cells)
    assert swept.aggregate_metrics().total_messages > 0
