"""Raw performance of the substrate (wall-clock micro-benchmarks).

These complement the experiment benches: they time the simulator's
round loop, the square-graph computation, and the centralized greedy
oracle, so regressions in the substrate show up independently of the
algorithms.

Each row's best wall-clock is persisted to
``results/BENCH_simulator_perf.json`` for cross-PR tracking.
"""

import networkx as nx
import pytest

from repro.baselines.greedy import greedy_d2_coloring
from repro.congest.network import run_protocol
from repro.congest.node import FunctionProgram
from repro.core.d2color import improved_d2_color
from repro.det.det_d2color import deterministic_d2_color
from repro.graphs.generators import random_regular
from repro.graphs.instances import hoffman_singleton
from repro.graphs.square import square

from conftest import write_bench_json

#: Collected across the tests below; the final test persists it.
_PAYLOAD = {}


def _record(row, benchmark, **extra):
    entry = {"wall_seconds": benchmark.stats.stats.min}
    entry.update(extra)
    _PAYLOAD[row] = entry


@pytest.mark.parametrize("backend", ["reference", "fastpath"])
def test_simulator_round_throughput(benchmark, backend):
    """1000 nodes x 20 broadcast rounds through each round engine."""
    graph = random_regular(6, 1000, seed=1)

    def proto(ctx):
        for _ in range(20):
            yield {v: ("m", ctx.node) for v in ctx.neighbors}
        return None

    def run():
        return run_protocol(
            graph, FunctionProgram.factory(proto), backend=backend
        )

    result = benchmark(run)
    assert result.metrics.rounds == 20
    _record(
        f"round_throughput[{backend}]", benchmark, n=1000, rounds=20
    )


def test_square_computation(benchmark):
    graph = random_regular(8, 500, seed=2)
    sq = benchmark(square, graph)
    assert sq.number_of_nodes() == 500
    _record("square_computation", benchmark, n=500)


def test_greedy_oracle(benchmark):
    graph = random_regular(8, 500, seed=3)
    result = benchmark(greedy_d2_coloring, graph)
    assert result.complete
    _record("greedy_oracle", benchmark, n=500)


def test_improved_d2color_hoffman_singleton(benchmark):
    """End-to-end Theorem 1.1 run on the canonical hard instance."""
    graph = hoffman_singleton()

    def run():
        return improved_d2_color(
            graph, seed=4, allow_deterministic_fallback=False
        )

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.colors_used == 50
    _record(
        "improved_d2color_hoffman_singleton",
        benchmark,
        rounds=result.rounds,
    )


def test_deterministic_d2color_mid_size(benchmark):
    """End-to-end Theorem 1.2 run."""
    graph = random_regular(6, 60, seed=5)

    def run():
        return deterministic_d2_color(graph)

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.complete
    _record(
        "deterministic_d2color_mid_size",
        benchmark,
        rounds=result.rounds,
    )


def test_write_bench_json():
    """Persist the machine-readable trajectory (must run last)."""
    assert _PAYLOAD, "timing tests did not run"
    out = write_bench_json("simulator_perf", _PAYLOAD)
    assert out.exists()
