"""E15 — CONGEST compliance: every message fits in O(log n) bits.

Regenerates the E15 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e15_bandwidth

from conftest import report


def test_e15_bandwidth(benchmark):
    table = benchmark.pedantic(
        e15_bandwidth, iterations=1, rounds=1
    )
    report(table)
