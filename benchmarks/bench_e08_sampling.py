"""E8 — Lemma 2.3: the XOR lottery draws uniformly random H-neighbors.

Regenerates the E8 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e08_sampling

from conftest import report


def test_e08_sampling(benchmark):
    table = benchmark.pedantic(
        e08_sampling, iterations=1, rounds=1
    )
    report(table)
