"""E19 — ablations of the randomized algorithm's design choices.

Varies the initial-trial budget, the activation/query probabilities,
the ladder floor, and the LearnPalette mode on the dense extremal
instance, asserting that every variant still completes validly
(robustness) while the round counts expose each mechanism's share.
"""

from repro.harness.experiments import e19_ablation

from conftest import report


def test_e19_ablation(benchmark):
    table = benchmark.pedantic(e19_ablation, iterations=1, rounds=1)
    report(table)
