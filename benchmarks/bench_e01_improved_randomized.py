"""E1 — Theorem 1.1: Improved-d2-Color uses Delta^2+1 colors in O(log Delta * log n) rounds.

Regenerates the E1 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e01_improved_randomized

from conftest import report


def test_e01_improved_randomized(benchmark):
    table = benchmark.pedantic(
        e01_improved_randomized, iterations=1, rounds=1
    )
    report(table)
