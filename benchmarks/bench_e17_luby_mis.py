"""E17 — Section 1: distance-k MIS via Luby in O(k log n) rounds.

Regenerates the E17 table from DESIGN.md §2 and asserts its
invariant checks; the printed table reports CONGEST rounds and color
counts next to the paper's claim.
"""

from repro.harness.experiments import e17_luby_mis

from conftest import report


def test_e17_luby_mis(benchmark):
    table = benchmark.pedantic(
        e17_luby_mis, iterations=1, rounds=1
    )
    report(table)
