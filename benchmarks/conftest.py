"""Shared helpers for the experiment benches.

Every bench (a) regenerates one experiment table from DESIGN.md §2,
(b) prints it (run pytest with ``-s`` to see the tables inline; they
are also written to ``benchmarks/results/``), and (c) hard-asserts
the experiment's invariant checks.  Wall-clock timing via
pytest-benchmark is secondary — the measured quantity of interest is
CONGEST rounds, which lives in the tables.

Benches that track a perf trajectory across PRs additionally write a
machine-readable ``results/BENCH_<name>.json`` via
:func:`write_bench_json` (wall-clock, rounds, messages — whatever the
bench measures), so regressions diff as data, not as prose.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_bench_json(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Persist one bench's machine-readable results.

    ``payload`` must be JSON-serializable; it lands in
    ``benchmarks/results/BENCH_<name>.json`` (sorted keys, so diffs
    across PRs stay minimal).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"BENCH_{name}.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out


def registry_specs(kind=None, distributed=None):
    """Registered algorithm specs for registry-driven benches.

    Benches that sweep "every algorithm" enumerate the registry
    through this helper instead of keeping an import list, so a newly
    registered algorithm is benched without touching the bench files.
    """
    from repro.registry import algorithms

    return algorithms(kind=kind, distributed=distributed)


def registry_ids(specs):
    """Stable pytest parametrization ids for ``specs``."""
    return [spec.name for spec in specs]


def report(table):
    """Print, persist, and assert an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render()
    print("\n" + rendered)
    out = RESULTS_DIR / f"{table.exp_id}.txt"
    out.write_text(rendered + "\n", encoding="utf-8")
    failed = [
        name for name, passed in table.checks.items() if not passed
    ]
    assert not failed, f"{table.exp_id} failed checks: {failed}"
    return table
