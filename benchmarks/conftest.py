"""Shared helpers for the experiment benches.

Every bench (a) regenerates one experiment table from DESIGN.md §2,
(b) prints it (run pytest with ``-s`` to see the tables inline; they
are also written to ``benchmarks/results/``), and (c) hard-asserts
the experiment's invariant checks.  Wall-clock timing via
pytest-benchmark is secondary — the measured quantity of interest is
CONGEST rounds, which lives in the tables.

Benches that track a perf trajectory across PRs additionally write a
machine-readable ``results/BENCH_<name>.json`` via
:func:`write_bench_json` (wall-clock, rounds, messages — whatever the
bench measures).  Each file is an *append-only per-commit record* —
``{"schema": 2, "entries": [{commit, timestamp, metrics}, ...]}``, see
:mod:`repro.harness.benchstore` — so regressions diff as a
trajectory, and ``python -m repro.harness.benchstore check`` gates
the newest entry against the previous one in CI.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict

from repro.harness.benchstore import append_entry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_bench_json(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Append one bench run's metrics to the bench's trajectory.

    ``payload`` must be JSON-serializable; it is appended as the
    newest ``{commit, timestamp, metrics}`` entry of
    ``benchmarks/results/BENCH_<name>.json`` (re-runs on the same
    commit replace that commit's entry, so local iteration does not
    grow the file).
    """
    return append_entry(RESULTS_DIR, name, payload)


def registry_specs(kind=None, distributed=None):
    """Registered algorithm specs for registry-driven benches.

    Benches that sweep "every algorithm" enumerate the registry
    through this helper instead of keeping an import list, so a newly
    registered algorithm is benched without touching the bench files.
    """
    from repro.registry import algorithms

    return algorithms(kind=kind, distributed=distributed)


def registry_ids(specs):
    """Stable pytest parametrization ids for ``specs``."""
    return [spec.name for spec in specs]


def report(table):
    """Print, persist, and assert an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render()
    print("\n" + rendered)
    out = RESULTS_DIR / f"{table.exp_id}.txt"
    out.write_text(rendered + "\n", encoding="utf-8")
    failed = [
        name for name, passed in table.checks.items() if not passed
    ]
    assert not failed, f"{table.exp_id} failed checks: {failed}"
    return table
