"""Shared helpers for the experiment benches.

Every bench (a) regenerates one experiment table from DESIGN.md §2,
(b) prints it (run pytest with ``-s`` to see the tables inline; they
are also written to ``benchmarks/results/``), and (c) hard-asserts
the experiment's invariant checks.  Wall-clock timing via
pytest-benchmark is secondary — the measured quantity of interest is
CONGEST rounds, which lives in the tables.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def registry_specs(kind=None, distributed=None):
    """Registered algorithm specs for registry-driven benches.

    Benches that sweep "every algorithm" enumerate the registry
    through this helper instead of keeping an import list, so a newly
    registered algorithm is benched without touching the bench files.
    """
    from repro.registry import algorithms

    return algorithms(kind=kind, distributed=distributed)


def registry_ids(specs):
    """Stable pytest parametrization ids for ``specs``."""
    return [spec.name for spec in specs]


def report(table):
    """Print, persist, and assert an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render()
    print("\n" + rendered)
    out = RESULTS_DIR / f"{table.exp_id}.txt"
    out.write_text(rendered + "\n", encoding="utf-8")
    failed = [
        name for name, passed in table.checks.items() if not passed
    ]
    assert not failed, f"{table.exp_id} failed checks: {failed}"
    return table
