"""Shared helpers for the experiment benches.

Every bench (a) regenerates one experiment table from DESIGN.md §2,
(b) prints it (run pytest with ``-s`` to see the tables inline; they
are also written to ``benchmarks/results/``), and (c) hard-asserts
the experiment's invariant checks.  Wall-clock timing via
pytest-benchmark is secondary — the measured quantity of interest is
CONGEST rounds, which lives in the tables.

Benches that track a perf trajectory across PRs additionally write a
machine-readable ``results/BENCH_<name>.json`` via
:func:`write_bench_json` (wall-clock, rounds, messages — whatever the
bench measures).  Each file is an *append-only per-commit record* —
``{"schema": 2, "entries": [{commit, timestamp, metrics}, ...]}``, see
:mod:`repro.harness.benchstore` — so regressions diff as a
trajectory, and ``python -m repro.harness.benchstore check`` gates
the newest entry against the previous one in CI.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Any, Dict

from repro.harness.benchstore import append_entry

try:  # POSIX-only; benches degrade to timing-only elsewhere
    import resource
except ImportError:  # pragma: no cover - linux container has it
    resource = None

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def peak_rss_mb() -> float:
    """Process-wide peak resident set size in MiB (0.0 if unknown).

    ``ru_maxrss`` is a monotone high-water mark for the whole process:
    benches that compare memory footprints must run the lean variant
    *first* and snapshot before running the heavy one.
    """
    if resource is None:
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    return peak / divisor


def write_bench_json(
    name: str,
    payload: Dict[str, Any],
    obs: Dict[str, Any] = None,
) -> pathlib.Path:
    """Append one bench run's metrics to the bench's trajectory.

    ``payload`` must be JSON-serializable; it is appended as the
    newest ``{commit, timestamp, metrics}`` entry of
    ``benchmarks/results/BENCH_<name>.json`` (re-runs on the same
    commit replace that commit's entry, so local iteration does not
    grow the file).  The process-wide peak RSS at write time is
    recorded alongside the bench's own metrics under
    ``peak_rss_mb`` (unless the payload already provides one, e.g. a
    snapshot taken before a heavier comparison run polluted the
    high-water mark).

    ``obs``, when given, is a structured observability payload (a
    :meth:`repro.obs.MetricsRegistry.snapshot` or similar) stored on
    the entry alongside ``metrics`` — informational only, never read
    by the regression gates.
    """
    if "peak_rss_mb" not in payload:
        payload = dict(payload)
        payload["peak_rss_mb"] = round(peak_rss_mb(), 1)
    return append_entry(RESULTS_DIR, name, payload, obs=obs)


def registry_specs(kind=None, distributed=None):
    """Registered algorithm specs for registry-driven benches.

    Benches that sweep "every algorithm" enumerate the registry
    through this helper instead of keeping an import list, so a newly
    registered algorithm is benched without touching the bench files.
    """
    from repro.registry import algorithms

    return algorithms(kind=kind, distributed=distributed)


def registry_ids(specs):
    """Stable pytest parametrization ids for ``specs``."""
    return [spec.name for spec in specs]


def report(table):
    """Print, persist, and assert an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = table.render()
    print("\n" + rendered)
    out = RESULTS_DIR / f"{table.exp_id}.txt"
    out.write_text(rendered + "\n", encoding="utf-8")
    failed = [
        name for name, passed in table.checks.items() if not passed
    ]
    assert not failed, f"{table.exp_id} failed checks: {failed}"
    return table
