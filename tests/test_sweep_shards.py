"""Shard-merge equivalence and resumability.

The contract of :mod:`repro.exec.shards`: a grid split into 1, 2, or
k shards merges to a :class:`SweepResult` *byte-identical*
(``fingerprint()`` plus aggregate metrics) to the unsharded run, and
a killed shard resumes from its per-cell checkpoint without
recomputing finished cells.  Also pins the JSON codecs (lossless
round-trips are what byte-identity rests on), manifest persistence
with digest validation, and the prebuilt-instance shipping that keeps
process workers from rebuilding per cell.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import registry
from repro.exec import (
    ShardIncompleteError,
    ShardManifest,
    SweepBackend,
    compile_manifest,
    grid_cells,
    merge_shards,
    run_shard,
    run_sharded,
    shard_status,
)
from repro.exec.shards import (
    cell_from_json,
    cell_to_json,
    checkpoint_path,
    result_from_json,
    result_to_json,
)
from repro.workloads import get_workload

SEED = 13

_SPECS = [
    registry.get_algorithm(name)
    for name in ("trial", "deterministic-d2", "greedy-oracle")
]
_WORKLOADS = [
    get_workload(name)
    for name in ("cycle5", "gnp24", "relay3x4", "powerlaw24")
]


def small_grid():
    return grid_cells(
        specs=_SPECS, scenarios=_WORKLOADS, seeds=(SEED, SEED + 1)
    )


@pytest.fixture(scope="module")
def unsharded():
    return SweepBackend(executor="serial").run_grid(small_grid())


class TestShardMergeEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_merge_is_byte_identical(
        self, tmp_path, unsharded, num_shards
    ):
        merged = run_sharded(
            small_grid(), num_shards, str(tmp_path)
        )
        assert merged.fingerprint() == unsharded.fingerprint()
        assert repr(merged.aggregate_metrics()) == repr(
            unsharded.aggregate_metrics()
        )

    def test_shards_partition_the_grid(self):
        manifest = compile_manifest(small_grid(), 3)
        owned = [
            manifest.shard_indices(shard) for shard in range(3)
        ]
        flat = sorted(i for indices in owned for i in indices)
        assert flat == list(range(len(manifest.cells)))
        sizes = [len(indices) for indices in owned]
        assert max(sizes) - min(sizes) <= 1  # round-robin balance

    def test_second_process_can_run_from_the_manifest_file(
        self, tmp_path, unsharded
    ):
        """The multi-host story: shard runners share only the
        manifest file and the checkpoint directory."""
        manifest = compile_manifest(small_grid(), 2)
        path = manifest.save(str(tmp_path))
        for shard in (0, 1):
            reloaded = ShardManifest.load(path)
            run_shard(reloaded, shard, str(tmp_path))
        merged = merge_shards(
            ShardManifest.load(path), str(tmp_path)
        )
        assert merged.fingerprint() == unsharded.fingerprint()


class TestResume:
    def test_killed_shard_resumes_from_checkpoint(
        self, tmp_path, unsharded
    ):
        manifest = compile_manifest(small_grid(), 2)
        manifest.save(str(tmp_path))
        partial = run_shard(manifest, 0, str(tmp_path), max_cells=3)
        assert partial.executed == 3 and not partial.complete
        assert shard_status(manifest, str(tmp_path))[0][1] == 3

        resumed = run_shard(manifest, 0, str(tmp_path))
        assert resumed.resumed == 3  # nothing recomputed
        assert resumed.complete
        run_shard(manifest, 1, str(tmp_path))
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_truncated_checkpoint_line_is_recovered(
        self, tmp_path, unsharded
    ):
        """A kill mid-write leaves a torn JSON line; resume must drop
        it and recompute that cell, not crash or corrupt the merge."""
        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 0, str(tmp_path), max_cells=2)
        path = checkpoint_path(str(tmp_path), 0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 4, "result": {"algo')  # torn
        resumed = run_shard(manifest, 0, str(tmp_path))
        assert resumed.resumed == 2
        assert resumed.complete
        run_shard(manifest, 1, str(tmp_path))
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_merge_refuses_incomplete_checkpoints(self, tmp_path):
        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 0, str(tmp_path))
        with pytest.raises(ShardIncompleteError, match="no"):
            merge_shards(manifest, str(tmp_path))

    def test_stale_checkpoints_from_another_grid_are_discarded(
        self, tmp_path, unsharded
    ):
        """Reusing a checkpoint directory for a *different* grid must
        never merge the old grid's results into the new one: records
        are stamped with the grid digest and foreign ones dropped."""
        other = grid_cells(
            specs=_SPECS[:1],
            scenarios=[get_workload("petersen")],
            seeds=(SEED,),
        )
        run_sharded(other, 2, str(tmp_path))  # stale shard_*.jsonl

        manifest = compile_manifest(small_grid(), 2)
        manifest.save(str(tmp_path))
        # Nothing of the stale run counts as done for this grid.
        assert all(
            status.done == 0
            for status in shard_status(manifest, str(tmp_path))
        )
        for shard in (0, 1):
            run_shard(manifest, shard, str(tmp_path))
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()


class TestManifest:
    def test_save_load_round_trip(self, tmp_path):
        manifest = compile_manifest(small_grid(), 4, inner="fastpath")
        path = manifest.save(str(tmp_path))
        loaded = ShardManifest.load(path)
        assert loaded == manifest

    def test_tampered_manifest_is_rejected(self, tmp_path):
        manifest = compile_manifest(small_grid(), 2)
        path = manifest.save(str(tmp_path))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["cells"] = data["cells"][:-1]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(ValueError, match="digest"):
            ShardManifest.load(path)

    def test_workload_cells_serialize_by_key(self):
        cells = small_grid()
        assert all(cell.workload for cell in cells)
        for cell in cells:
            data = cell_to_json(cell)
            assert "nodes" not in data  # key, not payload
            assert cell_from_json(data) == cell

    def test_adhoc_cells_serialize_by_payload(self):
        import networkx as nx

        from repro.exec import SweepCell

        cell = SweepCell.from_graph(
            "trial", "adhoc", 3, nx.path_graph(5)
        )
        data = cell_to_json(cell)
        assert data["nodes"] == [0, 1, 2, 3, 4]
        assert cell_from_json(data) == cell

    def test_result_codec_is_lossless(self, unsharded):
        for result in unsharded.cells:
            back = result_from_json(
                json.loads(json.dumps(result_to_json(result)))
            )
            assert repr(back) == repr(result)


class TestPrebuiltShipping:
    def test_process_grid_matches_serial_on_workload_cells(
        self, unsharded
    ):
        pooled = SweepBackend(
            executor="process", max_workers=3
        ).run_grid(small_grid())
        assert pooled.fingerprint() == unsharded.fingerprint()
        assert pooled.ok, [c.error for c in pooled.failures]

    def test_spawn_workers_receive_prebuilt_instances(self):
        """Under a spawn context nothing is fork-inherited: worker
        cache contents can only come from the pool initializer."""
        import concurrent.futures

        from repro.exec.sweep import prebuild_instances
        from repro.workloads import install_prebuilt

        cells = small_grid()[:4]
        instances = prebuild_instances(cells, prewarm_square=True)
        ctx = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2,
            mp_context=ctx,
            initializer=install_prebuilt,
            initargs=(instances,),
        ) as pool:
            futures = [
                pool.submit(_probe_worker_cache, cell)
                for cell in cells
            ]
            out = [future.result() for future in futures]
        for builds, has_square in out:
            assert builds == 0  # nothing rebuilt in the worker
            assert has_square  # G² arrived prebuilt


def _probe_worker_cache(cell):
    """(worker-side) builds triggered by resolving ``cell`` and
    whether its G² adjacency arrived prebuilt."""
    from repro.workloads import instance_cache

    cache = instance_cache()
    before = cache.stats.builds
    instance = cell.instance()
    return (
        cache.stats.builds - before,
        instance._d2_adjacency is not None,
    )


class TestCheckpointOwnership:
    """Regression: ``_read_checkpoint`` used to accept digest-stamped
    records for indices the shard does not own, so ``resumed`` (and
    ``ShardRun.complete``) could report done work that never ran."""

    def test_foreign_shard_records_do_not_count_as_resumed(
        self, tmp_path, unsharded
    ):
        import shutil

        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 1, str(tmp_path))
        # Another shard's checkpoint copied into shard 0's slot: same
        # grid digest, entirely foreign indices.
        shutil.copy(
            checkpoint_path(str(tmp_path), 1),
            checkpoint_path(str(tmp_path), 0),
        )
        probe = run_shard(manifest, 0, str(tmp_path), max_cells=0)
        assert probe.resumed == 0  # nothing owned is actually done
        assert not probe.complete
        assert shard_status(manifest, str(tmp_path))[0][1] == 0

        full = run_shard(manifest, 0, str(tmp_path))
        assert full.complete and full.executed == full.total
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_out_of_range_indices_are_discarded(
        self, tmp_path, unsharded
    ):
        from repro.exec.shards import _checkpoint_record

        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 0, str(tmp_path), max_cells=2)
        path = checkpoint_path(str(tmp_path), 0)
        # A digest-stamped record for an index past the grid (a reused
        # directory whose old grid was longer, same digest by luck).
        with open(path, "a", encoding="utf-8") as handle:
            record = _checkpoint_record(
                10_000,
                unsharded.cells[0],
                manifest.grid_digest,
            )
            handle.write(record + "\n")
        resumed = run_shard(manifest, 0, str(tmp_path))
        assert resumed.resumed == 2
        assert resumed.complete
        run_shard(manifest, 1, str(tmp_path))
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()


class TestAttributeCarryingCells:
    """Regression: ad-hoc cells used to drop node/edge attributes, so
    weighted graphs silently lost their weights on any worker that
    rebuilt the instance from the cell payload."""

    def _weighted_graph(self):
        from repro import graphs

        return graphs.weighted_gnp(12, 0.3, seed=5, max_weight=9)

    def test_adhoc_cell_rebuilds_attrs_from_payload(self):
        from repro.exec import SweepCell

        graph = self._weighted_graph()
        cell = SweepCell.from_graph("trial", "weighted", 2, graph)
        assert cell.edge_attrs  # the payload carries the weights
        rebuilt = cell.graph()
        for u, v in graph.edges:
            assert (
                rebuilt.edges[u, v]["weight"]
                == graph.edges[u, v]["weight"]
            )

    def test_attrs_round_trip_through_manifest_json(self):
        from repro.exec import SweepCell

        graph = self._weighted_graph()
        cell = SweepCell.from_graph("trial", "weighted", 2, graph)
        back = cell_from_json(
            json.loads(json.dumps(cell_to_json(cell)))
        )
        assert back == cell
        rebuilt = back.graph()
        for u, v in graph.edges:
            assert (
                rebuilt.edges[u, v]["weight"]
                == graph.edges[u, v]["weight"]
            )

    def test_attr_free_cells_keep_their_json_shape(self):
        """Grid digests of attribute-free grids must not change: the
        attrs keys are omitted when empty."""
        import networkx as nx

        from repro.exec import SweepCell

        cell = SweepCell.from_graph(
            "trial", "plain", 0, nx.path_graph(4)
        )
        data = cell_to_json(cell)
        assert "node_attrs" not in data
        assert "edge_attrs" not in data

    def test_weighted_adhoc_cells_agree_across_paths(
        self, tmp_path
    ):
        """serial ≡ process ≡ sharded for a weighted ad-hoc grid."""
        from repro.exec import SweepCell

        graph = self._weighted_graph()
        cells = [
            SweepCell.from_graph("trial", "weighted", seed, graph)
            for seed in (0, 1, 2, 3)
        ]
        serial = SweepBackend(executor="serial").run_grid(cells)
        pooled = SweepBackend(
            executor="process", max_workers=2
        ).run_grid(cells)
        sharded = run_sharded(cells, 2, str(tmp_path))
        assert pooled.fingerprint() == serial.fingerprint()
        assert sharded.fingerprint() == serial.fingerprint()
        assert serial.ok, [c.error for c in serial.failures]


class TestVectorizedInner:
    def test_sharded_vectorized_merge_matches_fastpath_run(
        self, tmp_path, unsharded
    ):
        """``inner="vectorized"`` shards merge byte-identical to the
        fastpath-inner unsharded run (default policy is TRACK, where
        the engines promise bit-identical metrics)."""
        merged = run_sharded(
            small_grid(), 2, str(tmp_path), inner="vectorized"
        )
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_vectorized_grid_matches_serial_fastpath(self, unsharded):
        swept = SweepBackend(
            executor="serial", inner="vectorized"
        ).run_grid(small_grid())
        assert swept.fingerprint() == unsharded.fingerprint()
        assert swept.ok, [c.error for c in swept.failures]


class TestAtomicManifestSave:
    """Regression: ``ShardManifest.save`` used to write in place — a
    kill mid-save left a torn manifest that made every worker's
    ``load`` raise until a human re-saved it."""

    def test_interrupted_save_leaves_previous_manifest_intact(
        self, tmp_path, monkeypatch
    ):
        import repro.exec.shards as shards

        manifest = compile_manifest(small_grid(), 2)
        path = manifest.save(str(tmp_path))
        good = ShardManifest.load(path)

        def torn_dump(obj, handle, **kwargs):
            handle.write('{"version": 1, "num_sh')
            raise KeyboardInterrupt  # the kill, mid-write

        monkeypatch.setattr(shards.json, "dump", torn_dump)
        with pytest.raises(KeyboardInterrupt):
            compile_manifest(small_grid()[:4], 2).save(str(tmp_path))
        # The torn bytes never reached the manifest path.
        assert ShardManifest.load(path) == good

    def test_save_leaves_no_temp_droppings(self, tmp_path):
        compile_manifest(small_grid(), 2).save(str(tmp_path))
        assert os.listdir(str(tmp_path)) == ["manifest.json"]


class TestDuplicateCheckpointRecords:
    """Regression: a later duplicate record for an index silently
    overwrote the earlier one without setting ``damaged``, so a
    doubly-appended checkpoint (zombie writer + lease reclaimer) was
    never repaired — and last-wins is the wrong winner anyway."""

    def test_duplicate_index_is_damage_and_first_record_wins(
        self, tmp_path, unsharded
    ):
        from repro.exec.shards import _checkpoint_record

        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 0, str(tmp_path), max_cells=2)
        path = checkpoint_path(str(tmp_path), 0)
        with open(path, "r", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
        # A conflicting duplicate (a real zombie's would be identical
        # since cells are deterministic; a detectably different one
        # proves keep-first).
        clobber = result_from_json(first["result"])
        clobber.rounds = 9999
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                _checkpoint_record(
                    first["index"], clobber, manifest.grid_digest
                )
                + "\n"
            )

        assert shard_status(manifest, str(tmp_path))[0].damaged
        resumed = run_shard(manifest, 0, str(tmp_path))
        assert resumed.resumed == 2
        assert resumed.complete

        with open(path, "r", encoding="utf-8") as handle:
            records = [
                json.loads(line) for line in handle if line.strip()
            ]
        indices = [r["index"] for r in records]
        assert len(indices) == len(set(indices))  # repaired: unique
        kept = {r["index"]: r for r in records}[first["index"]]
        assert kept["result"]["rounds"] == first["result"]["rounds"]
        assert kept["result"]["rounds"] != 9999

        run_shard(manifest, 1, str(tmp_path))
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()


class TestDamagedStatus:
    """Regression: ``shard_status`` discarded the damaged flag, so a
    torn checkpoint reported done-counts that silently *shrank* after
    the next ``run_shard`` repaired it — and the fleet scheduler had
    no way to treat such a shard as incomplete."""

    def test_torn_checkpoint_is_flagged_until_repaired(self, tmp_path):
        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 0, str(tmp_path), max_cells=2)
        path = checkpoint_path(str(tmp_path), 0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 4, "result": {"algo')  # torn
        status = shard_status(manifest, str(tmp_path))[0]
        assert status.damaged
        assert not status.complete
        assert status.done == 2

        run_shard(manifest, 0, str(tmp_path))  # repairs, finishes
        status = shard_status(manifest, str(tmp_path))[0]
        assert not status.damaged
        assert status.complete

    def test_clean_checkpoints_report_undamaged(self, tmp_path):
        manifest = compile_manifest(small_grid(), 2)
        run_shard(manifest, 0, str(tmp_path))
        first, second = shard_status(manifest, str(tmp_path))
        assert not first.damaged and first.complete
        assert not second.damaged and second.done == 0


def test_run_sharded_writes_manifest_and_checkpoints(tmp_path):
    cells = small_grid()[:6]
    run_sharded(cells, 2, str(tmp_path))
    assert os.path.exists(os.path.join(str(tmp_path), "manifest.json"))
    manifest = ShardManifest.load(str(tmp_path))
    assert [
        status
        for status in shard_status(manifest, str(tmp_path))
        if not status.complete
    ] == []
