"""Tests for the baseline algorithms (greedy, trial, naive, Luby)."""

import networkx as nx
import pytest

from repro.baselines.greedy import dsatur_d2_coloring, greedy_d2_coloring
from repro.baselines.luby import (
    check_distance_k_mis,
    luby_distance_k_mis,
)
from repro.baselines.naive import naive_congest_d2_color
from repro.baselines.trial import trial_d2_color
from repro.congest.policy import BandwidthPolicy
from repro.graphs.generators import random_regular
from repro.graphs.instances import petersen
from repro.verify.checker import check_d2_coloring


class TestGreedy:
    def test_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = greedy_d2_coloring(graph)
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_respects_palette_bound(self, suite_graph):
        _name, graph = suite_graph
        result = greedy_d2_coloring(graph)
        delta = max((d for _, d in graph.degree), default=0)
        assert result.colors_used <= delta * delta + 1

    def test_custom_order(self):
        graph = nx.path_graph(4)
        result = greedy_d2_coloring(graph, order=[3, 2, 1, 0])
        assert result.coloring[3] == 0

    def test_dsatur_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = dsatur_d2_coloring(graph)
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_moore_graph_needs_full_palette(self):
        graph = petersen()
        assert greedy_d2_coloring(graph).colors_used == 10
        assert dsatur_d2_coloring(graph).colors_used == 10

    def test_zero_rounds(self):
        assert greedy_d2_coloring(nx.path_graph(3)).rounds == 0


class TestTrial:
    def test_valid_and_complete_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = trial_d2_color(graph, seed=5)
        assert result.complete, name
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_larger_palette_fewer_rounds(self):
        graph = random_regular(4, 40, seed=6)
        tight = trial_d2_color(graph, seed=1, eps=0.0)
        loose = trial_d2_color(graph, seed=1, eps=1.0)
        assert loose.rounds <= tight.rounds

    def test_deterministic_given_seed(self):
        graph = random_regular(4, 20, seed=3)
        a = trial_d2_color(graph, seed=9)
        b = trial_d2_color(graph, seed=9)
        assert a.coloring == b.coloring
        assert a.rounds == b.rounds

    def test_avoid_known_variant_valid(self):
        graph = random_regular(4, 20, seed=3)
        result = trial_d2_color(graph, seed=2, avoid_known=True)
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_isolated_nodes(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        result = trial_d2_color(graph, seed=1)
        assert result.complete


class TestNaive:
    def test_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = naive_congest_d2_color(graph, seed=4)
        assert result.complete, name
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_relay_rounds_scale_with_delta_under_tight_budget(self):
        policy = BandwidthPolicy.track(beta=2, min_bits=24)
        small = naive_congest_d2_color(
            random_regular(4, 30, seed=1), seed=1, policy=policy
        )
        large = naive_congest_d2_color(
            random_regular(12, 30, seed=1), seed=1, policy=policy
        )
        assert (
            large.params["relay_rounds_per_phase"]
            > small.params["relay_rounds_per_phase"]
        )

    def test_deterministic_given_seed(self):
        graph = random_regular(4, 20, seed=2)
        a = naive_congest_d2_color(graph, seed=8)
        b = naive_congest_d2_color(graph, seed=8)
        assert a.coloring == b.coloring


class TestLuby:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_distance_k_mis_valid(self, k):
        graph = random_regular(4, 30, seed=7)
        mis, rounds, _metrics = luby_distance_k_mis(
            graph, k=k, seed=3
        )
        assert mis
        assert check_distance_k_mis(graph, mis, k)
        assert rounds > 0

    def test_rounds_grow_with_k(self):
        graph = random_regular(4, 60, seed=8)
        _, rounds1, _ = luby_distance_k_mis(graph, k=1, seed=3)
        _, rounds3, _ = luby_distance_k_mis(graph, k=3, seed=3)
        assert rounds3 > rounds1

    def test_deterministic(self):
        graph = random_regular(4, 30, seed=9)
        a, _, _ = luby_distance_k_mis(graph, k=2, seed=5)
        b, _, _ = luby_distance_k_mis(graph, k=2, seed=5)
        assert a == b

    def test_checker_rejects_bad_mis(self):
        graph = nx.path_graph(4)
        assert not check_distance_k_mis(graph, {0, 1}, 2)
        assert not check_distance_k_mis(graph, set(), 2)

    def test_path_mis(self):
        graph = nx.path_graph(7)
        mis, _, _ = luby_distance_k_mis(graph, k=2, seed=1)
        assert check_distance_k_mis(graph, mis, 2)
