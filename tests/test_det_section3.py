"""Tests for Sec. 3: decomposition, splitting (Thm 3.2), recursive
split (Lemma 3.3), (1+ε)Δ coloring (Thm 3.4), (1+ε)Δ² (Thm 1.3)."""

import networkx as nx
import pytest

from repro.det.decomposition import (
    ball_carving_decomposition,
    mpx_decomposition,
)
from repro.det.eps_coloring import eps_coloring_g
from repro.det.eps_d2coloring import eps_d2_color
from repro.det.g_coloring import (
    deg_plus_one_coloring_g,
    prime_between,
)
from repro.det.recursive_split import (
    measured_max_part_degree,
    paper_target_degree,
    recursive_split,
    split_levels,
)
from repro.det.splitting import (
    degree_threshold,
    derandomized_splitting,
    random_splitting,
    splitting_violations,
)
from repro.graphs.generators import (
    clique_clusters,
    complete_bipartite,
    gnp,
    random_regular,
)
from repro.verify.checker import check_coloring, check_d2_coloring


class TestDecomposition:
    @pytest.mark.parametrize("k", [1, 2])
    def test_ball_carving_valid(self, suite_graph, k):
        _name, graph = suite_graph
        dec = ball_carving_decomposition(graph, k=k)
        assert dec.validate(graph)

    def test_mpx_valid(self, suite_graph):
        _name, graph = suite_graph
        dec = mpx_decomposition(graph, k=2, seed=1)
        assert dec.validate(graph)

    def test_partition_covers_all_nodes(self):
        graph = gnp(40, 0.1, seed=1)
        dec = ball_carving_decomposition(graph, k=2)
        covered = set()
        for nodes in dec.members.values():
            covered.update(nodes)
        assert covered == set(graph.nodes)

    def test_radius_recorded(self):
        graph = nx.path_graph(30)
        dec = ball_carving_decomposition(graph, k=2)
        assert all(r >= 0 for r in dec.radius.values())

    def test_color_classes_partition_clusters(self):
        graph = gnp(30, 0.1, seed=2)
        dec = ball_carving_decomposition(graph, k=2)
        clusters = [
            c
            for group in dec.color_classes().values()
            for c in group
        ]
        assert sorted(clusters) == sorted(dec.members)

    def test_validate_rejects_bad_coloring(self):
        graph = nx.path_graph(6)
        dec = ball_carving_decomposition(graph, k=2)
        if dec.num_clusters > 1:
            # force all clusters to one color: separation breaks
            for c in dec.color_of_cluster:
                dec.color_of_cluster[c] = 0
            assert not dec.validate(graph)


class TestSplitting:
    def test_degree_threshold_formula(self):
        assert degree_threshold(256, 1.0) == pytest.approx(96.0)

    def test_violation_checker_vacuous_below_threshold(self):
        graph = complete_bipartite(1, 10)
        parts = {v: 0 for v in graph.nodes}
        colors = {v: 0 for v in graph.nodes}  # maximally unbalanced
        # paper threshold >> 10, so no constrained vertex
        assert (
            splitting_violations(graph, parts, colors, lam=0.5)
            == []
        )

    def test_violation_checker_catches_imbalance(self):
        graph = complete_bipartite(1, 20)
        parts = {v: 0 for v in graph.nodes}
        colors = {v: 0 for v in graph.nodes}
        violations = splitting_violations(
            graph, parts, colors, lam=0.5, threshold=10
        )
        assert (0, 0) in violations

    def test_random_splitting_whp_ok(self):
        graph = random_regular(16, 60, seed=3)
        parts = {v: 0 for v in graph.nodes}
        result = random_splitting(
            graph, parts, lam=0.9, seed=5, threshold=12
        )
        assert result.ok

    def test_derandomized_guaranteed_when_chernoff_closes(self):
        # K_{1,300}: the hub is constrained (deg 300 >= threshold);
        # the MGF estimator's initial sum is << 1, so the greedy
        # fixing is *guaranteed* to end violation-free.
        graph = complete_bipartite(1, 300)
        parts = {v: 0 for v in graph.nodes}
        result = derandomized_splitting(graph, parts, lam=0.7)
        assert result.method == "node_coins"
        assert result.ok
        assert result.charged_rounds > 0

    def test_derandomized_balances_hub(self):
        graph = complete_bipartite(1, 100)
        parts = {v: 0 for v in graph.nodes}
        result = derandomized_splitting(
            graph, parts, lam=0.2, threshold=50
        )
        leaves = [v for v in graph.nodes if graph.degree[v] == 1]
        reds = sum(result.colors[v] == 0 for v in leaves)
        assert abs(reds - 50) <= 10

    def test_derandomized_deterministic(self):
        graph = gnp(30, 0.2, seed=7)
        parts = {v: v % 2 for v in graph.nodes}
        a = derandomized_splitting(graph, parts, lam=0.5)
        b = derandomized_splitting(graph, parts, lam=0.5)
        assert a.colors == b.colors

    def test_seeded_variant_produces_valid_splitting(self):
        graph = complete_bipartite(2, 12)
        parts = {v: 0 for v in graph.nodes}
        result = derandomized_splitting(
            graph,
            parts,
            lam=0.9,
            method="seeded",
            seeded_samples=16,
        )
        assert result.ok

    def test_unknown_method_rejected(self):
        graph = nx.path_graph(4)
        with pytest.raises(ValueError):
            derandomized_splitting(
                graph, {v: 0 for v in graph.nodes}, 0.5, method="x"
            )

    def test_respects_multiple_groups(self):
        graph = complete_bipartite(2, 200)
        # hubs 0,1; leaves split into two groups
        parts = {v: (v % 2) for v in graph.nodes}
        result = derandomized_splitting(
            graph, parts, lam=0.5, threshold=40
        )
        assert result.ok


class TestRecursiveSplit:
    def test_paper_target_is_huge_at_laptop_scale(self):
        assert paper_target_degree(256, 0.5) > 1000

    def test_split_levels_formula(self):
        assert split_levels(10, 0.5, 1000) == 0
        assert split_levels(64, 0.5, 8) >= 3

    def test_levels_zero_single_part(self):
        graph = random_regular(6, 30, seed=1)
        split = recursive_split(graph, eps=0.5, levels=0)
        assert split.num_parts == 1
        assert split.max_part_degree == 6

    def test_degree_roughly_halves_per_level(self):
        graph = random_regular(12, 60, seed=2)
        split = recursive_split(
            graph, eps=0.5, levels=2, lam=0.4, threshold=3
        )
        # 12 -> ~3 per part after 2 levels; allow generous slack.
        assert split.max_part_degree <= 7
        assert len(set(split.parts.values())) >= 3

    def test_measured_degree_helper(self):
        graph = nx.cycle_graph(6)
        parts = {v: v % 2 for v in graph.nodes}
        assert measured_max_part_degree(graph, parts) == 2

    def test_random_split_variant(self):
        graph = random_regular(12, 60, seed=3)
        split = recursive_split(
            graph,
            eps=0.5,
            levels=1,
            deterministic=False,
            lam=0.4,
            threshold=3,
        )
        assert split.levels == 1
        assert split.max_part_degree <= 10


class TestEpsColoringG:
    def test_prime_between(self):
        q = prime_between(8, 16)
        assert q in (11, 13)
        with pytest.raises(ArithmeticError):
            prime_between(8, 9)

    def test_deg_plus_one_valid(self, suite_graph):
        name, graph = suite_graph
        delta = max((d for _, d in graph.degree), default=0)
        if delta == 0:
            pytest.skip("edgeless")
        result = deg_plus_one_coloring_g(graph)
        report = check_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"
        assert result.palette_size == delta + 1

    def test_eps_coloring_h0_paper_regime(self):
        graph = random_regular(6, 40, seed=4)
        result = eps_coloring_g(graph, eps=0.5)
        assert result.params["levels"] == 0
        assert check_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_eps_coloring_forced_levels_valid(self):
        graph = random_regular(10, 50, seed=5)
        result = eps_coloring_g(
            graph,
            eps=0.5,
            levels=2,
            split_lam=0.3,
            split_threshold=4,
        )
        assert check_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_edgeless(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        result = eps_coloring_g(graph, eps=0.5)
        assert result.complete


class TestTheorem13:
    def test_h0_gives_delta_sq_plus_one(self):
        graph = random_regular(5, 30, seed=6)
        result = eps_d2_color(graph, eps=0.5, levels=0)
        assert result.palette_size == 26
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, report.explain()

    def test_forced_levels_valid(self):
        graph = random_regular(8, 48, seed=7)
        result = eps_d2_color(
            graph,
            eps=1.0,
            levels=1,
            split_lam=0.3,
            split_threshold=4,
        )
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, report.explain()

    def test_valid_on_suite_h0(self, suite_graph):
        name, graph = suite_graph
        delta = max((d for _, d in graph.degree), default=0)
        if delta == 0:
            pytest.skip("edgeless")
        result = eps_d2_color(graph, eps=0.5, levels=0)
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_blocked_phase_bound_reported(self):
        graph = random_regular(6, 36, seed=8)
        result = eps_d2_color(graph, eps=0.5, levels=0)
        assert "max_blocked_phases" in result.params

    def test_paper_regime_is_h0(self):
        graph = clique_clusters(3, 6, seed=9)
        result = eps_d2_color(graph, eps=0.25)
        assert result.params["levels"] == 0
