"""The large-instance conformance tier (``slow``-marked).

Scale-ups of the corpus families to n in the thousands
(:func:`repro.workloads.build_large_corpus`), executed through the
``sweep`` backend so the registry × scenario grid fans out across a
process pool with the contract checks running inside the workers —
and through a shard manifest, which is how the weekly CI job runs the
tier.  Excluded from tier-1 (``-m "not slow"``); CI runs it weekly
and on ``workflow_dispatch``.

``"heavy"``-tagged specs (the O(log³ n) strawman) are excluded: at
these sizes their round counts put them minutes beyond everything
else without testing anything the small corpus does not.
"""

import os

import pytest

from repro import registry
from repro.conformance import build_large_corpus, run_conformance
from repro.exec import (
    SweepBackend,
    grid_cells,
    run_sharded,
)

pytestmark = pytest.mark.slow

SEED = 42

_SPECS = [
    spec for spec in registry.ALGORITHMS if "heavy" not in spec.tags
]
_CORPUS = build_large_corpus()


def _workers() -> int:
    return max(2, min(8, (os.cpu_count() or 2)))


def test_large_tier_conformance_through_sweep():
    backend = SweepBackend(
        executor="process", max_workers=_workers()
    )
    report = run_conformance(
        specs=_SPECS,
        scenarios=_CORPUS,
        seed=SEED,
        backend=backend,
    )
    assert report.ok, report.explain()
    # Every non-heavy spec must actually have run on every large
    # scenario — a silently shrinking grid is a failure, not a skip.
    expected = len(_SPECS) * len(_CORPUS)
    assert len(report.records) + len(report.skipped) == expected
    names = {r.scenario for r in report.records}
    assert names == {s.name for s in _CORPUS}


def test_large_tier_instances_are_actually_large():
    sizes = [s.graph(SEED).number_of_nodes() for s in _CORPUS]
    assert min(sizes) >= 300
    assert max(sizes) >= 2000


def test_large_tier_through_shard_manifest(tmp_path):
    """The weekly-job path: the large grid compiled to a 2-shard
    manifest must merge byte-identically to the unsharded sweep."""
    specs = [
        registry.get_algorithm(name)
        for name in ("trial", "deterministic-d2", "greedy-oracle")
    ]
    corpus = [
        s for s in _CORPUS if s.name in ("cliques64x6", "relay40x8")
    ]
    cells = grid_cells(specs=specs, scenarios=corpus, seeds=(SEED,))
    unsharded = SweepBackend(executor="serial").run_grid(cells)
    merged = run_sharded(cells, 2, str(tmp_path))
    assert merged.ok, [c.error for c in merged.failures]
    assert merged.fingerprint() == unsharded.fingerprint()


def test_large_tier_seed_determinism_across_worker_counts():
    """The same large grid at 1 vs N workers: identical reports."""
    # One scenario is enough here — the full grid already ran above;
    # this guards the parallel path itself at scale.
    scenario = [s for s in _CORPUS if s.name == "grid40x50"]
    one = run_conformance(
        specs=_SPECS,
        scenarios=scenario,
        seed=SEED,
        backend=SweepBackend(executor="serial"),
    )
    many = run_conformance(
        specs=_SPECS,
        scenarios=scenario,
        seed=SEED,
        backend=SweepBackend(
            executor="process", max_workers=_workers()
        ),
    )
    assert one.ok, one.explain()
    assert many.ok, many.explain()
    assert [
        (r.scenario, r.algorithm, r.colors_used, r.rounds, r.messages)
        for r in one.records
    ] == [
        (r.scenario, r.algorithm, r.colors_used, r.rounds, r.messages)
        for r in many.records
    ]
