"""Tests for similarity graphs (Thm 2.2) and the XOR lottery
(Lemma 2.3)."""

import networkx as nx
import pytest
from scipy import stats

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.congest.policy import BandwidthPolicy
from repro.core.constants import Constants, K_H, K_HHAT
from repro.core.sampling import LotteryMixin, filter_width
from repro.core.similarity import (
    SimilarityConfig,
    SimilarityMixin,
    SimilarityState,
)
from repro.graphs.instances import hoffman_singleton, petersen
from repro.graphs.generators import random_regular
from repro.graphs.square import common_d2_neighbors, d2_neighbors


class SimilarityProbe(SimilarityMixin, NodeProgram):
    """Builds the similarity state and returns it."""

    def run(self):
        state = yield from self.build_similarity(
            self.ctx.data["config"]
        )
        return state


def build_similarity(graph, force_exact=None, constants=None, seed=0):
    constants = constants or Constants.practical()
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=1)
    policy = BandwidthPolicy()
    config = SimilarityConfig.derive(
        n,
        delta,
        policy.budget_bits(n),
        constants,
        force_exact=force_exact,
    )
    network = Network(
        graph,
        SimilarityProbe,
        seed=seed,
        policy=policy,
        inputs={v: {"config": config} for v in graph.nodes},
    )
    run = network.run()
    return run.outputs, config


class TestExactSimilarity:
    def test_own_set_is_d2_neighborhood(self):
        graph = petersen()
        states, _config = build_similarity(graph, force_exact=True)
        for v in graph.nodes:
            assert states[v].own_set == frozenset(
                d2_neighbors(graph, v)
            )

    def test_neighbor_sets_correct(self):
        graph = random_regular(4, 16, seed=1)
        states, _config = build_similarity(graph, force_exact=True)
        for v in graph.nodes:
            for u in graph.neighbors(v):
                assert states[v].nbr_sets[u] == frozenset(
                    d2_neighbors(graph, u)
                )

    def test_no_drops_in_exact_mode(self):
        graph = random_regular(4, 16, seed=2)
        states, _config = build_similarity(graph, force_exact=True)
        assert all(s.dropped_items == 0 for s in states.values())

    def test_moore_graph_similarity_complete(self):
        # In the HS graph G² = K50 and any two nodes share 48 of the
        # 49 d2-neighbors >= (2/3)·49, so H contains every pair; the
        # Ĥ threshold (5/6)·49 ≈ 40.8 < 48 also holds.
        graph = hoffman_singleton()
        states, _config = build_similarity(graph, force_exact=True)
        for v in list(graph.nodes)[:5]:
            state = states[v]
            for u in graph.neighbors(v):
                assert state.is_h(v, u)
                assert state.is_hhat(v, u)

    def test_middle_node_knows_pair_adjacency(self):
        graph = hoffman_singleton()
        states, _config = build_similarity(graph, force_exact=True)
        w = 0
        nbrs = list(graph.neighbors(w))
        assert states[w].is_h(nbrs[0], nbrs[1])

    def test_sparse_graph_no_similarity(self):
        # On a path, d2-neighborhoods share few nodes vs the Δ²
        # threshold; H must be empty.
        graph = nx.path_graph(12)
        states, _config = build_similarity(graph, force_exact=True)
        for v in graph.nodes:
            assert states[v].h_immediate() == frozenset()

    def test_thresholds_exact_values(self):
        graph = petersen()
        _states, config = build_similarity(graph, force_exact=True)
        assert config.threshold_h == pytest.approx((1 - 1 / K_H) * 9)
        assert config.threshold_hhat == pytest.approx(
            (1 - 1 / K_HHAT) * 9
        )


class TestSampledSimilarity:
    def test_theorem_2_2_on_moore_graph(self):
        # Sampled similarity must classify the HS pairs (all truly
        # similar) as H-adjacent for most pairs.
        graph = hoffman_singleton()
        constants = Constants.practical().scaled(c10=16.0)
        states, config = build_similarity(
            graph, force_exact=False, constants=constants, seed=3
        )
        assert not config.exact
        hits = 0
        total = 0
        for v in list(graph.nodes)[:10]:
            for u in graph.neighbors(v):
                total += 1
                hits += states[v].is_h(v, u)
        assert hits / total > 0.8

    def test_sampled_rejects_dissimilar_pairs(self):
        # Two adjacent path nodes share almost no d2-neighbors.
        graph = nx.path_graph(200)
        constants = Constants.practical().scaled(c10=16.0)
        states, _config = build_similarity(
            graph, force_exact=False, constants=constants, seed=4
        )
        false_pairs = sum(
            1
            for v in graph.nodes
            for u in graph.neighbors(v)
            if states[v].is_h(v, u)
        )
        assert false_pairs == 0

    def test_sample_probability_formula(self):
        constants = Constants.practical()
        p = constants.similarity_sample_probability(256, 10)
        assert p == pytest.approx(8.0 * 8.0 / 100.0)


class TestSimilarityState:
    def test_is_h_unknown_node_false(self):
        state = SimilarityState(
            0,
            frozenset({1, 2}),
            {},
            SimilarityConfig(
                exact=True,
                sample_p=1.0,
                threshold_h=1,
                threshold_hhat=2,
                forward_rounds=1,
                own_rounds=1,
                per_message=8,
            ),
        )
        assert not state.is_h(0, 99)
        assert not state.is_h(0, 0)

    def test_cache_consistency(self):
        sets = {
            1: frozenset({10, 11, 12}),
            2: frozenset({10, 11, 13}),
        }
        state = SimilarityState(
            0,
            frozenset({10, 11, 12, 13}),
            sets,
            SimilarityConfig(
                exact=True,
                sample_p=1.0,
                threshold_h=2,
                threshold_hhat=3,
                forward_rounds=1,
                own_rounds=1,
                per_message=8,
            ),
        )
        assert state.is_h(1, 2)  # share {10, 11}
        assert state.is_h(2, 1)  # cached, symmetric
        assert not state.is_hhat(1, 2)


class LotteryProbe(LotteryMixin, SimilarityMixin, NodeProgram):
    """Draws ``count`` lottery samples after building similarity."""

    def run(self):
        similarity = yield from self.build_similarity(
            self.ctx.data["config"]
        )
        draws = []
        for _ in range(self.ctx.data["count"]):
            drawn = yield from self.lottery_round(
                similarity,
                filter_bits=self.ctx.data.get("filter_bits", 0),
            )
            draws.append(drawn)
        return {"similarity": similarity, "draws": draws}


def run_lottery(graph, count, filter_bits=0, seed=0):
    n = graph.number_of_nodes()
    delta = max((d for _, d in graph.degree), default=1)
    policy = BandwidthPolicy()
    config = SimilarityConfig.derive(
        n,
        delta,
        policy.budget_bits(n),
        Constants.practical(),
        force_exact=True,
    )
    network = Network(
        graph,
        LotteryProbe,
        seed=seed,
        policy=policy,
        inputs={
            v: {
                "config": config,
                "count": count,
                "filter_bits": filter_bits,
            }
            for v in graph.nodes
        },
    )
    return network.run().outputs


class TestLottery:
    def test_draws_are_h_neighbors(self):
        graph = petersen()
        outputs = run_lottery(graph, count=20, seed=1)
        for v in graph.nodes:
            similarity = outputs[v]["similarity"]
            for drawn in outputs[v]["draws"]:
                assert drawn is not None
                w, relay = drawn
                assert w in common_or_self(graph, v)
                # relay is a usable route: w itself or a common nbr
                if relay != w:
                    assert graph.has_edge(v, relay)
                    assert graph.has_edge(relay, w)

    def test_uniformity_chi_square(self):
        # Petersen: every node has 9 H-neighbors (G² = K10, all
        # similar).  400 draws per node; chi-square should not
        # reject uniformity.
        graph = petersen()
        outputs = run_lottery(graph, count=400, seed=2)
        for v in list(graph.nodes)[:3]:
            counts = {}
            for drawn in outputs[v]["draws"]:
                counts[drawn[0]] = counts.get(drawn[0], 0) + 1
            observed = [counts.get(u, 0) for u in graph.nodes if u != v]
            _chi, p_value = stats.chisquare(observed)
            assert p_value > 1e-4

    def test_heavy_filter_yields_none(self):
        graph = petersen()
        outputs = run_lottery(
            graph, count=5, filter_bits=60, seed=3
        )
        assert all(
            drawn is None
            for v in graph.nodes
            for drawn in outputs[v]["draws"]
        )

    def test_filter_width_formula(self):
        assert filter_width(1, 100, 4.0) == 0
        assert filter_width(100, 4, 4.0) == 0
        wide = filter_width(2**12, 2**4, 0.0)
        assert wide == 24

    def test_no_h_neighbors_returns_none(self):
        graph = nx.path_graph(10)
        outputs = run_lottery(graph, count=3, seed=4)
        assert all(
            drawn is None
            for v in graph.nodes
            for drawn in outputs[v]["draws"]
        )


def common_or_self(graph, v):
    return d2_neighbors(graph, v)
