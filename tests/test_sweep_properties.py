"""Property tests: sweep-grid execution is deterministic.

The ``sweep`` backend promises that a grid's aggregated results are a
pure function of the grid itself — never of worker count, executor
choice, or completion-order interleaving.  Hypothesis drives random
grids (random spec subsets × scenario subsets × seed sets, in random
submission order) through 1 worker and N workers and requires the
serialized results to be byte-identical.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import registry
from repro.conformance.scenarios import build_corpus
from repro.exec import SweepBackend, SweepCell

# Fast specs only: the property is about scheduling, not algorithms,
# so there is no coverage gained from slow pipelines here.
_SPEC_NAMES = (
    "trial",
    "trial-slack",
    "deterministic-d2",
    "greedy-oracle",
    "dsatur-oracle",
)
# Small scenarios only, for the same reason.
_SCENARIOS = {
    s.name: s
    for s in build_corpus()
    if s.name in ("path16", "cycle5", "gnp24", "multileaf4x5")
}


@st.composite
def sweep_grids(draw):
    spec_names = draw(
        st.lists(
            st.sampled_from(_SPEC_NAMES),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    scenario_names = draw(
        st.lists(
            st.sampled_from(sorted(_SCENARIOS)),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    cells = []
    for scenario_name in scenario_names:
        scenario = _SCENARIOS[scenario_name]
        for seed in seeds:
            graph = scenario.graph(seed)
            for spec_name in spec_names:
                spec = registry.get_algorithm(spec_name)
                if not spec.applicable(graph):
                    continue
                cells.append(
                    SweepCell.from_graph(
                        spec_name, scenario_name, seed, graph
                    )
                )
    # Submission order is part of the grid identity — shuffle it so
    # the property covers arbitrary orders, not just corpus order.
    return draw(st.permutations(cells))


@given(cells=sweep_grids())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_one_worker_and_many_workers_byte_identical(cells):
    one = SweepBackend(executor="thread", max_workers=1).run_grid(
        cells
    )
    many = SweepBackend(executor="thread", max_workers=4).run_grid(
        cells
    )
    assert one.fingerprint() == many.fingerprint()
    assert (
        one.aggregate_metrics() == many.aggregate_metrics()
    )


@given(cells=sweep_grids())
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_serial_loop_matches_thread_pool(cells):
    serial = SweepBackend(executor="serial").run_grid(cells)
    threaded = SweepBackend(executor="thread", max_workers=3).run_grid(
        cells
    )
    assert serial.fingerprint() == threaded.fingerprint()


def test_process_pool_matches_serial_once():
    """One (non-hypothesis) example through a real process pool: the
    worker-side registry lookup, cell pickling, and submission-order
    collection must behave exactly like the in-process loop."""
    cells = []
    for name, scenario in sorted(_SCENARIOS.items()):
        graph = scenario.graph(3)
        for spec_name in ("trial", "greedy-oracle"):
            cells.append(
                SweepCell.from_graph(spec_name, name, 3, graph)
            )
    serial = SweepBackend(executor="serial").run_grid(cells)
    pooled = SweepBackend(executor="process", max_workers=4).run_grid(
        cells
    )
    assert serial.fingerprint() == pooled.fingerprint()
    assert pooled.ok, [c.error for c in pooled.failures]
