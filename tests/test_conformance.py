"""Registry × scenario-corpus conformance tests.

Every registered algorithm runs on every applicable corpus scenario
and must satisfy the shared contract (checker-valid, complete, within
its palette bound, bandwidth-metered) plus seeded determinism: the
same seed always reproduces the identical coloring.
"""

from __future__ import annotations

import pytest

from repro.congest.policy import BandwidthPolicy
from repro.conformance import (
    build_corpus,
    coloring_fingerprint,
    run_conformance,
)
from repro.conformance.runner import ConformanceRecord, _check_record
from repro.registry import ALGORITHMS, get_algorithm, graph_delta

CORPUS = build_corpus()
CORPUS_IDS = [scenario.name for scenario in CORPUS]
SPEC_IDS = [spec.name for spec in ALGORITHMS]

SEED = 11


def scenario_named(name):
    return next(s for s in CORPUS if s.name == name)


@pytest.fixture(params=CORPUS, ids=CORPUS_IDS, scope="module")
def scenario(request):
    return request.param


@pytest.fixture(params=ALGORITHMS, ids=SPEC_IDS, scope="module")
def spec(request):
    return request.param


@pytest.mark.conformance
class TestRegistryShape:
    def test_at_least_eight_specs(self):
        assert len(ALGORITHMS) >= 8

    def test_names_unique(self):
        names = [spec.name for spec in ALGORITHMS]
        assert len(names) == len(set(names))

    def test_lookup_round_trips(self):
        for spec in ALGORITHMS:
            assert get_algorithm(spec.name) is spec

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="improved-d2color"):
            get_algorithm("definitely-not-registered")

    def test_kinds_cover_all_three(self):
        kinds = {spec.kind for spec in ALGORITHMS}
        assert kinds == {"randomized", "deterministic", "baseline"}

    def test_corpus_is_large_enough(self):
        # Acceptance: every spec meets >= 10 applicable scenarios.
        assert len(CORPUS) >= 10
        for spec in ALGORITHMS:
            applicable = [
                s for s in CORPUS if spec.applicable(s.graph(SEED))
            ]
            assert len(applicable) >= 10, spec.name


@pytest.mark.conformance
class TestContract:
    """The full matrix: one test per (algorithm, scenario) pair."""

    def test_spec_on_scenario(self, spec, scenario):
        graph = scenario.graph(SEED)
        if not spec.applicable(graph):
            pytest.skip(f"{spec.name} does not support {scenario.name}")
        policy = BandwidthPolicy()
        result = spec.run(graph, seed=SEED, policy=policy)
        record = ConformanceRecord(scenario.name, spec.name)
        _check_record(
            record,
            spec,
            graph,
            result,
            policy,
            check_repeatability=False,
            seed=SEED,
        )
        assert record.ok, "; ".join(record.failures)

    def test_palette_bound_matches_result_palette(self, spec, scenario):
        """The registry's declared bound covers the palette the
        algorithm actually allocated (no silent over-allocation)."""
        graph = scenario.graph(SEED)
        if not spec.applicable(graph):
            pytest.skip(f"{spec.name} does not support {scenario.name}")
        result = spec.run(graph, seed=SEED)
        assert result.palette_size <= spec.bound_for(graph)


@pytest.mark.conformance
class TestSeededDeterminism:
    def test_same_seed_identical_coloring(self, spec):
        graph = scenario_named("rr4_24").graph(SEED)
        first = spec.run(graph, seed=SEED)
        second = spec.run(graph, seed=SEED)
        assert coloring_fingerprint(first) == coloring_fingerprint(
            second
        )

    def test_seed_insensitive_specs_ignore_seed(self, spec):
        if spec.seed_sensitive:
            pytest.skip("spec is legitimately seeded")
        graph = scenario_named("rr4_24").graph(SEED)
        first = spec.run(graph, seed=1)
        second = spec.run(graph, seed=2)
        assert coloring_fingerprint(first) == coloring_fingerprint(
            second
        )


@pytest.mark.conformance
class TestDifferentialSweep:
    @pytest.mark.slow
    def test_full_sweep_passes(self):
        report = run_conformance(seed=SEED)
        assert report.ok, report.explain()
        # Nothing was silently skipped: the built-in specs support
        # the whole corpus.
        assert not report.skipped
        assert len(report.records) == len(ALGORITHMS) * len(CORPUS)

    def test_sweep_detects_palette_cheating(self):
        """A spec whose bound lies must be flagged by the runner."""
        from dataclasses import replace

        cheat = replace(
            get_algorithm("trial-slack"),
            name="trial-cheat",
            palette_bound=lambda delta: delta * delta + 1,
        )
        report = run_conformance(
            specs=[cheat],
            scenarios=[s for s in CORPUS if s.name == "gnp24"],
            seed=3,
        )
        # trial-slack draws from a 2Δ² palette, so with the tighter
        # claimed bound the sweep must report an out-of-palette
        # failure rather than pass vacuously.
        assert not report.ok

    def test_sweep_reports_exceptions_as_failures(self):
        from dataclasses import replace

        def explode(graph, seed, policy):
            raise RuntimeError("boom")

        broken = replace(
            get_algorithm("greedy-oracle"),
            name="broken",
            entry_point=explode,
        )
        report = run_conformance(
            specs=[broken], scenarios=CORPUS[:1], seed=0
        )
        assert not report.ok
        assert "boom" in report.explain()

    def test_summary_renders_every_record(self):
        report = run_conformance(
            specs=[get_algorithm("greedy-oracle")],
            scenarios=CORPUS[:3],
            seed=0,
        )
        rendered = report.summary()
        for record in report.records:
            assert record.scenario in rendered

    def test_adhoc_spec_caught_on_sweep_path_too(self):
        """An unregistered (ad-hoc) spec must work — and still be
        caught lying — when the matrix runs through the sweep
        backend's worker pool, not only on the serial path."""
        from dataclasses import replace

        from repro.exec import SweepBackend

        cheat = replace(
            get_algorithm("trial-slack"),
            name="trial-cheat",
            palette_bound=lambda delta: delta * delta + 1,
        )
        scenarios = [s for s in CORPUS if s.name == "gnp24"]
        serial = run_conformance(
            specs=[cheat], scenarios=scenarios, seed=3
        )
        swept = run_conformance(
            specs=[cheat],
            scenarios=scenarios,
            seed=3,
            backend=SweepBackend(executor="thread", max_workers=4),
        )
        assert not serial.ok
        assert not swept.ok
        assert [sorted(r.failures) for r in serial.records] == [
            sorted(r.failures) for r in swept.records
        ]
