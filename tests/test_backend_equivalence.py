"""Cross-backend equivalence: reference vs fastpath/vectorized,
full registry.

The execution backends promise *identical semantics*: for every
registered algorithm on every conformance scenario with the same
seed, ``reference``, ``fastpath``, and ``vectorized`` must produce
the same coloring, the same round count, and — under a metered
policy — bit-identical bandwidth metrics.  This suite is what lets
every other layer treat ``backend=`` as a pure performance knob.
(``vectorized`` covers both its kernels — trial, Luby — and its
fastpath fallback for every other spec.)
"""

import pytest

from repro import registry
from repro.conformance.scenarios import build_corpus, corpus_names
from repro.congest.policy import BandwidthPolicy

SEED = 7

_CORPUS = build_corpus()
_SPECS = list(registry.ALGORITHMS)
_FAST_BACKENDS = ["fastpath", "vectorized"]


def _metrics_tuple(metrics):
    return (
        metrics.rounds,
        metrics.total_messages,
        metrics.total_bits,
        metrics.max_message_bits,
        metrics.budget_bits,
        metrics.violations,
        metrics.worst_violation_bits,
    )


@pytest.mark.conformance
@pytest.mark.parametrize("backend", _FAST_BACKENDS)
@pytest.mark.parametrize(
    "scenario", _CORPUS, ids=corpus_names(_CORPUS)
)
@pytest.mark.parametrize(
    "spec", _SPECS, ids=[s.name for s in _SPECS]
)
def test_reference_fastpath_equivalent(spec, scenario, backend):
    """Same outputs, rounds, and metered metrics on both backends."""
    graph = scenario.graph(SEED)
    if not spec.applicable(graph):
        pytest.skip(f"{spec.name} does not support {scenario.name}")
    policy = BandwidthPolicy.track()

    reference = spec.run(
        graph, seed=SEED, policy=policy, backend="reference"
    )
    fast = spec.run(graph, seed=SEED, policy=policy, backend=backend)

    assert reference.coloring == fast.coloring
    assert reference.rounds == fast.rounds
    assert reference.colors_used == fast.colors_used
    assert reference.palette_size == fast.palette_size
    if spec.distributed:
        # TRACK is a metered policy: the fast path must meter
        # everything the reference meters, bit for bit.
        assert _metrics_tuple(reference.metrics) == _metrics_tuple(
            fast.metrics
        )


@pytest.mark.parametrize("backend", _FAST_BACKENDS)
@pytest.mark.parametrize(
    "spec",
    [s for s in _SPECS if s.distributed],
    ids=[s.name for s in _SPECS if s.distributed],
)
def test_unbounded_outputs_and_rounds_agree(spec, backend):
    """Under UNBOUNDED policies fastpath and vectorized skip message
    *sizing* but must still agree on everything observable: coloring,
    rounds, and message counts."""
    scenario = _CORPUS[0]
    graph = scenario.graph(SEED)
    if not spec.applicable(graph):
        pytest.skip(f"{spec.name} does not support {scenario.name}")
    policy = BandwidthPolicy.unbounded()

    reference = spec.run(
        graph, seed=SEED, policy=policy, backend="reference"
    )
    fast = spec.run(graph, seed=SEED, policy=policy, backend=backend)

    assert reference.coloring == fast.coloring
    assert reference.rounds == fast.rounds
    assert (
        reference.metrics.total_messages
        == fast.metrics.total_messages
    )
    assert fast.metrics.violations == 0
