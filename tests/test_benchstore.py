"""The append-only bench result store and its trajectory gate.

``BENCH_<name>.json`` is a per-commit trajectory (schema 2): entries
append across commits, re-runs on one commit replace in place, legacy
overwrite-style files migrate losslessly, and ``check_trajectory``
flags >N× slowdowns of any ``*seconds*`` metric between the last two
entries — the CI regression gate.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.benchstore import (
    MIN_GATED_SECONDS,
    SCHEMA_VERSION,
    append_entry,
    check_results_dir,
    check_trajectory,
    load_payload,
    main as benchstore_main,
)


def _metrics(seconds, cells=12):
    return {"cells": cells, "sweep_wall_seconds": seconds}


class TestAppendOnlyStore:
    def test_entries_append_across_commits(self, tmp_path):
        for k, commit in enumerate(("aaa111", "bbb222", "ccc333")):
            path = append_entry(
                tmp_path,
                "demo",
                _metrics(0.1 * (k + 1)),
                commit=commit,
                timestamp=f"2026-08-0{k + 1}T00:00:00Z",
            )
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["bench"] == "demo"
        assert [e["commit"] for e in payload["entries"]] == [
            "aaa111",
            "bbb222",
            "ccc333",
        ]

    def test_same_commit_replaces_instead_of_stacking(self, tmp_path):
        append_entry(tmp_path, "demo", _metrics(0.1), commit="aaa")
        append_entry(tmp_path, "demo", _metrics(0.2), commit="bbb")
        path = append_entry(
            tmp_path, "demo", _metrics(0.3), commit="bbb"
        )
        entries = json.loads(path.read_text())["entries"]
        assert [e["commit"] for e in entries] == ["aaa", "bbb"]
        assert (
            entries[-1]["metrics"]["sweep_wall_seconds"] == 0.3
        )

    def test_legacy_overwrite_file_migrates_as_first_entry(
        self, tmp_path
    ):
        legacy = tmp_path / "BENCH_demo.json"
        legacy.write_text(json.dumps(_metrics(0.5)))
        path = append_entry(
            tmp_path, "demo", _metrics(0.6), commit="new"
        )
        entries = json.loads(path.read_text())["entries"]
        assert [e["commit"] for e in entries] == [
            "pre-schema",
            "new",
        ]
        assert (
            entries[0]["metrics"]["sweep_wall_seconds"] == 0.5
        )

    def test_max_entries_caps_the_trajectory(self, tmp_path):
        for k in range(7):
            path = append_entry(
                tmp_path,
                "demo",
                _metrics(0.1),
                commit=f"c{k}",
                max_entries=4,
            )
        entries = json.loads(path.read_text())["entries"]
        assert [e["commit"] for e in entries] == [
            "c3",
            "c4",
            "c5",
            "c6",
        ]

    def test_torn_file_does_not_poison_appends(self, tmp_path):
        torn = tmp_path / "BENCH_demo.json"
        torn.write_text('{"schema": 2, "entr')
        path = append_entry(
            tmp_path, "demo", _metrics(0.1), commit="aaa"
        )
        entries = json.loads(path.read_text())["entries"]
        assert [e["commit"] for e in entries] == ["aaa"]


class TestTrajectoryGate:
    def _payload(self, *seconds):
        return {
            "schema": SCHEMA_VERSION,
            "bench": "demo",
            "entries": [
                {
                    "commit": f"c{k}",
                    "timestamp": None,
                    "metrics": _metrics(s),
                }
                for k, s in enumerate(seconds)
            ],
        }

    def test_single_entry_is_ungated(self):
        assert check_trajectory(self._payload(0.5)) == []

    def test_within_budget_passes(self):
        assert check_trajectory(self._payload(0.10, 0.19)) == []

    def test_over_2x_slowdown_is_flagged(self):
        violations = check_trajectory(self._payload(0.10, 0.21))
        assert len(violations) == 1
        key, before, after, ratio = violations[0]
        assert key == "sweep_wall_seconds"
        assert (before, after) == (0.10, 0.21)
        assert ratio == pytest.approx(2.1)

    def test_only_last_two_entries_are_compared(self):
        # Slow history further back must not trip the gate.
        assert check_trajectory(self._payload(9.0, 0.1, 0.15)) == []

    def test_timer_noise_below_floor_is_ignored(self):
        tiny = MIN_GATED_SECONDS / 10
        assert (
            check_trajectory(self._payload(tiny, tiny * 8)) == []
        )

    def test_nested_seconds_metrics_are_gated(self):
        payload = {
            "schema": SCHEMA_VERSION,
            "bench": "demo",
            "entries": [
                {
                    "commit": "a",
                    "metrics": {
                        "fleet": {"wall_seconds": 0.1},
                        "cells": 9,
                    },
                },
                {
                    "commit": "b",
                    "metrics": {
                        "fleet": {"wall_seconds": 0.5},
                        "cells": 9,
                    },
                },
            ],
        }
        violations = check_trajectory(payload)
        assert [v[0] for v in violations] == ["fleet.wall_seconds"]

    def test_non_seconds_metrics_never_gate(self):
        payload = self._payload(0.1, 0.1)
        for entry, cells in zip(payload["entries"], (10, 100)):
            entry["metrics"]["cells"] = cells
        assert check_trajectory(payload) == []


class TestDirGateAndCLI:
    def test_check_results_dir_aggregates_failures(self, tmp_path):
        append_entry(tmp_path, "ok", _metrics(0.1), commit="a")
        append_entry(tmp_path, "ok", _metrics(0.15), commit="b")
        append_entry(tmp_path, "bad", _metrics(0.1), commit="a")
        append_entry(tmp_path, "bad", _metrics(0.9), commit="b")
        failures = check_results_dir(tmp_path)
        assert list(failures) == ["bad"]

    def test_cli_check_exit_codes(self, tmp_path, capsys):
        append_entry(tmp_path, "demo", _metrics(0.1), commit="a")
        assert benchstore_main(["check", str(tmp_path)]) == 0
        append_entry(tmp_path, "demo", _metrics(0.9), commit="b")
        assert benchstore_main(["check", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert (
            benchstore_main(
                ["check", str(tmp_path), "--max-ratio", "20"]
            )
            == 0
        )

    def test_cli_show_prints_trajectories(self, tmp_path, capsys):
        append_entry(tmp_path, "demo", _metrics(0.1), commit="a")
        assert benchstore_main(["show", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "demo: 1 entries" in out
        assert "sweep_wall_seconds" in out

    def test_load_payload_roundtrip_through_write(self, tmp_path):
        path = append_entry(
            tmp_path, "demo", _metrics(0.1), commit="a"
        )
        payload = load_payload(path, "demo")
        assert payload["entries"][0]["metrics"] == _metrics(0.1)


class TestRssGate:
    """The memory half of the trajectory gate: ``*rss_mb*`` metrics
    are flagged on >max-ratio growth above the MiB noise floor; obs
    payloads ride along ungated."""

    def _payload(self, *rss):
        return {
            "schema": SCHEMA_VERSION,
            "bench": "demo",
            "entries": [
                {
                    "commit": f"c{k}",
                    "timestamp": None,
                    "metrics": {"peak_rss_mb": mb},
                }
                for k, mb in enumerate(rss)
            ],
        }

    def test_over_2x_rss_growth_is_flagged(self):
        violations = check_trajectory(self._payload(100.0, 210.0))
        assert len(violations) == 1
        key, before, after, ratio = violations[0]
        assert key == "peak_rss_mb"
        assert (before, after) == (100.0, 210.0)
        assert ratio == pytest.approx(2.1)

    def test_within_budget_passes(self):
        assert check_trajectory(self._payload(100.0, 199.0)) == []

    def test_below_the_mib_floor_is_noise(self):
        # 20 -> 60 MiB is a 3x ratio but both sit under the 64 MiB
        # interpreter-baseline floor.
        assert check_trajectory(self._payload(20.0, 60.0)) == []
        assert check_trajectory(
            self._payload(20.0, 60.0), min_mb=10.0
        ) != []

    def test_nested_rss_metrics_are_gated(self):
        payload = self._payload(0.0, 0.0)
        payload["entries"][0]["metrics"] = {
            "phases": {"build_peak_rss_mb": 100.0}
        }
        payload["entries"][1]["metrics"] = {
            "phases": {"build_peak_rss_mb": 300.0}
        }
        violations = check_trajectory(payload)
        assert [v[0] for v in violations] == [
            "phases.build_peak_rss_mb"
        ]

    def test_cli_reports_rss_regressions_in_mb(self, tmp_path, capsys):
        append_entry(
            tmp_path, "demo", {"peak_rss_mb": 100.0}, commit="a"
        )
        append_entry(
            tmp_path, "demo", {"peak_rss_mb": 500.0}, commit="b"
        )
        assert benchstore_main(["check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION demo.peak_rss_mb" in out
        assert "MB" in out
        # A generous --min-mb floor waves the same growth through.
        assert (
            benchstore_main(
                ["check", str(tmp_path), "--min-mb", "1000"]
            )
            == 0
        )


class TestObsPayload:
    def test_obs_payload_is_stored_and_never_gated(self, tmp_path):
        obs = {"counters": {"cache.hits": 3}, "gauges": {}}
        append_entry(
            tmp_path,
            "demo",
            {"sweep_wall_seconds": 0.1},
            commit="a",
            obs=obs,
        )
        append_entry(
            tmp_path,
            "demo",
            {"sweep_wall_seconds": 0.1},
            commit="b",
            obs={"counters": {"cache.hits": 10 ** 6}},
        )
        payload = load_payload(
            tmp_path / "BENCH_demo.json", "demo"
        )
        assert payload["entries"][0]["obs"] == obs
        # A 10^6x counter jump in obs is invisible to the gate.
        assert check_trajectory(payload) == []

    def test_entries_without_obs_have_no_obs_key(self, tmp_path):
        append_entry(
            tmp_path, "demo", {"sweep_wall_seconds": 0.1}, commit="a"
        )
        payload = load_payload(
            tmp_path / "BENCH_demo.json", "demo"
        )
        assert "obs" not in payload["entries"][0]
