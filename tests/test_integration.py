"""Integration matrix: every algorithm × every suite instance.

The single most important invariant of the whole repository: every
algorithm, on every workload, produces a *complete, valid* d2-coloring
within its declared palette — checked by the independent BFS checker.
"""

import pytest

from repro.baselines.greedy import dsatur_d2_coloring, greedy_d2_coloring
from repro.baselines.naive import naive_congest_d2_color
from repro.baselines.trial import trial_d2_color
from repro.core.d2color import basic_d2_color, improved_d2_color
from repro.det.det_d2color import deterministic_d2_color
from repro.det.eps_d2coloring import eps_d2_color
from repro.graphs.instances import moore_graph
from repro.verify.checker import check_d2_coloring

ALGORITHMS = {
    "greedy": lambda g: greedy_d2_coloring(g),
    "dsatur": lambda g: dsatur_d2_coloring(g),
    "trial": lambda g: trial_d2_color(g, seed=1),
    "naive": lambda g: naive_congest_d2_color(g, seed=1),
    "det-1.2": lambda g: deterministic_d2_color(g),
    "eps-1.3": lambda g: eps_d2_color(g, eps=0.5),
    "basic-2.1": lambda g: basic_d2_color(g, seed=1),
    "improved-1.1": lambda g: improved_d2_color(g, seed=1),
}


@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
def test_algorithm_valid_on_suite(algo_name, suite_graph):
    instance_name, graph = suite_graph
    result = ALGORITHMS[algo_name](graph)
    assert result.complete, f"{algo_name} on {instance_name}"
    report = check_d2_coloring(
        graph, result.coloring, result.palette_size
    )
    assert report.valid, (
        f"{algo_name} on {instance_name}: {report.explain()}"
    )


@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("delta", [2, 3])
def test_moore_graphs_force_full_palette(algo_name, delta):
    """On a diameter-2 Moore graph, G² is complete: any valid
    d2-coloring uses exactly n = Δ²+1 colors, for every algorithm."""
    graph = moore_graph(delta)
    result = ALGORITHMS[algo_name](graph)
    assert result.colors_used == delta * delta + 1


@pytest.mark.parametrize(
    "algo_name", ["improved-1.1", "basic-2.1", "trial", "naive"]
)
def test_randomized_algorithms_are_seeded_functions(
    algo_name, suite
):
    """Two runs with the same seed are byte-identical."""
    graph = suite["rr4_20"]
    first = ALGORITHMS[algo_name](graph)
    second = ALGORITHMS[algo_name](graph)
    assert first.coloring == second.coloring
    assert first.rounds == second.rounds


def test_distributed_never_beats_palette_oracle(suite):
    """Sanity relation: the distributed Δ²+1 algorithms never use
    more colors than their palette allows, and the centralized greedy
    is within the same palette — the bound the paper's palette size
    is built on."""
    graph = suite["gnp30"]
    delta = max(d for _, d in graph.degree)
    for algo_name in ("greedy", "det-1.2", "improved-1.1"):
        result = ALGORITHMS[algo_name](graph)
        assert result.colors_used <= delta * delta + 1
