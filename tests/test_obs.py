"""The observability layer: tracing, metrics, reports, and the
determinism guard.

The load-bearing contract is the guard in
:class:`TestTracingNeverPerturbs`: sweep fingerprints and instance
digests must be byte-identical whether tracing is absent (the
zero-overhead default), explicitly nulled, or live — tracing
*observes* runs, it never participates in them.  The rest pins the
trace schema (span nesting, torn-line-tolerant reads, validation),
the registry's merge semantics (counters add, gauges max, timers
combine), the publish hooks on :class:`RunMetrics` /
:class:`CacheStats`, the cache-stats plumbing through sweeps and
shard merges, and the ``python -m repro.obs`` report CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import registry as algo_registry
from repro.congest.metrics import RunMetrics
from repro.exec import (
    ShardManifest,
    SweepBackend,
    compile_manifest,
    grid_cells,
    merge_shards,
    run_shard,
)
from repro.exec.shards import stats_path
from repro.obs import (
    MetricsRegistry,
    NULL_SPAN,
    NullRecorder,
    TraceRecorder,
    disable,
    enable,
    iter_spans,
    merge_snapshots,
    read_trace,
    recorder,
    registry,
    sample_peak_rss,
    span,
    trace_file_path,
    tracing_active,
    use_recorder,
    validate_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.workloads import get_workload, instance_cache
from repro.workloads.cache import CacheStats

SEED = 17

_SPECS = [
    algo_registry.get_algorithm(name)
    for name in ("trial", "greedy-oracle")
]
_WORKLOADS = [get_workload(name) for name in ("cycle5", "gnp24")]


def small_grid():
    return grid_cells(
        specs=_SPECS, scenarios=_WORKLOADS, seeds=(SEED, SEED + 1)
    )


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing off; the global
    registry is cleared so counter assertions are hermetic."""
    disable()
    registry().clear()
    yield
    disable()
    registry().clear()


# ----------------------------------------------------------------------
# the zero-overhead default


class TestNoOpDefault:
    def test_no_recorder_is_the_default(self):
        assert recorder() is None
        assert not tracing_active()

    def test_span_off_returns_the_shared_null_span(self):
        assert span("x", a=1) is NULL_SPAN
        assert span("y") is NULL_SPAN  # no per-call allocation
        with span("z") as sp:
            assert sp.annotate(rounds=3) is sp

    def test_null_recorder_is_installed_but_inactive(self):
        with use_recorder(NullRecorder()):
            assert recorder() is not None
            assert not tracing_active()
            with span("x") as sp:
                sp.annotate(a=1)  # all silently dropped

    def test_use_recorder_restores_the_previous_one(self, tmp_path):
        rec = TraceRecorder(str(tmp_path / "t.jsonl"))
        with use_recorder(rec):
            assert tracing_active()
            with use_recorder(None):
                assert recorder() is None
            assert recorder() is rec
        assert recorder() is None
        rec.close()


# ----------------------------------------------------------------------
# the trace recorder


class TestTraceRecorder:
    def _trace(self, tmp_path, body):
        path = str(tmp_path / "t.jsonl")
        rec = TraceRecorder(path, worker="w0")
        with use_recorder(rec):
            body(rec)
        rec.close()
        return read_trace(path)

    def test_meta_record_comes_first(self, tmp_path):
        records = self._trace(tmp_path, lambda rec: None)
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == 1
        assert records[0]["worker"] == "w0"

    def test_nested_spans_carry_parent_ids(self, tmp_path):
        def body(rec):
            with span("outer", cells=2):
                with span("inner"):
                    pass

        records = self._trace(tmp_path, body)
        assert validate_trace(records) == []
        begins = {
            r["name"]: r
            for r in records
            if r["kind"] == "span" and r["phase"] == "B"
        }
        assert "parent" not in begins["outer"]
        assert begins["inner"]["parent"] == begins["outer"]["id"]
        assert begins["outer"]["attrs"] == {"cells": 2}

    def test_annotations_land_on_the_end_record(self, tmp_path):
        def body(rec):
            with span("run") as sp:
                sp.annotate(rounds=7, halted=True)

        records = self._trace(tmp_path, body)
        (end,) = [r for r in iter_spans(records) if r["phase"] == "E"]
        assert end["attrs"] == {"rounds": 7, "halted": True}
        assert end["dur"] >= 0.0

    def test_exceptions_are_recorded_not_swallowed(self, tmp_path):
        def body(rec):
            with pytest.raises(RuntimeError):
                with span("run"):
                    raise RuntimeError("boom")

        records = self._trace(tmp_path, body)
        assert validate_trace(records) == []
        (end,) = list(iter_spans(records))
        assert end["attrs"]["error"] == "RuntimeError"

    def test_complete_spans_nest_under_the_open_span(self, tmp_path):
        def body(rec):
            with span("outer"):
                t0 = rec.clock()
                rec.complete("leaf", t0, {"n": 5})

        records = self._trace(tmp_path, body)
        assert validate_trace(records) == []
        (leaf,) = [r for r in records if r.get("name") == "leaf"]
        outer_b = next(
            r
            for r in records
            if r.get("name") == "outer" and r["phase"] == "B"
        )
        assert leaf["phase"] == "X"
        assert leaf["parent"] == outer_b["id"]
        assert leaf["attrs"] == {"n": 5}

    def test_events_and_metrics_records(self, tmp_path):
        def body(rec):
            rec.event("fleet.claim", {"shard": 0})
            rec.metrics({"counters": {"cache.hits": 3}})

        records = self._trace(tmp_path, body)
        assert validate_trace(records) == []
        kinds = [r["kind"] for r in records]
        assert kinds == ["meta", "event", "metrics"]

    def test_trace_file_path_is_unique_per_worker(self, tmp_path):
        a = trace_file_path(str(tmp_path), worker="w-1")
        b = trace_file_path(str(tmp_path), worker="w/2")
        assert a != b
        assert a.endswith(".jsonl") and b.endswith(".jsonl")
        assert "/" not in b.rsplit("trace-", 1)[1]

    def test_enable_into_a_directory(self, tmp_path):
        rec = enable(str(tmp_path), worker="w3")
        try:
            span("x").__enter__().__exit__(None, None, None)
        finally:
            disable()
        records = read_trace(str(tmp_path))
        assert validate_trace(records) == []
        assert any(r.get("name") == "x" for r in records)


# ----------------------------------------------------------------------
# reading and validating


class TestReadAndValidate:
    def _write(self, path, text):
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = self._write(
            tmp_path / "t.jsonl",
            '{"kind":"event","name":"a","t":1.0}\n'
            '{"kind":"event","na',  # the killed-mid-write tail
        )
        records = read_trace(path)
        assert [r["name"] for r in records] == ["a"]
        # strict mode still tolerates the torn tail...
        assert len(read_trace(path, strict=True)) == 1

    def test_strict_mode_raises_on_interior_damage(self, tmp_path):
        path = self._write(
            tmp_path / "t.jsonl",
            '{"kind":"event","name":"a","t":1.0}\n'
            "garbage line\n"
            '{"kind":"event","name":"b","t":2.0}\n',
        )
        assert [r["name"] for r in read_trace(path)] == ["a", "b"]
        with pytest.raises(ValueError, match="damaged trace line 2"):
            read_trace(path, strict=True)

    def test_validate_flags_schema_problems(self):
        problems = validate_trace(
            [
                {"kind": "wat"},
                {"kind": "span", "phase": "Q", "name": "x", "t": 1.0},
                {
                    "kind": "span",
                    "phase": "E",
                    "id": 9,
                    "name": "x",
                    "t": 1.0,
                    "dur": 0.1,
                },
                {"kind": "event", "t": 1.0},
            ]
        )
        assert any("unknown kind" in p for p in problems)
        assert any("bad span phase" in p for p in problems)
        assert any("without a matching B" in p for p in problems)
        assert any("without a name" in p for p in problems)

    def test_validate_flags_unclosed_spans(self):
        problems = validate_trace(
            [
                {
                    "kind": "span",
                    "phase": "B",
                    "id": 1,
                    "name": "x",
                    "t": 1.0,
                }
            ]
        )
        assert problems == ["span 1 ('x') opened but never closed"]

    def test_directory_reads_merge_all_worker_files(self, tmp_path):
        for worker in ("a", "b"):
            rec = TraceRecorder(
                trace_file_path(str(tmp_path), worker=worker),
                worker=worker,
            )
            rec.event(f"from-{worker}")
            rec.close()
        records = read_trace(str(tmp_path))
        names = {r["name"] for r in records if r["kind"] == "event"}
        assert names == {"from-a", "from-b"}
        assert validate_trace(records) == []


# ----------------------------------------------------------------------
# the determinism guard: tracing never perturbs results


class TestTracingNeverPerturbs:
    def _run(self):
        cache = instance_cache()
        cache.clear()
        sweep = SweepBackend(executor="serial").run_grid(small_grid())
        digests = tuple(
            cache.get(w.name, s).digest()
            for w in _WORKLOADS
            for s in (SEED, SEED + 1)
        )
        return sweep, digests

    def test_fingerprints_identical_off_null_and_live(self, tmp_path):
        plain_sweep, plain_digests = self._run()

        with use_recorder(NullRecorder()):
            null_sweep, null_digests = self._run()

        rec = TraceRecorder(str(tmp_path / "t.jsonl"))
        with use_recorder(rec):
            live_sweep, live_digests = self._run()
        rec.close()

        assert null_sweep.fingerprint() == plain_sweep.fingerprint()
        assert live_sweep.fingerprint() == plain_sweep.fingerprint()
        assert null_digests == plain_digests
        assert live_digests == plain_digests
        assert repr(live_sweep.aggregate_metrics()) == repr(
            plain_sweep.aggregate_metrics()
        )
        # ... and the live run actually produced a valid trace with
        # the sweep/exec span taxonomy in it.
        records = read_trace(str(tmp_path / "t.jsonl"))
        assert validate_trace(records) == []
        names = {r.get("name") for r in iter_spans(records)}
        assert {"sweep.grid", "sweep.prebuild", "sweep.cell"} <= names
        assert "exec.run" in names or "exec.kernel" in names


# ----------------------------------------------------------------------
# the metrics registry


class TestMetricsRegistry:
    def test_instruments_accumulate(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.0)
        reg.gauge("g").set_max(1.0)  # below the high-water mark
        reg.timer("t").observe(0.5)
        with reg.timer("t").time():
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["max"] == 0.5
        assert len(reg) == 3

    def test_a_name_is_one_kind_only(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.timer("x")

    def test_merge_semantics(self):
        a = {
            "counters": {"c": 2},
            "gauges": {"g": 700.0},
            "timers": {"t": {"count": 1, "total": 1.0, "max": 1.0}},
        }
        b = {
            "counters": {"c": 3, "d": 1},
            "gauges": {"g": 500.0},
            "timers": {"t": {"count": 2, "total": 0.5, "max": 0.4}},
        }
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"c": 5, "d": 1}
        assert merged["gauges"] == {"g": 700.0}  # max, not sum
        assert merged["timers"]["t"] == {
            "count": 3,
            "total": 1.5,
            "max": 1.0,
        }

    def test_snapshot_is_json_ready_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.z").inc()
        reg.counter("a.y").inc()
        snap = json.loads(json.dumps(reg.snapshot()))
        assert list(snap["counters"]) == ["a.y", "b.z"]

    def test_sample_peak_rss_records_a_gauge(self):
        reg = MetricsRegistry()
        value = sample_peak_rss(target=reg)
        snap = reg.snapshot()
        assert snap["gauges"]["process.peak_rss_mb"] == value
        assert value > 0.0  # linux container has getrusage


# ----------------------------------------------------------------------
# the publish hooks


class TestPublishHooks:
    def test_run_metrics_publish(self):
        reg = MetricsRegistry()
        metrics = RunMetrics(
            rounds=3,
            total_messages=10,
            total_bits=80,
            max_message_bits=8,
            violations=0,
        )
        metrics.publish(target=reg)
        metrics.publish(target=reg)
        snap = reg.snapshot()
        assert snap["counters"]["run.runs"] == 2
        assert snap["counters"]["run.rounds"] == 6
        assert snap["counters"]["run.messages"] == 20
        assert snap["counters"]["run.bits"] == 160
        assert snap["gauges"]["run.max_message_bits"] == 8.0

    def test_cache_stats_delta_add_publish(self):
        stats = CacheStats()
        stats.hits, stats.misses = 5, 2
        baseline = stats.snapshot()
        stats.hits += 3
        stats.csr_builds += 1
        delta = stats.delta(baseline)
        assert delta.hits == 3 and delta.misses == 0
        assert delta.csr_builds == 1

        other = CacheStats()
        other.hits, other.square_builds = 1, 4
        delta.add(other)
        assert delta.hits == 4 and delta.square_builds == 4

        reg = MetricsRegistry()
        delta.publish(target=reg)
        snap = reg.snapshot()
        assert snap["counters"]["cache.hits"] == 4
        assert snap["counters"]["cache.csr_builds"] == 1
        assert "cache.misses" not in snap["counters"]  # zero: omitted


# ----------------------------------------------------------------------
# cache stats through sweeps and shard merges


class TestSweepCacheStats:
    def test_run_grid_attaches_the_cache_delta(self):
        instance_cache().clear()
        sweep = SweepBackend(executor="serial").run_grid(small_grid())
        assert sweep.cache_stats is not None
        # The prebuild installs instances, the cells then resolve
        # them from the cache — the delta must show that activity.
        assert sweep.cache_stats.hits > 0

        metrics = sweep.aggregate_metrics()
        assert metrics.cache_stats is sweep.cache_stats
        # The determinism contract: the attached stats must never
        # leak into the dataclass repr that feeds fingerprints.
        assert "cache" not in repr(metrics)

    def test_cache_stats_never_feed_the_fingerprint(self):
        sweep = SweepBackend(executor="serial").run_grid(small_grid())
        fp = sweep.fingerprint()
        sweep.cache_stats = CacheStats()
        sweep.cache_stats.hits = 10 ** 9
        assert sweep.fingerprint() == fp

    def test_shard_merge_sums_the_sidecars(self, tmp_path):
        manifest = compile_manifest(small_grid(), 2)
        manifest.save(str(tmp_path))
        for shard in (0, 1):
            run_shard(manifest, shard, str(tmp_path))
            sidecar = stats_path(str(tmp_path), shard)
            data = json.loads(
                open(sidecar, encoding="utf-8").read()
            )
            assert all(
                isinstance(v, int) and v >= 0 for v in data.values()
            )
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.cache_stats is not None
        assert sum(merged.cache_stats.snapshot().values()) > 0

    def test_resume_accumulates_into_the_sidecar(self, tmp_path):
        manifest = compile_manifest(small_grid(), 1)
        manifest.save(str(tmp_path))
        run_shard(manifest, 0, str(tmp_path), max_cells=2)
        first = json.loads(
            open(
                stats_path(str(tmp_path), 0), encoding="utf-8"
            ).read()
        )
        run_shard(manifest, 0, str(tmp_path))
        final = json.loads(
            open(
                stats_path(str(tmp_path), 0), encoding="utf-8"
            ).read()
        )
        for key, value in first.items():
            assert final.get(key, 0) >= value

    def test_torn_sidecar_never_blocks_a_merge(self, tmp_path):
        manifest = compile_manifest(small_grid(), 2)
        manifest.save(str(tmp_path))
        for shard in (0, 1):
            run_shard(manifest, shard, str(tmp_path))
        with open(stats_path(str(tmp_path), 0), "w") as handle:
            handle.write('{"hits": 3, "mis')  # torn mid-write
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.ok
        # Shard 1's sidecar still contributes.
        assert merged.cache_stats is not None


# ----------------------------------------------------------------------
# the report CLI


class TestObsCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        rec = TraceRecorder(path, worker="w0")
        with use_recorder(rec):
            with span("sweep.grid", cells=2):
                t0 = rec.clock()
                rec.complete(
                    "exec.run",
                    t0,
                    {"rounds": 4, "messages": 20, "bits": 160},
                )
            rec.event("fleet.claim", {"shard": 0, "worker": "w0"})
            rec.event("fleet.release", {"shard": 0, "worker": "w0"})
            rec.metrics(
                {"counters": {"cache.hits": 3, "cache.misses": 1}}
            )
        rec.close()
        return path

    def test_summary_renders_spans_and_metrics(
        self, trace_path, capsys
    ):
        assert obs_main(["summary", trace_path]) == 0
        out = capsys.readouterr().out
        assert "sweep.grid" in out and "exec.run" in out
        assert "cache.hits" in out

    def test_phases_table(self, trace_path, capsys):
        assert obs_main(["phases", trace_path]) == 0
        out = capsys.readouterr().out
        assert "exec.run" in out and "20" in out

    def test_cache_breakdown_derives_hit_rate(
        self, trace_path, capsys
    ):
        assert obs_main(["cache", "--json", trace_path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["hits"] == 3 and data["misses"] == 1
        assert data["hit_rate"] == 0.75

    def test_fleet_rollup(self, trace_path, capsys):
        assert obs_main(["fleet", "--json", trace_path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {
            "0": {
                "claims": 1,
                "reclaims": 0,
                "heartbeats": 0,
                "releases": 1,
                "lost": 0,
            }
        }

    def test_validate_exit_codes(self, trace_path, tmp_path, capsys):
        assert obs_main(["validate", trace_path]) == 0
        assert "trace ok" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind":"wat"}\n', encoding="utf-8")
        assert obs_main(["validate", str(bad)]) == 5
        assert "unknown kind" in capsys.readouterr().out

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert obs_main(["summary", missing]) == 2
        assert capsys.readouterr().err
