"""Tests for the shared try-a-color primitive (Sec. 2.2)."""

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.congest.node import NodeContext, NodeProgram
from repro.core.trying import (
    TryPhaseMixin,
    all_colored,
    coloring_from_programs,
    iter_messages,
    multiplex,
)


class FixedTryProgram(TryPhaseMixin, NodeProgram):
    """Tries a scripted sequence of candidates, one per phase."""

    def __init__(self, ctx: NodeContext):
        super().__init__(ctx)
        self.init_tracker(ctx.data.get("color"))
        self.script = list(ctx.data.get("script", []))
        self.adoptions = []

    def run(self):
        for candidate in self.script:
            if not self.live:
                candidate = None
            adopted = yield from self.try_phase(candidate)
            self.adoptions.append(adopted)
        return self.color


def run_script(graph, scripts, precolored=None):
    precolored = precolored or {}
    inputs = {
        v: {
            "script": scripts.get(v, [None] * 3),
            "color": precolored.get(v),
        }
        for v in graph.nodes
    }
    network = Network(graph, FixedTryProgram, inputs=inputs)
    network.run()
    return network


class TestTryPhase:
    def test_isolated_node_adopts_immediately(self):
        graph = nx.Graph()
        graph.add_node(0)
        net = run_script(graph, {0: [5]})
        assert net.programs[0].color == 5

    def test_single_trier_succeeds(self):
        graph = nx.path_graph(3)
        net = run_script(graph, {0: [7]})
        assert net.programs[0].color == 7

    def test_adjacent_same_candidate_both_fail(self):
        graph = nx.path_graph(2)
        net = run_script(graph, {0: [3], 1: [3]})
        assert net.programs[0].color is None
        assert net.programs[1].color is None

    def test_d2_same_candidate_both_fail(self):
        graph = nx.path_graph(3)  # 0-1-2: 0 and 2 are d2-neighbors
        net = run_script(graph, {0: [4], 2: [4]})
        assert net.programs[0].color is None
        assert net.programs[2].color is None

    def test_d2_different_candidates_both_succeed(self):
        graph = nx.path_graph(3)
        net = run_script(graph, {0: [4], 2: [5]})
        assert net.programs[0].color == 4
        assert net.programs[2].color == 5

    def test_conflict_with_existing_neighbor_color(self):
        graph = nx.path_graph(2)
        # Node 1 precolored 6: its try-phase verdict must veto.
        net = run_script(
            graph, {0: [6, 8]}, precolored={1: 6}
        )
        assert net.programs[0].color == 8

    def test_conflict_with_existing_d2_color(self):
        graph = nx.path_graph(3)
        net = run_script(
            graph, {0: [9, 2]}, precolored={2: 9}
        )
        # Node 2's color 9 must be vetoed by middle node 1... but
        # only after node 1 learns it; precoloring is announced via
        # nbr_colors only on adoption, so plant it via a first-phase
        # adoption instead.
        assert net.programs[0].color in (2, 9)

    def test_adoption_announces_to_neighbors(self):
        graph = nx.path_graph(2)
        net = run_script(graph, {0: [1], 1: [None, 1]})
        # Node 1 tries color 1 in phase 2, after node 0 adopted it.
        assert net.programs[0].color == 1
        assert net.programs[1].color is None
        assert net.programs[1].nbr_colors[0] == 1

    def test_distance2_conflict_after_adoption(self):
        graph = nx.path_graph(3)
        # Phase 1: node 0 adopts 5.  Phase 2: node 2 tries 5 and must
        # be vetoed by the middle node 1, which saw the adoption.
        net = run_script(graph, {0: [5], 2: [None, 5, 6]})
        assert net.programs[0].color == 5
        assert net.programs[2].color == 6


class TestMessageHelpers:
    def test_iter_single_message(self):
        assert list(iter_messages(("T", 1))) == [("T", 1)]

    def test_iter_multiplexed(self):
        payload = multiplex(("a", 1), ("b", 2))
        assert list(iter_messages(payload)) == [("a", 1), ("b", 2)]

    def test_multiplex_single_passthrough(self):
        assert multiplex(("a", 1)) == ("a", 1)

    def test_multiplex_drops_none(self):
        assert multiplex(None, ("a", 1), None) == ("a", 1)

    def test_iter_ignores_non_tuples(self):
        assert list(iter_messages(None)) == []
        assert list(iter_messages(())) == []


class TestHelpers:
    def test_coloring_from_programs(self):
        graph = nx.path_graph(2)
        net = run_script(graph, {0: [1], 1: [2]})
        coloring = coloring_from_programs(net.programs)
        assert coloring == {0: 1, 1: 2}

    def test_all_colored_monitor(self):
        graph = nx.path_graph(2)
        net = run_script(graph, {0: [1], 1: [2]})
        assert all_colored(net, 0)
