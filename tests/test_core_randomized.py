"""Tests for constants, Reduce, LearnPalette, FinishColoring and the
full randomized pipelines (Thm 1.1, Cor 2.1)."""

import math

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.congest.node import NodeProgram
from repro.congest.policy import BandwidthPolicy
from repro.core.constants import Constants
from repro.core.d2color import (
    RandomizedD2Program,
    basic_d2_color,
    improved_d2_color,
)
from repro.core.learn_palette import LearnPaletteConfig
from repro.core.reduce import REDUCE_PHASE_ROUNDS
from repro.graphs.generators import (
    clique_clusters,
    random_regular,
    unit_disk,
)
from repro.graphs.instances import (
    hoffman_singleton,
    petersen,
    projective_plane_incidence,
)
from repro.graphs.square import d2_neighbors
from repro.verify.checker import check_d2_coloring


class TestConstants:
    def test_paper_relations(self):
        c = Constants.paper()
        assert c.c1 <= 1.0 / (402.0 * math.e**3) + 1e-12
        assert c.c0 == pytest.approx(3.0 * math.e / c.c1)
        assert c.c3 == pytest.approx(32.0 * 1_200_000.0)
        assert c.query_c == pytest.approx(1.0 / 6000.0)
        assert c.act_c == pytest.approx(1.0 / 8.0)

    def test_probabilities_are_probabilities(self):
        for preset in (Constants.paper(), Constants.practical()):
            for phi in (1.0, 10.0, 1000.0):
                assert 0 < preset.query_probability(phi) <= 0.5
                assert (
                    0
                    < preset.activation_probability(phi, phi / 2)
                    <= 1.0
                )

    def test_ladder_halves_until_floor(self):
        c = Constants.practical()
        ladder = c.ladder(n=256, delta=20)
        assert ladder, "expected a non-trivial ladder"
        for phi, tau in ladder:
            assert phi == pytest.approx(2 * tau)
        taus = [tau for _phi, tau in ladder]
        for first, second in zip(taus, taus[1:]):
            assert second == pytest.approx(first / 2)
        assert taus[-1] > c.tau_floor(256) / 2

    def test_reduce_phases_formula(self):
        c = Constants.practical()
        assert c.reduce_phases(20, 10, 256) == math.ceil(
            c.c3 * 4 * math.log2(256)
        )

    def test_initial_trials_grow_with_n(self):
        c = Constants.practical()
        assert c.initial_trials(1024) > c.initial_trials(16)

    def test_scaled_override(self):
        c = Constants.practical().scaled(c2=99.0)
        assert c.c2 == 99.0
        assert c.name == "practical"

    def test_small_graph_threshold(self):
        c = Constants.practical()
        assert c.small_graph_threshold(256) == pytest.approx(16.0)


class TestLearnPaletteConfig:
    def test_small_delta_flag(self):
        c = Constants.practical()
        small = LearnPaletteConfig.derive(1000, 4, 320, c)
        assert small.small_delta
        large = LearnPaletteConfig.derive(64, 30, 320, c)
        assert not large.small_delta

    def test_blocks_cover_palette(self):
        c = Constants.practical()
        cfg = LearnPaletteConfig.derive(
            64, 9, 320, c, force_small=False
        )
        covered = set()
        for i in range(cfg.z_blocks):
            covered.update(cfg.block_colors(i))
        assert covered == set(range(cfg.palette))

    def test_block_of_inverse(self):
        c = Constants.practical()
        cfg = LearnPaletteConfig.derive(
            64, 9, 320, c, force_small=False
        )
        for color in range(cfg.palette):
            assert color in cfg.block_colors(cfg.block_of(color))

    def test_paper_parameters_z_and_p(self):
        # Z = Δ and P = Δ·sqrt(Δ·log n) capped at Δ² (Sec. 2.6).
        c = Constants.practical()
        cfg = LearnPaletteConfig.derive(
            256, 12, 320, c, force_small=False
        )
        assert cfg.z_blocks == 12
        assert cfg.p_targets <= 144


class TestImprovedPipeline:
    def test_moore_graph_rainbow(self):
        graph = hoffman_singleton()
        result = improved_d2_color(
            graph, seed=1, allow_deterministic_fallback=False
        )
        assert result.complete
        assert result.colors_used == 50
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = improved_d2_color(graph, seed=2)
        assert result.complete, name
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_deterministic_fallback_for_low_degree(self):
        graph = nx.cycle_graph(64)
        result = improved_d2_color(graph, seed=3)
        assert result.params.get("deterministic_fallback")
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_fallback_can_be_disabled(self):
        graph = nx.cycle_graph(64)
        result = improved_d2_color(
            graph, seed=3, allow_deterministic_fallback=False
        )
        assert not result.params.get("deterministic_fallback")
        assert result.complete

    def test_same_seed_reproducible(self):
        graph = random_regular(8, 48, seed=4)
        a = improved_d2_color(
            graph, seed=7, allow_deterministic_fallback=False
        )
        b = improved_d2_color(
            graph, seed=7, allow_deterministic_fallback=False
        )
        assert a.coloring == b.coloring
        assert a.rounds == b.rounds

    def test_different_seeds_differ(self):
        graph = random_regular(8, 48, seed=4)
        a = improved_d2_color(
            graph, seed=1, allow_deterministic_fallback=False
        )
        b = improved_d2_color(
            graph, seed=2, allow_deterministic_fallback=False
        )
        assert a.coloring != b.coloring

    def test_handler_path_learn_palette(self):
        graph = projective_plane_incidence(5)
        result = improved_d2_color(
            graph,
            seed=5,
            allow_deterministic_fallback=False,
            force_learn_handlers=True,
        )
        assert result.complete
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_exact_similarity_forced(self):
        graph = random_regular(8, 40, seed=6)
        result = improved_d2_color(
            graph,
            seed=6,
            allow_deterministic_fallback=False,
            force_exact_similarity=True,
        )
        assert result.params["similarity_exact"]
        assert result.complete

    def test_phase_log_present(self):
        graph = hoffman_singleton()
        result = improved_d2_color(
            graph, seed=8, allow_deterministic_fallback=False
        )
        assert "finish" in result.phase_rounds()

    def test_wireless_workload(self):
        graph = unit_disk(60, 0.22, seed=7)
        result = improved_d2_color(graph, seed=9)
        assert result.complete
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid


class TestBasicPipeline:
    def test_valid_and_complete(self):
        graph = random_regular(8, 48, seed=5)
        result = basic_d2_color(
            graph, seed=11, allow_deterministic_fallback=False
        )
        assert result.complete
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_moore_graph(self):
        graph = petersen()
        result = basic_d2_color(graph, seed=12)
        assert result.colors_used == 10
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_similarity_runs_before_trials(self):
        graph = hoffman_singleton()
        result = basic_d2_color(
            graph, seed=13, allow_deterministic_fallback=False
        )
        phases = [name for name, _ in result.phase_rounds().items()]
        if "similarity" in phases and "trials" in phases:
            assert phases.index("similarity") < phases.index(
                "trials"
            )


class TestReduceMechanics:
    def _run(self, graph, seed):
        network_result = improved_d2_color(
            graph, seed=seed, allow_deterministic_fallback=False
        )
        return network_result

    def test_reduce_stats_consistency(self):
        # Run the full pipeline on a dense instance and inspect the
        # per-node counters kept by ReduceMixin.
        graph = hoffman_singleton()
        constants = Constants.practical()
        policy = BandwidthPolicy()
        n = graph.number_of_nodes()
        from repro.core.d2color import _run_randomized

        result = _run_randomized(
            graph,
            "improved",
            14,
            constants,
            policy,
            None,
            200_000,
            None,
            False,
        )
        assert result.complete
        # counters are monotone aggregates: accepted <= received
        # cannot be checked post-hoc here (programs are internal),
        # but the pipeline must have produced a valid coloring with
        # all mechanisms active.
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_phase_round_constant(self):
        assert REDUCE_PHASE_ROUNDS == 17

    def test_reduce_ladder_phase_counts(self):
        constants = Constants.practical()
        n, delta = 50, 7
        ladder = constants.ladder(n, delta)
        total = sum(
            constants.reduce_phases(phi, tau, n)
            for phi, tau in ladder
        )
        assert total > 0

    def test_dense_cliques_color_correctly(self):
        graph = clique_clusters(5, 8, seed=1, bridges=2)
        result = improved_d2_color(
            graph, seed=15, allow_deterministic_fallback=False
        )
        assert result.complete
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid


class TestPaperConstantsConstructible:
    def test_paper_preset_schedules(self):
        # The paper preset's schedules are astronomically long; we
        # only verify they are well-formed, not runnable.
        # c1 is tiny (1/402e³), so the ladder only exists once
        # c1·Δ² clears the c2·log n floor — Δ ~ 10⁴ at n = 10⁶.
        c = Constants.paper()
        assert c.ladder(n=10**6, delta=1000) == []
        ladder = c.ladder(n=10**6, delta=10**4)
        assert ladder
        assert c.reduce_phases(*ladder[0], 10**6) > 10**6
