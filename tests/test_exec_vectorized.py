"""The vectorized array engine: kernels, fallbacks, CSR artifacts.

`test_backend_equivalence.py` pins ``vectorized ≡ reference`` over
the registry × corpus product; this module drills into the engine
itself — exact parity on the awkward paths (round cutoffs, timeout
fast-forwards, precoloring, program-state writeback), the automatic
fastpath fallback for runs a kernel cannot replay, and the CSR
adjacency artifact the kernels consume.
"""

import pickle

import networkx as nx
import numpy as np
import pytest

from repro.baselines.luby import (
    LubyDistanceKProgram,
    _all_decided,
    check_distance_k_mis,
    luby_distance_k_mis,
)
from repro.baselines.trial import TrialProgram, trial_d2_color
from repro.congest.errors import (
    BandwidthExceededError,
    NonterminationError,
)
from repro.congest.message import int_bits
from repro.congest.network import Network
from repro.congest.policy import BandwidthPolicy
from repro.core.d2color import basic_d2_color, improved_d2_color
from repro.core.trying import all_colored
from repro.det.g_coloring import prime_between
from repro.det.locally_iterative import LocallyIterativeProgram
from repro.det.part_d2coloring import PartLocallyIterativeD2
from repro.exec import use_backend
from repro.util.primes import bertrand_prime
from repro.exec.arrays import (
    build_csr,
    csr_for_graph,
    int_bits_array,
    row_any,
    row_max,
)
from repro.exec.vectorized import kernel_coverage
from repro.workloads.cache import InstanceCache


def _metrics_tuple(metrics):
    return (
        metrics.rounds,
        metrics.total_messages,
        metrics.total_bits,
        metrics.max_message_bits,
        metrics.budget_bits,
        metrics.violations,
        metrics.worst_violation_bits,
    )


def _graphs():
    disconnected = nx.disjoint_union(
        nx.cycle_graph(5), nx.path_graph(4)
    )
    return {
        "petersen": nx.petersen_graph(),
        "gnp24": nx.gnp_random_graph(24, 0.2, seed=11),
        "star": nx.star_graph(6),
        "edgeless": nx.empty_graph(5),
        "singleton": nx.path_graph(1),
        "disconnected": disconnected,
    }


GRAPHS = _graphs()


def _trial_network(graph, seed, policy=None, **data):
    delta = max((d for _, d in graph.degree), default=0)
    payload = {"palette": delta * delta + 1, **data}
    inputs = {v: dict(payload) for v in graph.nodes}
    return Network(
        graph, TrialProgram, seed=seed, policy=policy, inputs=inputs
    )


def _luby_network(graph, seed, k=2, policy=None):
    inputs = {v: {"k": k} for v in graph.nodes}
    return Network(
        graph,
        LubyDistanceKProgram,
        seed=seed,
        policy=policy,
        inputs=inputs,
    )


def _run_pair(make_network, backend="vectorized", **run_kwargs):
    ref_net = make_network()
    vec_net = make_network()
    ref = ref_net.run(backend="reference", **run_kwargs)
    vec = vec_net.run(backend=backend, **run_kwargs)
    return (ref_net, ref), (vec_net, vec)


def _assert_trial_parity(make_network, **run_kwargs):
    (ref_net, ref), (vec_net, vec) = _run_pair(
        make_network, **run_kwargs
    )
    assert vec.outputs == ref.outputs
    assert vec.stopped_early == ref.stopped_early
    assert _metrics_tuple(vec.metrics) == _metrics_tuple(ref.metrics)
    for node in ref_net.programs:
        rp, vp = ref_net.programs[node], vec_net.programs[node]
        assert vp.color == rp.color, node
        assert vp.phases_tried == rp.phases_tried, node
        assert vp.nbr_colors == rp.nbr_colors, node
    assert vec_net._started == ref_net._started


def _assert_luby_parity(make_network, **run_kwargs):
    (ref_net, ref), (vec_net, vec) = _run_pair(
        make_network, **run_kwargs
    )
    assert vec.outputs == ref.outputs
    assert vec.stopped_early == ref.stopped_early
    assert _metrics_tuple(vec.metrics) == _metrics_tuple(ref.metrics)
    for node in ref_net.programs:
        rp, vp = ref_net.programs[node], vec_net.programs[node]
        assert vp.state == rp.state, node
        assert vp.phases == rp.phases, node


class TestKernelCoverage:
    def test_trial_and_luby_have_kernels(self):
        coverage = kernel_coverage()
        assert "TrialProgram" in coverage
        assert "LubyDistanceKProgram" in coverage

    def test_registry_spec_names_are_keys(self):
        # Coverage is queryable by registry spec name too, so tooling
        # (e.g. the compare_algorithms fallback warning) need not map
        # spec -> program class itself.
        coverage = kernel_coverage()
        for spec_name in (
            "trial",
            "trial-slack",
            "deterministic-d2",
            "eps-d2-coloring",
            "improved-d2color",
            "basic-d2color",
        ):
            assert spec_name in coverage, spec_name


class TestTrialKernel:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_track_parity(self, name, seed):
        _assert_trial_parity(
            lambda: _trial_network(
                GRAPHS[name], seed, policy=BandwidthPolicy.track()
            ),
            max_rounds=5_000,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_unbounded_observables_match_fastpath(self, seed):
        # Under UNBOUNDED both engines skip sizing; they must agree
        # with each other exactly (and with reference on outputs).
        graph = GRAPHS["gnp24"]

        def runs(backend):
            net = _trial_network(graph, seed)
            res = net.run(
                backend=backend,
                max_rounds=5_000,
                stop_when=all_colored,
                raise_on_timeout=False,
            )
            return res

        fast, vec = runs("fastpath"), runs("vectorized")
        assert vec.outputs == fast.outputs
        assert _metrics_tuple(vec.metrics) == _metrics_tuple(
            fast.metrics
        )

    @pytest.mark.parametrize("max_rounds", range(9))
    def test_round_cutoff_parity(self, max_rounds):
        _assert_trial_parity(
            lambda: _trial_network(
                GRAPHS["petersen"], 5, policy=BandwidthPolicy.track()
            ),
            max_rounds=max_rounds,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    def test_nontermination_raise_parity(self):
        for backend in ("reference", "vectorized"):
            with pytest.raises(NonterminationError):
                _trial_network(GRAPHS["petersen"], 5).run(
                    backend=backend,
                    max_rounds=1,
                    stop_when=all_colored,
                    raise_on_timeout=True,
                )

    def test_no_stop_monitor_fast_forward_parity(self):
        # stop_when=None: once everyone is colored the remaining
        # rounds are message-free; the kernel fast-forwards them and
        # must land on reference's exact metrics.
        _assert_trial_parity(
            lambda: _trial_network(
                GRAPHS["petersen"], 2, policy=BandwidthPolicy.track()
            ),
            max_rounds=60,
            stop_when=None,
            raise_on_timeout=False,
        )

    def test_precolored_parity(self):
        graph = GRAPHS["petersen"]

        def make():
            delta = 3
            inputs = {
                v: {"palette": 10, "color": v % 3 if v < 4 else None}
                for v in graph.nodes
            }
            inputs = {
                v: {k: x for k, x in d.items() if x is not None}
                for v, d in inputs.items()
            }
            return Network(
                graph,
                TrialProgram,
                seed=9,
                policy=BandwidthPolicy.track(),
                delta=delta,
                inputs=inputs,
            )

        _assert_trial_parity(
            make,
            max_rounds=5_000,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    def test_driver_equivalence(self):
        with use_backend("reference"):
            ref = trial_d2_color(GRAPHS["gnp24"], seed=4)
        with use_backend("vectorized"):
            vec = trial_d2_color(GRAPHS["gnp24"], seed=4)
        assert vec.coloring == ref.coloring
        assert vec.rounds == ref.rounds


class TestLubyKernel:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_track_parity(self, name, k):
        _assert_luby_parity(
            lambda: _luby_network(
                GRAPHS[name], 7, k=k, policy=BandwidthPolicy.track()
            ),
            max_rounds=5_000,
            stop_when=_all_decided,
            raise_on_timeout=False,
        )

    @pytest.mark.parametrize("max_rounds", range(13))
    def test_round_cutoff_parity(self, max_rounds):
        _assert_luby_parity(
            lambda: _luby_network(
                GRAPHS["gnp24"], 3, k=2, policy=BandwidthPolicy.track()
            ),
            max_rounds=max_rounds,
            stop_when=_all_decided,
            raise_on_timeout=False,
        )

    def test_no_stop_monitor_fast_forward_parity(self):
        # The decided network keeps flooding (K, -1) broadcasts; the
        # kernel's closed-form fast-forward must match reference.
        _assert_luby_parity(
            lambda: _luby_network(
                GRAPHS["petersen"], 1, k=2,
                policy=BandwidthPolicy.track(),
            ),
            max_rounds=41,
            stop_when=None,
            raise_on_timeout=False,
        )

    def test_driver_produces_valid_mis(self):
        graph = GRAPHS["gnp24"]
        with use_backend("vectorized"):
            mis, _phases, _metrics = luby_distance_k_mis(
                graph, k=2, seed=3
            )
        assert check_distance_k_mis(graph, mis, 2)


def _li_network(graph, seed, policy=None):
    delta = max((d for _, d in graph.degree), default=0)
    q = bertrand_prime(max(delta, 1))
    inputs = {
        v: {"q": q, "color_in": i % (q * q)}
        for i, v in enumerate(sorted(graph.nodes))
    }
    return q, Network(
        graph,
        LocallyIterativeProgram,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )


def _part_li_network(graph, seed, parts=3, policy=None):
    delta = max((d for _, d in graph.degree), default=0)
    d_part = max(1, delta)
    q = prime_between(4 * d_part, 8 * d_part)
    inputs = {
        v: {"q": q, "part": i % parts, "color_in": i % (q * q)}
        for i, v in enumerate(sorted(graph.nodes))
    }
    return q, Network(
        graph,
        PartLocallyIterativeD2,
        seed=seed,
        policy=policy,
        delta=delta,
        inputs=inputs,
    )


def _assert_poly_phase_parity(make_network, with_parts, **run_kwargs):
    (ref_net, ref), (vec_net, vec) = _run_pair(
        lambda: make_network()[1], **run_kwargs
    )
    assert vec.outputs == ref.outputs
    assert vec.stopped_early == ref.stopped_early
    assert _metrics_tuple(vec.metrics) == _metrics_tuple(ref.metrics)
    for node in ref_net.programs:
        rp, vp = ref_net.programs[node], vec_net.programs[node]
        assert vp.color == rp.color, node
        assert vp.blocked_phases == rp.blocked_phases, node
        assert vp.nbr_colors == rp.nbr_colors, node
        if with_parts:
            assert vp.offset == rp.offset, node
        else:
            assert vp.succeeded_phase == rp.succeeded_phase, node
    assert vec_net._started == ref_net._started


class TestPolyPhaseKernels:
    """The locally-iterative / part-offset kernels behind the
    deterministic-d2 and eps-d2-coloring try-phase stages."""

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("seed", [0, 2])
    def test_li_track_parity(self, name, seed):
        graph = GRAPHS[name]
        q, _ = _li_network(graph, seed)
        _assert_poly_phase_parity(
            lambda: _li_network(
                graph, seed, policy=BandwidthPolicy.track()
            ),
            with_parts=False,
            max_rounds=3 * q + 3,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("seed", [0, 2])
    def test_part_li_track_parity(self, name, seed):
        graph = GRAPHS[name]
        q, _ = _part_li_network(graph, seed)
        _assert_poly_phase_parity(
            lambda: _part_li_network(
                graph, seed, policy=BandwidthPolicy.track()
            ),
            with_parts=True,
            max_rounds=3 * q + 3,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    @pytest.mark.parametrize(
        "max_rounds", [0, 1, 2, 3, 4, 5, 6, 7, 11, 200]
    )
    def test_li_round_cutoff_parity(self, max_rounds):
        # Mid-phase cutoffs: the writeback must reconstruct exactly
        # the blocked/succeeded counters the aborted generators hold.
        _assert_poly_phase_parity(
            lambda: _li_network(
                GRAPHS["petersen"], 5, policy=BandwidthPolicy.track()
            ),
            with_parts=False,
            max_rounds=max_rounds,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    @pytest.mark.parametrize("max_rounds", [0, 1, 3, 5, 8, 200])
    def test_part_li_round_cutoff_parity(self, max_rounds):
        _assert_poly_phase_parity(
            lambda: _part_li_network(
                GRAPHS["gnp24"], 3, policy=BandwidthPolicy.track()
            ),
            with_parts=True,
            max_rounds=max_rounds,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    def test_li_full_schedule_halts(self):
        # No stop monitor: the program halts itself after 3q rounds;
        # the kernel must replay the whole schedule plus the halting
        # resume and leave the network in the halted state.
        graph = GRAPHS["petersen"]
        q, _ = _li_network(graph, 1)
        _assert_poly_phase_parity(
            lambda: _li_network(
                graph, 1, policy=BandwidthPolicy.track()
            ),
            with_parts=False,
            max_rounds=3 * q + 3,
            stop_when=None,
            raise_on_timeout=False,
        )


class TestRandomizedD2Kernel:
    """The hybrid kernel for d2-Color / Improved-d2-Color: random
    trials as array work, similarity/ladder epilogue via the resumed
    generators."""

    @pytest.mark.parametrize(
        "color",
        [improved_d2_color, basic_d2_color],
        ids=["improved", "basic"],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_driver_parity(self, color, seed):
        graph = GRAPHS["gnp24"]

        def run(backend):
            with use_backend(backend):
                return color(
                    graph,
                    seed=seed,
                    allow_deterministic_fallback=False,
                )

        ref, vec = run("reference"), run("vectorized")
        assert vec.coloring == ref.coloring
        assert vec.rounds == ref.rounds
        assert _metrics_tuple(vec.metrics) == _metrics_tuple(
            ref.metrics
        )
        assert [(p.name, p.rounds) for p in vec.phases] == [
            (p.name, p.rounds) for p in ref.phases
        ]

    @pytest.mark.parametrize(
        "color",
        [improved_d2_color, basic_d2_color],
        ids=["improved", "basic"],
    )
    @pytest.mark.parametrize("max_rounds", [0, 1, 2, 3, 7, 20, 61])
    def test_round_cutoff_parity(self, color, max_rounds):
        # Cutoffs land before, inside, and after the trials window
        # (the array-executed section); coloring, metrics, and the
        # phase table must match reference at every boundary.
        graph = GRAPHS["petersen"]

        def run(backend):
            with use_backend(backend):
                return color(
                    graph,
                    seed=5,
                    max_rounds=max_rounds,
                    allow_deterministic_fallback=False,
                )

        ref, vec = run("reference"), run("vectorized")
        assert vec.coloring == ref.coloring
        assert vec.rounds == ref.rounds
        assert _metrics_tuple(vec.metrics) == _metrics_tuple(
            ref.metrics
        )
        assert [(p.name, p.rounds) for p in vec.phases] == [
            (p.name, p.rounds) for p in ref.phases
        ]


class TestFallbacks:
    """Runs the kernels must decline still execute correctly (via
    fastpath) when ``backend="vectorized"`` is requested."""

    def test_custom_stop_when_falls_back(self):
        _assert_trial_parity(
            lambda: _trial_network(
                GRAPHS["petersen"], 1, policy=BandwidthPolicy.track()
            ),
            max_rounds=30,
            stop_when=lambda net, rnd: False,
            raise_on_timeout=False,
        )

    def test_avoid_known_falls_back(self):
        _assert_trial_parity(
            lambda: _trial_network(
                GRAPHS["gnp24"],
                2,
                policy=BandwidthPolicy.track(),
                avoid_known=True,
            ),
            max_rounds=5_000,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    def test_selfloop_graph_falls_back(self):
        graph = nx.cycle_graph(5)
        graph.add_edge(2, 2)

        def make():
            inputs = {v: {"palette": 9} for v in graph.nodes}
            return Network(
                graph,
                TrialProgram,
                seed=1,
                policy=BandwidthPolicy.track(),
                inputs=inputs,
            )

        _assert_trial_parity(
            make,
            max_rounds=12,
            stop_when=all_colored,
            raise_on_timeout=False,
        )

    def test_strict_tiny_budget_error_parity(self):
        graph = nx.path_graph(3)
        errors = {}
        for backend in ("reference", "vectorized"):
            with pytest.raises(BandwidthExceededError) as info:
                _trial_network(
                    graph,
                    0,
                    policy=BandwidthPolicy.strict(beta=1, min_bits=5),
                ).run(
                    backend=backend,
                    max_rounds=100,
                    stop_when=all_colored,
                    raise_on_timeout=False,
                )
            errors[backend] = str(info.value)
        assert errors["reference"] == errors["vectorized"]

    def test_record_rounds_delegates(self):
        net = _trial_network(
            GRAPHS["petersen"], 3, policy=BandwidthPolicy.track()
        )
        result = net.run(
            backend="vectorized",
            max_rounds=5_000,
            stop_when=all_colored,
            raise_on_timeout=False,
            record_rounds=True,
        )
        assert len(result.metrics.per_round) == result.metrics.rounds


class TestArrays:
    def test_csr_matches_networkx_neighborhoods(self):
        graph = nx.gnp_random_graph(30, 0.15, seed=2)
        csr = build_csr(graph)
        for i, v in enumerate(csr.order):
            row = set(
                csr.order[j]
                for j in csr.g_indices[
                    csr.g_indptr[i]:csr.g_indptr[i + 1]
                ]
            )
            assert row == set(graph.neighbors(v))
            ball = set(
                nx.single_source_shortest_path_length(
                    graph, v, cutoff=2
                )
            ) - {v}
            row2 = set(
                csr.order[j]
                for j in csr.g2_indices[
                    csr.g2_indptr[i]:csr.g2_indptr[i + 1]
                ]
            )
            assert row2 == ball

    def test_csr_drops_selfloops_but_flags_them(self):
        graph = nx.path_graph(4)
        graph.add_edge(1, 1)
        csr = build_csr(graph)
        assert csr.has_selfloops
        assert csr.degrees.tolist() == [1, 2, 2, 1]
        for i in range(csr.n):
            row2 = csr.g2_indices[
                csr.g2_indptr[i]:csr.g2_indptr[i + 1]
            ]
            assert i not in row2.tolist()

    def test_row_any_and_row_max_handle_empty_rows(self):
        indptr = np.array([0, 2, 2, 5, 5], dtype=np.int64)
        flags = np.array([0, 0, 1, 0, 0], dtype=bool)
        assert row_any(flags, indptr).tolist() == [
            False, False, True, False,
        ]
        values = np.array([4, 1, 9, 2, 7], dtype=np.int64)
        assert row_max(values, indptr, -1).tolist() == [4, -1, 9, -1]

    def test_int_bits_array_exact_across_int64(self):
        values = [
            0, 1, -1, 2, 7, 8, 255, 256, -257,
            2**31 - 1, 2**31, 2**52, 2**53, 2**53 + 1,
            2**61, 2**62 - 1, -(2**62 - 1),
        ]
        got = int_bits_array(np.array(values, dtype=np.int64))
        assert got.tolist() == [int_bits(v) for v in values]

    def test_graph_registry_is_per_object(self):
        graph = nx.petersen_graph()
        assert csr_for_graph(graph) is csr_for_graph(graph)
        assert csr_for_graph(graph) is not csr_for_graph(
            nx.petersen_graph()
        )


class TestInstanceCSRArtifact:
    def test_csr_memoized_and_counted(self):
        cache = InstanceCache()
        instance = cache.intern(
            "csr-probe", 0, tuple(range(6)),
            tuple((i, i + 1) for i in range(5)),
        )
        assert cache.stats.csr_builds == 0
        first = instance.csr()
        assert instance.csr() is first
        assert cache.stats.csr_builds == 1

    def test_plan_driven_run_leaves_cache_stats_unchanged(self):
        # Regression: a NetworkPlan-driven kernel run must hit the
        # instance cache exactly like a materialized Network run —
        # in particular it must not trigger extra CSR or square
        # builds once the instance artifacts are warm.
        cache = InstanceCache()
        instance = cache.intern(
            "plan-stats-probe", 0, tuple(range(12)),
            tuple((i, (i + 1) % 12) for i in range(12)),
        )
        graph = instance.graph()
        instance.csr()
        instance.d2_adjacency()
        base = cache.stats.snapshot()

        def run(backend):
            net = _trial_network(graph, 4)
            net.run(
                backend=backend,
                max_rounds=5_000,
                stop_when=all_colored,
                raise_on_timeout=False,
            )
            return net

        vec_net = run("vectorized")
        after_vec = cache.stats.snapshot()
        assert not vec_net.materialized  # the plan-driven path ran
        run("fastpath")
        after_fast = cache.stats.snapshot()

        vec_delta = {
            key: after_vec[key] - base[key] for key in base
        }
        fast_delta = {
            key: after_fast[key] - after_vec[key] for key in base
        }
        assert vec_delta == fast_delta
        assert vec_delta["csr_builds"] == 0
        assert vec_delta["square_builds"] == 0

    def test_pickle_ships_csr_and_seeds_graph_registry(self):
        cache = InstanceCache()
        instance = cache.intern(
            "csr-ship", 1, tuple(range(6)),
            tuple((i, i + 1) for i in range(5)),
        )
        instance.csr()
        clone = pickle.loads(pickle.dumps(instance))
        receiver = InstanceCache()
        receiver.install([clone])
        assert clone._csr is not None
        # graph() must seed the per-graph registry with the shipped
        # artifact, so vectorized runs on the clone never rebuild.
        assert csr_for_graph(clone.graph()) is clone._csr
        assert receiver.stats.csr_builds == 0


@pytest.mark.slow
class TestHugeTier:
    def test_vectorized_matches_fastpath_on_huge_gnp(self):
        from repro import registry
        from repro.workloads import instance_cache

        graph = instance_cache().get("gnp-huge-16384", 0).graph()
        spec = registry.get_algorithm("trial")
        fast = spec.run(graph, seed=0, backend="fastpath")
        vec = spec.run(graph, seed=0, backend="vectorized")
        assert vec.coloring == fast.coloring
        assert vec.rounds == fast.rounds
