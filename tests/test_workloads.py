"""The workload subsystem: registry, new families, instance cache.

Property tests (hypothesis) pin the registry contract for the new
generator families — power-law, weighted G(n,p), color-sampling,
congested-relay, virtualized-clique: builders are deterministic in
the seed, built graphs respect their declared n/Δ bounds, and every
family produces graphs the whole pipeline accepts end-to-end (run a
registry algorithm spec, validate with the independent checker).

The cache tests pin what the sweep hot path relies on: one build and
one G² derivation per (workload, params, seed) whatever the number of
cells, content-addressed interning for ad-hoc graphs, and pickling
that ships computed artifacts across process boundaries.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.graphs.instances import named_instance
from repro.registry import get_algorithm
from repro.verify.checker import check_d2_coloring
from repro.workloads import (
    InstanceCache,
    build_corpus,
    build_large_corpus,
    get_workload,
    instance_cache,
    workload_names,
    workloads,
)
from repro.conformance.scenarios import Scenario

#: The families this PR introduces; each name is a registered
#: ``corpus``-tagged workload built by a new generator.
NEW_FAMILY_WORKLOADS = (
    "powerlaw24",
    "weighted-gnp24",
    "relay3x4",
    "virtual-clique5x3",
    "sampling-slack24",
)

seeds = st.integers(min_value=0, max_value=200)


def canonical(graph):
    return (
        tuple(sorted(graph.nodes)),
        tuple(sorted(tuple(sorted(e)) for e in graph.edges)),
    )


class TestRegistry:
    def test_corpus_slices_are_tagged(self):
        assert all("corpus" in s.tags for s in build_corpus())
        assert all("large" in s.tags for s in build_large_corpus())

    def test_names_unique_and_resolvable(self):
        corpus = build_corpus() + build_large_corpus()
        names = [s.name for s in corpus]
        assert len(names) == len(set(names))
        for spec in corpus:
            assert get_workload(spec.name) is spec

    def test_new_families_are_in_the_corpus(self):
        names = set(workload_names("corpus"))
        assert set(NEW_FAMILY_WORKLOADS) <= names

    def test_tag_filtering_is_conjunctive(self):
        relay = workloads("corpus", "relay")
        assert {s.name for s in relay} == {
            "relay3x4",
            "virtual-clique5x3",
        }

    def test_huge_tier_is_opt_in(self):
        huge = {s.name for s in workloads("huge")}
        assert huge
        assert not huge & {s.name for s in build_corpus()}
        assert not huge & {s.name for s in build_large_corpus()}

    def test_params_are_frozen_and_exposed(self):
        spec = get_workload("sampling-slack24")
        params = spec.param_dict()
        assert params["palette_slack"] == 2.0
        assert spec.params == tuple(sorted(params.items()))

    def test_scenario_shim_builds_adhoc_specs(self):
        import networkx as nx

        scenario = Scenario(
            "adhoc-path", lambda s: nx.path_graph(5), frozenset({"x"})
        )
        assert scenario.name == "adhoc-path"
        assert "x" in scenario.tags
        assert scenario.graph(3).number_of_nodes() == 5
        # The historical field-call shape still works.
        assert canonical(scenario.build(3)) == canonical(
            scenario.graph(3)
        )

    def test_named_instances_resolve_through_registry(self):
        # Old spellings from graphs.instances.named_instance.
        assert named_instance("c5").number_of_nodes() == 5
        assert (
            named_instance("hoffman_singleton").number_of_nodes() == 50
        )
        assert named_instance("pg2_3").number_of_nodes() == 26
        try:
            named_instance("nope")
        except KeyError as exc:
            assert "pg2_3" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")


@st.composite
def new_family_specs(draw):
    return get_workload(draw(st.sampled_from(NEW_FAMILY_WORKLOADS)))


class TestNewFamilies:
    @given(spec=new_family_specs(), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_builders_are_seed_deterministic(self, spec, seed):
        first = spec.graph(seed)
        second = spec.graph(seed)
        assert canonical(first) == canonical(second)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_weighted_gnp_weights_are_seed_deterministic(self, seed):
        first = graphs.weighted_gnp(20, 0.2, seed=seed)
        second = graphs.weighted_gnp(20, 0.2, seed=seed)
        assert canonical(first) == canonical(second)
        for u, v in first.edges:
            weight = first.edges[u, v]["weight"]
            assert weight == second.edges[u, v]["weight"]
            assert 1 <= weight <= 16

    @given(spec=new_family_specs(), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_declared_bounds_hold(self, spec, seed):
        graph = spec.graph(seed)
        delta = max((d for _, d in graph.degree), default=0)
        assert spec.n_bound is not None
        assert graph.number_of_nodes() <= spec.n_bound
        if spec.delta_bound is not None:
            assert delta <= spec.delta_bound

    @given(spec=new_family_specs(), seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_checker_accepts_family_end_to_end(self, spec, seed):
        """One registry spec, one new-family instance, full contract:
        run through AlgorithmSpec.run and validate independently."""
        algorithm = get_algorithm("trial")
        cache = InstanceCache()
        instance = cache.get(spec, seed)
        result = algorithm.run_on(instance, seed=seed)
        report = check_d2_coloring(
            instance.graph(),
            result.coloring,
            algorithm.palette_bound(instance.delta),
        )
        assert report.valid, report.explain()

    def test_relay_routes_cliques_through_relays(self):
        graph = graphs.congested_relay(4, 5, relays=2, seed=0)
        # Removing the relay nodes disconnects the cliques entirely.
        import networkx as nx

        stripped = graph.copy()
        stripped.remove_nodes_from([20, 21])
        components = list(nx.connected_components(stripped))
        assert len(components) == 4

    def test_virtualized_clique_shape(self):
        graph = graphs.virtualized_clique(4, parts=3, seed=1)
        assert graph.number_of_nodes() == 12
        # parts-1 path edges per virtual node + C(virtual, 2) edges.
        assert graph.number_of_edges() == 4 * 2 + 6

    def test_power_law_is_hub_skewed(self):
        graph = graphs.power_law(200, attach=2, seed=3)
        degrees = sorted((d for _, d in graph.degree), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]


class TestInstanceCache:
    def test_one_build_per_key(self):
        cache = InstanceCache()
        spec = get_workload("gnp24")
        first = cache.get(spec, 7)
        for _ in range(10):
            assert cache.get("gnp24", 7) is first
        assert cache.stats.builds == 1
        assert cache.stats.hits == 10

    def test_square_derived_once_and_matches_graphs_square(self):
        cache = InstanceCache()
        instance = cache.get("relay3x4", 2)
        adjacency = instance.d2_adjacency()
        instance.d2_adjacency()
        instance.square()
        instance.d2_degrees()
        assert cache.stats.square_builds == 1
        graph = instance.graph()
        from repro.graphs.square import d2_neighborhoods, square

        assert adjacency == d2_neighborhoods(graph)
        assert set(instance.square().edges) == set(
            square(graph).edges
        ) or instance.square().edges == square(graph).edges
        assert instance.max_d2_degree() == max(
            instance.d2_degrees().values()
        )

    def test_distinct_seeds_are_distinct_entries(self):
        cache = InstanceCache()
        assert cache.get("gnp24", 0) is not cache.get("gnp24", 1)
        assert cache.stats.builds == 2

    def test_adhoc_interning_is_content_addressed(self):
        import networkx as nx

        cache = InstanceCache()
        a = cache.intern_graph("thing", 0, nx.path_graph(6))
        b = cache.intern_graph("thing", 0, nx.path_graph(6))
        c = cache.intern_graph("thing", 0, nx.cycle_graph(6))
        assert a is b
        assert c is not a
        assert a.digest() != c.digest()

    def test_pickle_ships_computed_artifacts(self):
        cache = InstanceCache()
        instance = cache.get("powerlaw24", 4)
        instance.d2_adjacency()
        delta = instance.delta
        shipped = pickle.loads(pickle.dumps(instance))
        # Artifacts arrive prebuilt: reading them must not recompute.
        receiver = InstanceCache()
        receiver.install([shipped])
        assert receiver.get("powerlaw24", 4) is shipped
        assert receiver.stats.builds == 0
        assert shipped._d2_adjacency is not None
        assert shipped.delta == delta
        assert canonical(shipped.graph()) == canonical(
            instance.graph()
        )

    def test_global_cache_is_shared(self):
        assert instance_cache() is instance_cache()

    def test_installed_instances_resolve_without_registration(self):
        """The spawn-worker path: a workload registered only in the
        parent still resolves by name once its prebuilt instance is
        installed (no worker-side registry entry needed)."""
        from repro.workloads import Instance, workload

        parent_only = workload(
            "parent-only-gnp",
            "gnp",
            lambda seed, n: graphs.weighted_gnp(n, 0.2, seed=seed),
            {"n": 12},
        )
        assert parent_only.name not in set(workload_names())
        built = Instance.from_graph(
            parent_only.name, 5, parent_only.graph(5),
            parent_only.params,
            registered=True,  # was registered on the parent side
        )
        worker = InstanceCache()
        worker.install([built])
        assert worker.get("parent-only-gnp", 5) is built
        assert worker.stats.builds == 0

    def test_adhoc_install_never_answers_workload_lookups(self):
        """A name collision between an ad-hoc scenario and a
        parent-only workload must not resolve workload-keyed cells
        to the ad-hoc graph."""
        import networkx as nx

        from repro.workloads import Instance

        adhoc_built = Instance.from_graph(
            "collides", 5, nx.path_graph(4)
        )
        worker = InstanceCache()
        worker.install([adhoc_built])
        try:
            worker.get("collides", 5)
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("ad-hoc instance leaked by name")

    def test_unregistered_spec_objects_are_content_interned(self):
        """Two ad-hoc specs sharing a name never alias each other."""
        import networkx as nx

        from repro.conformance.scenarios import Scenario

        cache = InstanceCache()
        first = cache.get(
            Scenario("x", lambda s: nx.path_graph(5)), 0
        )
        second = cache.get(
            Scenario("x", lambda s: nx.cycle_graph(5)), 0
        )
        assert first is not second
        assert first.digest() != second.digest()
        assert len(second.graph().edges) == 5  # really the cycle

    def test_weighted_attrs_survive_pickling(self):
        """Edge weights (and node attrs) reapply on the rebuilt
        graph after a process/shard boundary."""
        cache = InstanceCache()
        instance = cache.get("weighted-gnp24", 3)
        original = instance.graph()
        shipped = pickle.loads(pickle.dumps(instance))
        rebuilt = shipped.graph()
        assert rebuilt.edges == original.edges
        for u, v in original.edges:
            assert (
                rebuilt.edges[u, v]["weight"]
                == original.edges[u, v]["weight"]
            )

    def test_intern_canonicalizes_payload(self):
        """Regression: duplicate/reversed edges and self-loops in the
        caller payload used to inflate ``delta`` and split digests."""
        cache = InstanceCache()
        clean = cache.intern(
            "canon", 0, (0, 1, 2, 3), ((0, 1), (1, 2), (2, 3))
        )
        messy = cache.intern(
            "canon", 0, (3, 2, 1, 0),
            ((1, 0), (0, 1), (1, 2), (2, 3), (2, 2), (3, 3)),
        )
        assert messy is clean
        assert messy.digest() == clean.digest()
        assert messy.delta == 2  # not inflated by dups/self-loops
        assert canonical(messy.graph()) == canonical(clean.graph())

    def test_intern_graph_carries_attrs_through_pickle(self):
        """Regression: ``intern_graph`` used to drop node/edge
        attributes, so weighted ad-hoc graphs lost their weights at
        every process/shard boundary."""
        cache = InstanceCache()
        weighted = graphs.weighted_gnp(12, 0.3, seed=6, max_weight=9)
        instance = cache.intern_graph("adhoc-weighted", 0, weighted)
        shipped = pickle.loads(pickle.dumps(instance))
        shipped._graph = None  # force a rebuild from the payload
        rebuilt = shipped.graph()
        assert set(rebuilt.edges) == set(weighted.edges)
        for u, v in weighted.edges:
            assert (
                rebuilt.edges[u, v]["weight"]
                == weighted.edges[u, v]["weight"]
            )

    def test_attrs_are_part_of_the_content_digest(self):
        """Same topology, different attributes: distinct instances."""
        import networkx as nx

        cache = InstanceCache()
        bare = nx.path_graph(4)
        weighted = nx.path_graph(4)
        for u, v in weighted.edges:
            weighted.edges[u, v]["weight"] = u + v
        a = cache.intern_graph("attr-digest", 0, bare)
        b = cache.intern_graph("attr-digest", 0, weighted)
        assert a is not b
        assert a.digest() != b.digest()

    def test_install_adhoc_does_not_shadow_registered_workload(self):
        """Regression: ``install()`` used to store ad-hoc instances
        under the ``(name, params, seed)`` primary key, shadowing (or
        evicting) a registered workload of the same name."""
        import networkx as nx

        from repro.workloads import Instance

        cache = InstanceCache()
        registered = cache.get("petersen", 0)
        impostor = Instance.from_graph(
            "petersen", 0, nx.path_graph(3)
        )
        cache.install([impostor])
        assert cache.get("petersen", 0) is registered
        assert cache.get("petersen", 0).delta == 3

    def test_lru_eviction_bounds_the_store(self):
        cache = InstanceCache(max_instances=2)
        first = cache.get("gnp24", 0)
        cache.get("gnp24", 1)
        cache.get("gnp24", 0)  # refresh: 0 is now most recent
        cache.get("gnp24", 2)  # evicts seed 1, not seed 0
        assert len(cache) == 2
        assert cache.get("gnp24", 0) is first
        builds = cache.stats.builds
        cache.get("gnp24", 1)  # evicted: rebuilt
        assert cache.stats.builds == builds + 1


class TestAliasLeakRegression:
    """Regression: re-storing a primary key with a *different* alias
    set used to leak the old aliases — they survived the primary's
    eviction and resolved to a dead key forever."""

    def _registered_instance(self, edges):
        from repro.workloads import Instance

        nodes = tuple(sorted({v for e in edges for v in e}))
        return Instance(
            "restored-workload", 0, nodes, tuple(edges),
            registered=True,
        )

    def test_restore_drops_the_previous_alias_set(self):
        old = self._registered_instance([(0, 1)])
        new = self._registered_instance([(0, 1), (1, 2)])
        assert old.key == new.key and old.digest() != new.digest()
        cache = InstanceCache()
        cache.install([old])
        stale_alias = ("adhoc", old.workload, old.seed, old.digest())
        assert cache._lookup(stale_alias) is old
        cache.install([new])  # same primary, different content alias
        assert stale_alias not in cache._aliases
        assert cache._lookup(stale_alias) is None
        fresh_alias = ("adhoc", new.workload, new.seed, new.digest())
        assert cache._lookup(fresh_alias) is new

    def test_no_alias_outlives_its_evicted_primary(self):
        cache = InstanceCache(max_instances=1)
        cache.install([self._registered_instance([(0, 1)])])
        cache.install(
            [self._registered_instance([(0, 1), (1, 2)])]
        )
        # Evict the (single) re-stored primary with an unrelated get.
        cache.get("gnp24", 0)
        assert len(cache) == 1
        assert cache._aliases == {}  # nothing points at dead keys

    def test_prewarm_tags_survive_until_clear(self):
        cache = InstanceCache()
        tag = ("shard-prebuild", "digest", "fastpath")
        assert not cache.was_prewarmed(tag)
        cache.mark_prewarmed(tag)
        assert cache.was_prewarmed(tag)
        cache.clear()
        assert not cache.was_prewarmed(tag)


class TestConformanceUsesCache:
    def test_serial_conformance_derives_square_once_per_scenario(self):
        """The satellite fix: contract checks take the cached G²
        instead of recomputing per spec × scenario."""
        from repro.conformance import run_conformance

        cache = instance_cache()
        cache.clear()
        specs = [get_algorithm(n) for n in ("trial", "greedy-oracle")]
        scenarios = [
            get_workload(n) for n in ("gnp24", "relay3x4", "petersen")
        ]
        report = run_conformance(
            specs=specs, scenarios=scenarios, seed=9
        )
        assert report.ok, report.explain()
        # 6 (spec, scenario) cells, but G² derived once per scenario.
        assert len(report.records) == 6
        assert cache.stats.square_builds == len(scenarios)
        cache.clear()
