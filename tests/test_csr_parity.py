"""Parity suites pinning the CSR array pipeline to its set/BFS oracles.

Three equivalences the CSR-native instance pipeline rests on:

1. ``exec.arrays.square_csr`` (numpy merge + dedup) derives exactly
   the distance-2 rows that the set-based
   ``graphs.square.d2_neighborhoods`` oracle computes;
2. the checker's CSR fast path returns the same verdicts — validity,
   conflict sets, counts, ``explain()`` text — as its independent BFS
   on random graphs, random seeds, and deliberately invalid
   colorings;
3. a CSR-born instance and its nx-built twin intern to the *same*
   content digest (cache identity is representation-independent).
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.arrays import build_csr, square_csr
from repro.graphs.csrgraph import CSRGraphView
from repro.graphs.generators import gnp_fast, power_law, random_regular
from repro.graphs.square import (
    d2_degree,
    d2_neighborhoods,
    max_d2_degree,
)
from repro.verify.checker import check_distance_k_coloring
from repro.workloads.cache import Instance


@st.composite
def random_graphs(draw, max_n: int = 12):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(
        st.lists(
            st.booleans(), min_size=len(pairs), max_size=len(pairs)
        )
    )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(
        pair for pair, keep in zip(pairs, mask) if keep
    )
    return graph


@st.composite
def graph_with_wild_coloring(draw, max_n: int = 12):
    """A graph plus a deliberately hostile partial coloring: Nones,
    in-palette colors, and out-of-palette values (negative included)."""
    graph = draw(random_graphs(max_n=max_n))
    palette = draw(st.integers(min_value=1, max_value=6))
    coloring = {
        v: draw(
            st.one_of(
                st.none(),
                st.integers(min_value=-3, max_value=palette + 3),
            )
        )
        for v in graph.nodes
    }
    return graph, coloring, palette


def csr_rows_as_sets(csr):
    """``{node: frozenset(row)}`` of a CSR artifact's G rows."""
    indptr, indices = csr.g_indptr, csr.g_indices
    return {
        v: frozenset(indices[indptr[i]:indptr[i + 1]].tolist())
        for i, v in enumerate(csr.order)
    }


class TestSquareCsrMatchesOracle:
    @given(random_graphs())
    @settings(max_examples=150)
    def test_g2_rows_equal_d2_neighborhoods(self, graph):
        sq = square_csr(build_csr(graph))
        assert csr_rows_as_sets(sq) == d2_neighborhoods(graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_generator_families(self, seed):
        for graph in (
            gnp_fast(60, 0.08, seed=seed),
            random_regular(4, 30, seed=seed),
            power_law(40, 2, seed=seed),
        ):
            sq = square_csr(graph.csr_adjacency)
            assert csr_rows_as_sets(sq) == d2_neighborhoods(graph)

    @given(random_graphs())
    @settings(max_examples=100)
    def test_degree_helpers_accept_adjacency(self, graph):
        csr = build_csr(graph)
        hoods = d2_neighborhoods(graph)
        assert max_d2_degree(graph) == max_d2_degree(
            None, adjacency=csr
        )
        assert max_d2_degree(graph) == max_d2_degree(
            None, adjacency=hoods
        )
        for v in graph.nodes:
            assert d2_degree(graph, v) == d2_degree(
                None, v, adjacency=csr
            )
            assert d2_degree(graph, v) == d2_degree(
                None, v, adjacency=hoods
            )

    def test_view_detected_without_materializing(self):
        view = gnp_fast(80, 0.05, seed=3)
        via_view = max_d2_degree(view)
        assert not view.materialized  # read straight off the arrays
        assert via_view == max_d2_degree(nx.Graph(view))


def _sorted(report):
    report.conflicts.sort()
    return report


class TestCsrCheckerMatchesBfs:
    @given(graph_with_wild_coloring(), st.integers(1, 2))
    @settings(max_examples=200)
    def test_same_verdicts(self, case, k):
        graph, coloring, palette = case
        csr = build_csr(graph)
        via_bfs = _sorted(
            check_distance_k_coloring(graph, coloring, k, palette)
        )
        via_csr = _sorted(
            check_distance_k_coloring(
                graph, coloring, k, palette, adjacency=csr
            )
        )
        assert via_csr.valid == via_bfs.valid
        assert via_csr.conflicts == via_bfs.conflicts
        assert sorted(via_csr.uncolored) == sorted(via_bfs.uncolored)
        assert sorted(via_csr.out_of_palette) == sorted(
            via_bfs.out_of_palette
        )
        assert via_csr.colors_used == via_bfs.colors_used
        assert via_csr.explain() == via_bfs.explain()

    @pytest.mark.parametrize("seed", range(4))
    def test_generator_families_random_colorings(self, seed):
        import random

        rng = random.Random(seed)
        for graph in (
            gnp_fast(50, 0.1, seed=seed),
            random_regular(4, 24, seed=seed),
        ):
            csr = graph.csr_adjacency
            palette = 8
            coloring = {
                v: (
                    None
                    if rng.random() < 0.2
                    else rng.randrange(-1, palette + 1)
                )
                for v in range(csr.n)
            }
            for k in (1, 2):
                bfs = _sorted(
                    check_distance_k_coloring(
                        graph, coloring, k, palette
                    )
                )
                fast = _sorted(
                    check_distance_k_coloring(
                        graph, coloring, k, palette, adjacency=csr
                    )
                )
                assert fast.explain() == bfs.explain()
                assert fast.conflicts == bfs.conflicts
                assert fast.valid == bfs.valid

    def test_huge_colors_fall_back_to_bfs(self):
        graph = nx.path_graph(4)
        coloring = {0: 2**63, 1: 0, 2: 1, 3: 2**63}
        csr = build_csr(graph)
        report = check_distance_k_coloring(
            graph, coloring, 2, adjacency=csr
        )
        # Both endpoints share a giant color at distance 3: valid,
        # and the fallback must not have int64-truncated anything.
        assert report.valid

    def test_selfloop_graphs_decline_fast_path(self):
        graph = nx.Graph([(0, 1), (1, 1), (1, 2)])
        csr = build_csr(graph)
        assert csr.has_selfloops
        coloring = {0: 0, 1: 1, 2: 0}
        report = check_distance_k_coloring(
            graph, coloring, 2, adjacency=csr
        )
        assert not report.valid
        assert (0, 2) in report.conflicts


class TestDigestStability:
    """Satellite (f): cache identity is representation-independent —
    a CSR-born instance and its nx-built twin share a digest."""

    @pytest.mark.parametrize("seed", range(3))
    def test_csr_born_equals_nx_twin(self, seed):
        view = gnp_fast(200, 0.03, seed=seed)
        twin = nx.Graph()
        twin.add_nodes_from(range(200))
        twin.add_edges_from(view.edges)
        born = Instance.from_graph("gnp", seed, view)
        built = Instance.from_graph("gnp", seed, twin)
        assert born._csr_born and not built._csr_born
        assert born.digest() == built.digest()
        assert born.nodes == built.nodes
        assert born.edges == built.edges

    def test_edge_cases(self):
        cases = [
            (nx.empty_graph(0), nx.empty_graph(0)),
            (nx.empty_graph(1), nx.empty_graph(1)),
            (nx.Graph([(0, 1)]), nx.Graph([(0, 1)])),
        ]
        for graph, twin in cases:
            view = CSRGraphView(build_csr(graph))
            born = Instance.from_graph("w", 0, view)
            built = Instance.from_graph("w", 0, twin)
            assert born.digest() == built.digest()

    def test_digest_survives_pickle(self):
        import pickle

        view = random_regular(4, 30, seed=7)
        born = Instance.from_graph("rr", 7, view)
        clone = pickle.loads(pickle.dumps(born))
        assert clone.digest() == born.digest()
        assert clone._csr_born
