"""Tests for the graph substrate: squares, properties, generators,
paper instances."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    caterpillar,
    clique_clusters,
    complete_bipartite,
    connected_gnp,
    double_star,
    ensure_int_labels,
    gnp,
    grid,
    random_bipartite_tasks,
    random_regular,
    star_of_stars,
    unit_disk,
    with_max_degree,
)
from repro.graphs.instances import (
    cycle5,
    hoffman_singleton,
    moore_graph,
    petersen,
    projective_plane_incidence,
    verification_lower_bound_tree,
)
from repro.graphs.properties import (
    E_CUBED,
    leeway,
    live_d2_counts,
    slack,
    solid_nodes,
    sparsity,
)
from repro.graphs.square import (
    common_d2_neighbors,
    d2_degree,
    d2_neighborhoods,
    d2_neighbors,
    max_d2_degree,
    square,
    two_paths,
)

random_graphs = st.builds(
    lambda n, p, seed: gnp(n, p, seed=seed),
    st.integers(min_value=2, max_value=18),
    st.floats(min_value=0.05, max_value=0.6),
    st.integers(min_value=0, max_value=10),
)


class TestSquare:
    def test_path_square(self):
        sq = square(nx.path_graph(4))
        assert set(sq.edges) == {
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
        }

    def test_petersen_square_is_complete(self):
        sq = square(petersen())
        assert sq.number_of_edges() == 45

    @settings(max_examples=25, deadline=None)
    @given(random_graphs)
    def test_matches_networkx_power(self, graph):
        ours = square(graph)
        reference = nx.power(graph, 2)
        assert set(ours.edges) == set(reference.edges)
        assert set(ours.nodes) == set(reference.nodes)

    def test_d2_neighbors_excludes_self(self):
        graph = nx.cycle_graph(5)
        for v in graph.nodes:
            assert v not in d2_neighbors(graph, v)

    def test_d2_neighborhoods_consistent(self):
        graph = gnp(25, 0.2, seed=5)
        all_hoods = d2_neighborhoods(graph)
        for v in graph.nodes:
            assert all_hoods[v] == frozenset(d2_neighbors(graph, v))

    def test_d2_degree_bounded_by_delta_squared(self):
        graph = random_regular(4, 20, seed=0)
        assert max_d2_degree(graph) <= 16

    def test_common_d2_neighbors(self):
        graph = nx.path_graph(5)
        # nodes 1 and 3: N2(1)={0,2,3}, N2(3)={1,2,4} -> common {2}
        assert common_d2_neighbors(graph, 1, 3) == {2}

    def test_two_paths_counts_middles(self):
        graph = nx.cycle_graph(4)  # 0-1-2-3-0
        assert sorted(two_paths(graph, 0, 2)) == [1, 3]
        assert two_paths(graph, 0, 1) == []


class TestProperties:
    def test_moore_graph_sparsity_zero(self):
        # G² of Petersen is K10 with Δ²=9 d2-neighbors per node: the
        # neighborhood is a 9-clique, the densest possible => ζ = 0.
        values = sparsity(petersen())
        assert all(abs(z) < 1e-9 for z in values.values())

    def test_sparse_graph_high_sparsity(self):
        # A path has nearly edgeless d2-neighborhoods.
        values = sparsity(nx.path_graph(10))
        assert all(z > 0 for z in values.values())

    def test_leeway_equals_slack_plus_live(self):
        graph = gnp(25, 0.2, seed=7)
        coloring = {
            v: (v % 5 if v % 3 == 0 else None) for v in graph.nodes
        }
        lee = leeway(graph, coloring)
        slk = slack(graph, coloring)
        live = live_d2_counts(graph, coloring)
        for v in graph.nodes:
            assert lee[v] == slk[v] + live[v]

    def test_leeway_full_palette_when_uncolored(self):
        graph = nx.cycle_graph(6)
        coloring = {v: None for v in graph.nodes}
        delta = 2
        lee = leeway(graph, coloring, delta)
        assert all(
            value == delta * delta + 1 for value in lee.values()
        )

    def test_solid_nodes_on_dense_graph(self):
        graph = petersen()
        coloring = {v: None for v in graph.nodes}
        # leeway = 10 <= c1·9 requires c1 >= 10/9; with sparsity 0,
        # every node is then solid.
        solid = solid_nodes(graph, coloring, c1=1.2)
        assert solid == set(graph.nodes)

    def test_e_cubed_constant(self):
        assert abs(E_CUBED - math.e**3) < 1e-12


class TestGenerators:
    def test_random_regular_is_regular(self):
        graph = random_regular(4, 20, seed=1)
        assert set(d for _, d in graph.degree) == {4}

    def test_random_regular_fixes_parity(self):
        graph = random_regular(3, 9, seed=1)  # odd*odd bumped
        assert graph.number_of_nodes() == 10

    def test_random_regular_rejects_degree_ge_n(self):
        with pytest.raises(ValueError):
            random_regular(10, 5)

    def test_unit_disk_edges_respect_radius(self):
        graph = unit_disk(40, 0.25, seed=2)
        pos = nx.get_node_attributes(graph, "pos")
        for u, v in graph.edges:
            dx = pos[u][0] - pos[v][0]
            dy = pos[u][1] - pos[v][1]
            assert dx * dx + dy * dy <= 0.25**2 + 1e-12

    def test_complete_bipartite_square_is_complete(self):
        graph = complete_bipartite(3, 4)
        sq = square(graph)
        assert sq.number_of_edges() == 7 * 6 // 2

    def test_grid_and_torus_degrees(self):
        assert max(d for _, d in grid(4, 4).degree) == 4
        torus = grid(4, 4, torus=True)
        assert set(d for _, d in torus.degree) == {4}

    def test_caterpillar_sizes(self):
        graph = caterpillar(5, 3)
        assert graph.number_of_nodes() == 5 + 15

    def test_double_star_structure(self):
        graph = double_star(6)
        assert graph.degree[0] == 7
        assert graph.degree[1] == 7
        assert graph.number_of_nodes() == 14

    def test_clique_clusters_contains_cliques(self):
        graph = clique_clusters(3, 4, seed=0)
        for base in (0, 4, 8):
            for i in range(4):
                for j in range(i + 1, 4):
                    assert graph.has_edge(base + i, base + j)

    def test_star_of_stars_root_d2_degree(self):
        graph = star_of_stars(4, 3)
        assert d2_degree(graph, 0) == 4 * (3 + 1)

    def test_random_bipartite_tasks_degrees(self):
        graph = random_bipartite_tasks(10, 6, 3, seed=1)
        for task in range(10):
            assert graph.degree[task] == 3

    def test_connected_gnp_connected(self):
        graph = connected_gnp(30, 0.08, seed=3)
        assert nx.is_connected(graph)

    def test_with_max_degree_trims(self):
        graph = with_max_degree(nx.star_graph(10), 3, seed=1)
        assert max(d for _, d in graph.degree) <= 3

    def test_ensure_int_labels(self):
        graph = nx.Graph()
        graph.add_edge("x", "y")
        relabeled = ensure_int_labels(graph)
        assert set(relabeled.nodes) == {0, 1}


class TestInstances:
    @pytest.mark.parametrize("delta", [2, 3, 7])
    def test_moore_graphs_are_extremal(self, delta):
        graph = moore_graph(delta)
        assert graph.number_of_nodes() == delta * delta + 1
        assert set(d for _, d in graph.degree) == {delta}
        sq = square(graph)
        n = graph.number_of_nodes()
        assert sq.number_of_edges() == n * (n - 1) // 2

    def test_moore_graph_unknown_degree(self):
        with pytest.raises(ValueError):
            moore_graph(4)

    def test_cycle5_petersen_hs_sizes(self):
        assert cycle5().number_of_nodes() == 5
        assert petersen().number_of_nodes() == 10
        assert hoffman_singleton().number_of_nodes() == 50

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_projective_plane_incidence(self, q):
        graph = projective_plane_incidence(q)
        count = q * q + q + 1
        assert graph.number_of_nodes() == 2 * count
        assert set(d for _, d in graph.degree) == {q + 1}
        # girth 6: bipartite with no 4-cycles
        assert nx.is_bipartite(graph)
        assert nx.girth(graph) == 6

    def test_projective_plane_rejects_composite(self):
        with pytest.raises(ValueError):
            projective_plane_incidence(4)

    def test_verification_tree_degree(self):
        graph = verification_lower_bound_tree(8)
        assert max(d for _, d in graph.degree) == 8
