"""Shared fixtures: the instance suite used across the test files."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import (
    caterpillar,
    clique_clusters,
    double_star,
    gnp,
    grid,
    random_regular,
    unit_disk,
)
from repro.graphs.instances import (
    cycle5,
    petersen,
    projective_plane_incidence,
)


def small_suite():
    """Name -> graph; small instances exercised by most algorithms."""
    return {
        "path8": nx.path_graph(8),
        "cycle5": cycle5(),
        "petersen": petersen(),
        "grid4x4": grid(4, 4),
        "rr4_20": random_regular(4, 20, seed=1),
        "gnp30": gnp(30, 0.15, seed=2),
        "double_star6": double_star(6),
        "caterpillar": caterpillar(5, 3),
        "cliques3x5": clique_clusters(3, 5, seed=3),
        "udg": unit_disk(30, 0.3, seed=4),
        "pg2_3": projective_plane_incidence(3),
    }


@pytest.fixture(scope="session")
def suite():
    return small_suite()


def suite_params():
    return sorted(small_suite())


@pytest.fixture(params=suite_params())
def suite_graph(request, suite):
    return request.param, suite[request.param]
