"""Tests for RNG derivation, bandwidth policy, and result types."""

import pytest

from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthMode, BandwidthPolicy
from repro.congest.rng import derive_int, derive_rng
from repro.results import ColoringResult


class TestRng:
    def test_deterministic(self):
        assert derive_int(1, "a") == derive_int(1, "a")

    def test_label_sensitivity(self):
        assert derive_int(1, "a") != derive_int(1, "b")

    def test_seed_sensitivity(self):
        assert derive_int(1, "a") != derive_int(2, "a")

    def test_rng_streams_independent(self):
        r1 = derive_rng(0, "node", 1)
        r2 = derive_rng(0, "node", 2)
        assert [r1.random() for _ in range(5)] != [
            r2.random() for _ in range(5)
        ]

    def test_rng_reproducible(self):
        a = derive_rng(7, "x").random()
        b = derive_rng(7, "x").random()
        assert a == b


class TestPolicy:
    def test_budget_scales_with_log_n(self):
        policy = BandwidthPolicy(beta=8, min_bits=0)
        assert policy.budget_bits(1024) == 80
        assert policy.budget_bits(2048) == 88

    def test_min_bits_floor(self):
        policy = BandwidthPolicy(beta=1, min_bits=100)
        assert policy.budget_bits(4) == 100

    def test_tiny_n(self):
        policy = BandwidthPolicy(beta=8, min_bits=0)
        assert policy.budget_bits(1) == 8

    def test_factories(self):
        assert BandwidthPolicy.strict().mode is BandwidthMode.STRICT
        assert BandwidthPolicy.track().mode is BandwidthMode.TRACK
        assert (
            BandwidthPolicy.unbounded().mode
            is BandwidthMode.UNBOUNDED
        )


class TestRunMetrics:
    def test_observe_tracks_max(self):
        metrics = RunMetrics()
        metrics.observe(10)
        metrics.observe(50)
        metrics.observe(20)
        assert metrics.max_message_bits == 50
        assert metrics.total_messages == 3
        assert metrics.total_bits == 80

    def test_merge_adds_rounds(self):
        a = RunMetrics(rounds=3, total_messages=5, budget_bits=64)
        b = RunMetrics(rounds=2, total_messages=7, budget_bits=64)
        merged = a.merge(b)
        assert merged.rounds == 5
        assert merged.total_messages == 12

    def test_compliance(self):
        metrics = RunMetrics()
        assert metrics.compliant
        metrics.observe_violation(200)
        assert not metrics.compliant
        assert metrics.worst_violation_bits == 200

    def test_summary_contains_rounds(self):
        assert "rounds=0" in RunMetrics().summary()


class TestColoringResult:
    def _result(self):
        return ColoringResult(
            algorithm="x",
            coloring={0: 1, 1: 2, 2: 1},
            palette_size=5,
            rounds=0,
        )

    def test_colors_used(self):
        assert self._result().colors_used == 2

    def test_complete(self):
        result = self._result()
        assert result.complete
        result.coloring[3] = None
        assert not result.complete

    def test_add_phase_accumulates(self):
        result = self._result()
        result.add_phase("a", 10)
        result.add_phase("b", 5)
        assert result.rounds == 15
        assert result.phase_rounds() == {"a": 10, "b": 5}

    def test_add_phase_merges_metrics(self):
        result = self._result()
        result.add_phase("a", 10, RunMetrics(rounds=10, total_bits=7))
        assert result.metrics.total_bits == 7

    def test_summary_mentions_algorithm(self):
        assert "x:" in self._result().summary()
