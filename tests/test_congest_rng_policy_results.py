"""Tests for RNG derivation, bandwidth policy, and result types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.metrics import RunMetrics
from repro.congest.policy import BandwidthMode, BandwidthPolicy
from repro.congest.rng import (
    derive_int,
    derive_ints,
    derive_rng,
    derive_uniforms,
)
from repro.results import ColoringResult

# Label values of every shape the simulator actually derives streams
# from: ints, strings, and tuples thereof.
_labels = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.text(max_size=12),
    st.tuples(st.integers(min_value=-100, max_value=100), st.text(max_size=4)),
)


class TestRng:
    def test_deterministic(self):
        assert derive_int(1, "a") == derive_int(1, "a")

    def test_label_sensitivity(self):
        assert derive_int(1, "a") != derive_int(1, "b")

    def test_seed_sensitivity(self):
        assert derive_int(1, "a") != derive_int(2, "a")

    def test_rng_streams_independent(self):
        r1 = derive_rng(0, "node", 1)
        r2 = derive_rng(0, "node", 2)
        assert [r1.random() for _ in range(5)] != [
            r2.random() for _ in range(5)
        ]

    def test_rng_reproducible(self):
        a = derive_rng(7, "x").random()
        b = derive_rng(7, "x").random()
        assert a == b


class TestBulkRng:
    """The bulk derivations must be bit-identical to the scalar ones —
    the vectorized kernels and ``Network.__init__`` rely on it."""

    @given(seed=_labels, label=_labels, n=st.integers(0, 48))
    @settings(max_examples=150)
    def test_derive_ints_matches_scalar_over_count(
        self, seed, label, n
    ):
        assert derive_ints(seed, label, n) == [
            derive_int(seed, label, item) for item in range(n)
        ]

    @given(
        seed=_labels,
        label=_labels,
        items=st.lists(_labels, max_size=16),
    )
    @settings(max_examples=150)
    def test_derive_ints_matches_scalar_over_items(
        self, seed, label, items
    ):
        assert derive_ints(seed, label, items) == [
            derive_int(seed, label, item) for item in items
        ]

    @given(seed=_labels, label=_labels, n=st.integers(0, 32))
    @settings(max_examples=50)
    def test_derive_uniforms_scales_derive_ints(self, seed, label, n):
        uniforms = derive_uniforms(seed, label, n)
        ints = derive_ints(seed, label, n)
        assert len(uniforms) == n
        for value, raw in zip(uniforms, ints):
            assert value == raw / 2.0**64
            assert 0.0 <= value < 1.0


class TestPolicy:
    def test_budget_scales_with_log_n(self):
        policy = BandwidthPolicy(beta=8, min_bits=0)
        assert policy.budget_bits(1024) == 80
        assert policy.budget_bits(2048) == 88

    def test_min_bits_floor(self):
        policy = BandwidthPolicy(beta=1, min_bits=100)
        assert policy.budget_bits(4) == 100

    def test_tiny_n(self):
        policy = BandwidthPolicy(beta=8, min_bits=0)
        assert policy.budget_bits(1) == 8

    def test_factories(self):
        assert BandwidthPolicy.strict().mode is BandwidthMode.STRICT
        assert BandwidthPolicy.track().mode is BandwidthMode.TRACK
        assert (
            BandwidthPolicy.unbounded().mode
            is BandwidthMode.UNBOUNDED
        )


class TestRunMetrics:
    def test_observe_tracks_max(self):
        metrics = RunMetrics()
        metrics.observe(10)
        metrics.observe(50)
        metrics.observe(20)
        assert metrics.max_message_bits == 50
        assert metrics.total_messages == 3
        assert metrics.total_bits == 80

    def test_merge_adds_rounds(self):
        a = RunMetrics(rounds=3, total_messages=5, budget_bits=64)
        b = RunMetrics(rounds=2, total_messages=7, budget_bits=64)
        merged = a.merge(b)
        assert merged.rounds == 5
        assert merged.total_messages == 12

    def test_compliance(self):
        metrics = RunMetrics()
        assert metrics.compliant
        metrics.observe_violation(200)
        assert not metrics.compliant
        assert metrics.worst_violation_bits == 200

    def test_summary_contains_rounds(self):
        assert "rounds=0" in RunMetrics().summary()


class TestColoringResult:
    def _result(self):
        return ColoringResult(
            algorithm="x",
            coloring={0: 1, 1: 2, 2: 1},
            palette_size=5,
            rounds=0,
        )

    def test_colors_used(self):
        assert self._result().colors_used == 2

    def test_complete(self):
        result = self._result()
        assert result.complete
        result.coloring[3] = None
        assert not result.complete

    def test_add_phase_accumulates(self):
        result = self._result()
        result.add_phase("a", 10)
        result.add_phase("b", 5)
        assert result.rounds == 15
        assert result.phase_rounds() == {"a": 10, "b": 5}

    def test_add_phase_merges_metrics(self):
        result = self._result()
        result.add_phase("a", 10, RunMetrics(rounds=10, total_bits=7))
        assert result.metrics.total_bits == 7

    def test_summary_mentions_algorithm(self):
        assert "x:" in self._result().summary()
