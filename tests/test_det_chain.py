"""Tests for the Theorem 1.2 chain: Linial, locally-iterative,
color reduction, and the composed pipeline."""

import networkx as nx
import pytest

from repro.det.color_reduction import color_reduction_d2
from repro.det.det_d2color import deterministic_d2_color
from repro.det.linial import (
    choose_parameters,
    final_palette,
    linial_d2_coloring,
    linial_g_coloring,
    linial_schedule,
)
from repro.det.locally_iterative import (
    locally_iterative_d2_coloring,
)
from repro.graphs.generators import gnp, random_regular
from repro.graphs.instances import moore_graph, petersen
from repro.graphs.square import max_d2_degree
from repro.util.primes import is_prime
from repro.verify.checker import check_coloring, check_d2_coloring


class TestLinialSchedule:
    def test_parameters_satisfy_constraints(self):
        for m, degree in [(1000, 4), (10**6, 16), (50, 2)]:
            d, q = choose_parameters(m, degree)
            assert is_prime(q)
            assert q > d * degree
            assert q ** (d + 1) >= m

    def test_schedule_descends(self):
        schedule = linial_schedule(10**6, 16)
        sizes = [m for _, _, m in schedule]
        assert sizes == sorted(sizes, reverse=True)
        assert all(
            later < earlier
            for earlier, later in zip([10**6] + sizes, sizes)
        )

    def test_fixed_point_is_o_of_degree_squared(self):
        # The stall point is nextprime(~2D+1)² = O(D²); for D = Δ²
        # this is the O(Δ⁴) palette of Theorem B.1.
        degree = 16
        final = final_palette(10**9, degree)
        assert final <= 8 * degree * degree

    def test_empty_schedule_when_input_small(self):
        assert linial_schedule(9, 16) == []
        assert final_palette(9, 16) == 9

    def test_iteration_count_is_log_star_like(self):
        # Even astronomically many input colors converge in a handful
        # of iterations (Thm B.1's log* behaviour).
        schedule = linial_schedule(2**64, 9)
        assert 1 <= len(schedule) <= 5


class TestLinialColoring:
    def test_d2_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = linial_d2_coloring(graph)
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_g_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = linial_g_coloring(graph)
        report = check_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"

    def test_large_n_small_delta_actually_iterates(self):
        graph = nx.cycle_graph(500)
        result = linial_d2_coloring(graph)
        assert result.params["iterations"] >= 1
        assert result.palette_size < 500
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_part_filtered_variant(self):
        graph = random_regular(6, 40, seed=5)
        parts = {v: v % 2 for v in graph.nodes}
        result = linial_d2_coloring(
            graph, parts=parts, conflict_degree=20
        )
        # validity within each part at distance 2
        from repro.graphs.square import d2_neighbors

        for v in graph.nodes:
            for u in d2_neighbors(graph, v):
                if parts[u] == parts[v]:
                    assert result.coloring[u] != result.coloring[v]

    def test_color_in_used(self):
        graph = nx.cycle_graph(100)
        base = {v: v for v in graph.nodes}
        result = linial_d2_coloring(
            graph, color_in=base, palette_in=100
        )
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid


class TestLocallyIterative:
    def test_valid_and_palette(self, suite_graph):
        name, graph = suite_graph
        delta = max((d for _, d in graph.degree), default=0)
        if delta == 0:
            pytest.skip("edgeless")
        linial = linial_d2_coloring(graph)
        result = locally_iterative_d2_coloring(
            graph,
            color_in=linial.coloring,
            palette_in=linial.palette_size,
        )
        assert result.complete, name
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"
        q = result.params["q"]
        assert 4 * delta * delta < q < 8 * delta * delta

    def test_lemma_b3_blocked_phases_bound(self, suite_graph):
        """Lemma B.3: at most 2·(d2-degree) <= 2Δ² blocked phases."""
        name, graph = suite_graph
        delta = max((d for _, d in graph.degree), default=0)
        if delta == 0:
            pytest.skip("edgeless")
        linial = linial_d2_coloring(graph)
        result = locally_iterative_d2_coloring(
            graph,
            color_in=linial.coloring,
            palette_in=linial.palette_size,
            stop_early=False,
        )
        bound = 2 * max_d2_degree(graph)
        assert result.params["max_blocked_phases"] <= bound, name

    def test_rejects_oversized_input_palette(self):
        graph = nx.path_graph(4)
        with pytest.raises(ValueError):
            locally_iterative_d2_coloring(
                graph,
                color_in={v: v for v in graph.nodes},
                palette_in=10**9,
            )


class TestColorReduction:
    def test_reduces_to_target(self):
        graph = random_regular(4, 24, seed=2)
        linial = linial_d2_coloring(graph)
        iterative = locally_iterative_d2_coloring(
            graph,
            color_in=linial.coloring,
            palette_in=linial.palette_size,
        )
        reduced = color_reduction_d2(
            graph,
            color_in=iterative.coloring,
            palette_in=iterative.palette_size,
        )
        assert reduced.palette_size == 17
        report = check_d2_coloring(
            graph, reduced.coloring, reduced.palette_size
        )
        assert report.valid, report.explain()

    def test_rejects_palette_below_target(self):
        graph = nx.path_graph(4)
        with pytest.raises(ValueError):
            color_reduction_d2(
                graph,
                color_in={v: 0 for v in graph.nodes},
                palette_in=2,
                target=10,
            )

    def test_identity_when_already_small(self):
        graph = nx.path_graph(4)
        colors = {0: 0, 1: 1, 2: 2, 3: 3}
        result = color_reduction_d2(
            graph, color_in=colors, palette_in=5, target=5
        )
        assert result.coloring == colors


class TestTheorem12Pipeline:
    def test_valid_on_suite(self, suite_graph):
        name, graph = suite_graph
        result = deterministic_d2_color(graph)
        assert result.complete, name
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid, f"{name}: {report.explain()}"
        delta = max((d for _, d in graph.degree), default=0)
        assert result.palette_size == delta * delta + 1

    @pytest.mark.parametrize("delta", [2, 3, 7])
    def test_moore_graphs_exactly_delta_sq_plus_1(self, delta):
        graph = moore_graph(delta)
        result = deterministic_d2_color(graph)
        assert result.colors_used == delta * delta + 1
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        result = deterministic_d2_color(graph)
        assert result.complete
        assert result.palette_size == 1

    def test_phase_breakdown_present(self):
        result = deterministic_d2_color(petersen())
        names = set(result.phase_rounds())
        assert "linial" in names
        assert "locally-iterative" in names

    def test_rounds_scale_with_delta_squared(self):
        small = deterministic_d2_color(
            random_regular(3, 60, seed=1), stop_early=False
        )
        large = deterministic_d2_color(
            random_regular(9, 60, seed=1), stop_early=False
        )
        assert large.rounds > small.rounds

    def test_deterministic_reproducible(self):
        graph = gnp(30, 0.15, seed=4)
        a = deterministic_d2_color(graph)
        b = deterministic_d2_color(graph)
        assert a.coloring == b.coloring
        assert a.rounds == b.rounds
