"""Tests for the independent checker and the bandwidth audit."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_d2_coloring
from repro.congest.metrics import RunMetrics
from repro.graphs.generators import gnp
from repro.verify.audit import audit_bandwidth, audit_many
from repro.verify.checker import (
    check_coloring,
    check_d2_coloring,
    check_distance_k_coloring,
)


class TestChecker:
    def test_valid_coloring_accepted(self):
        graph = nx.path_graph(4)
        coloring = {0: 0, 1: 1, 2: 2, 3: 0}
        report = check_d2_coloring(graph, coloring)
        assert report.valid
        assert report.colors_used == 3

    def test_distance_1_conflict_detected(self):
        graph = nx.path_graph(3)
        coloring = {0: 0, 1: 0, 2: 1}
        report = check_d2_coloring(graph, coloring)
        assert not report.valid
        assert (0, 1) in report.conflicts

    def test_distance_2_conflict_detected(self):
        graph = nx.path_graph(3)
        coloring = {0: 0, 1: 1, 2: 0}
        report = check_d2_coloring(graph, coloring)
        assert not report.valid
        assert (0, 2) in report.conflicts

    def test_distance_3_not_a_conflict(self):
        graph = nx.path_graph(4)
        coloring = {0: 0, 1: 1, 2: 2, 3: 0}
        assert check_d2_coloring(graph, coloring).valid

    def test_distance_1_checker_allows_d2_repeats(self):
        graph = nx.path_graph(3)
        coloring = {0: 0, 1: 1, 2: 0}
        assert check_coloring(graph, coloring).valid

    def test_uncolored_nodes_reported(self):
        graph = nx.path_graph(3)
        coloring = {0: 0, 1: None, 2: 1}
        report = check_d2_coloring(graph, coloring)
        assert not report.valid
        assert report.uncolored == [1]

    def test_out_of_palette_reported(self):
        graph = nx.path_graph(2)
        coloring = {0: 0, 1: 99}
        report = check_d2_coloring(graph, coloring, palette_size=5)
        assert not report.valid
        assert report.out_of_palette == [1]

    def test_negative_color_out_of_palette(self):
        graph = nx.path_graph(2)
        report = check_d2_coloring(
            graph, {0: 0, 1: -1}, palette_size=5
        )
        assert not report.valid

    def test_distance_k_general(self):
        graph = nx.path_graph(5)
        coloring = {0: 0, 1: 1, 2: 2, 3: 0, 4: 1}
        assert not check_distance_k_coloring(
            graph, coloring, 3
        ).valid
        assert check_distance_k_coloring(graph, coloring, 2).valid

    def test_explain_valid(self):
        graph = nx.path_graph(2)
        report = check_d2_coloring(
            graph, {0: 0, 1: 1}, palette_size=5
        )
        assert "valid" in report.explain()

    def test_explain_invalid_mentions_conflicts(self):
        graph = nx.path_graph(2)
        report = check_d2_coloring(graph, {0: 0, 1: 0})
        assert "conflicting" in report.explain()

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=0.05, max_value=0.5),
        st.integers(min_value=0, max_value=5),
    )
    def test_greedy_always_passes_checker(self, n, p, seed):
        graph = gnp(n, p, seed=seed)
        result = greedy_d2_coloring(graph)
        report = check_d2_coloring(
            graph, result.coloring, result.palette_size
        )
        assert report.valid

    def test_checker_catches_planted_violation(self):
        graph = gnp(20, 0.2, seed=9)
        result = greedy_d2_coloring(graph)
        coloring = dict(result.coloring)
        # Plant a conflict: copy a color onto a d2-neighbor.
        from repro.graphs.square import d2_neighbors

        v = next(iter(graph.nodes))
        nbrs = d2_neighbors(graph, v)
        if nbrs:
            u = next(iter(nbrs))
            coloring[u] = coloring[v]
            assert not check_d2_coloring(graph, coloring).valid


class TestAudit:
    def test_compliant_report(self):
        metrics = RunMetrics(budget_bits=100)
        metrics.observe(50)
        report = audit_bandwidth("algo", metrics)
        assert report.compliant
        assert report.headroom == 0.5

    def test_violating_report(self):
        metrics = RunMetrics(budget_bits=100)
        metrics.observe(150)
        metrics.observe_violation(150)
        report = audit_bandwidth("algo", metrics)
        assert not report.compliant
        assert report.headroom == 1.5

    def test_rows(self):
        metrics = RunMetrics(budget_bits=100)
        rows = audit_many([audit_bandwidth("a", metrics)])
        assert rows[0][0] == "a"
        assert rows[0][-1] == "yes"
